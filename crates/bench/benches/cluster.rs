//! Benchmarks of the cluster routing layer: a split per-item `batch-eval`
//! (both replicas owning items, exercising fan-out + reassembly) through the
//! router versus the identical batch against a monolithic daemon over the
//! unsharded corpus — the routing tax a deployment pays for sharding once
//! every cache is hot. A solo routed `eval` prices the raw pass-through path
//! (one extra socket hop, zero re-serialization).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use leakage_speculation::PolicyKind;
use qec_cluster::{shard_corpus, Router, RouterConfig, ShardOptions};
use qec_experiments::replay::record_into_corpus;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_serve::{
    request_line, Client, EvalSpec, Request, RequestKind, ResponseKind, ServeConfig, Server,
};
use qec_trace::cluster::{ClusterMap, CLUSTER_FILE};
use qec_trace::Corpus;

fn bench_cluster(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("qec-cluster-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let corpus_dir = root.join("corpus");
    let mut corpus = Corpus::open(&corpus_dir).expect("open bench corpus");
    let mut keys = Vec::new();
    for p in [1e-3, 2e-3, 3e-3, 4e-3] {
        let scenario = Scenario {
            code: CodeFamily::Surface,
            distance: 3,
            rounds: 9,
            p,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 8,
            seed: 11,
            decode: false,
            decoder: None,
        };
        let entry =
            record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "cluster bench")
                .expect("record bench cell");
        keys.push(entry.key.clone());
    }
    corpus.save().expect("save bench corpus");

    let out_dir = root.join("sharded");
    let map = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default())
        .expect("shard bench corpus");
    let owner = |key: &str| ClusterMap::assign(Corpus::cell_hash(key), 2);
    let key_a = keys.iter().find(|key| owner(key) == 0).expect("replica 0 owns a cell").clone();
    let key_b = keys.iter().find(|key| owner(key) == 1).expect("replica 1 owns a cell").clone();

    let mut daemons = Vec::new();
    let mut overrides = Vec::new();
    for replica in &map.replicas {
        let server = Server::bind(&out_dir.join(&replica.dir), &ServeConfig::default())
            .expect("bind replica daemon");
        overrides.push((replica.index, server.local_addr().to_string()));
        let addr = server.local_addr();
        daemons.push((addr, std::thread::spawn(move || server.run())));
    }
    let mono = Server::bind(&corpus_dir, &ServeConfig::default()).expect("bind monolithic daemon");
    let mono_addr = mono.local_addr();
    daemons.push((mono_addr, std::thread::spawn(move || mono.run())));

    let router = Router::bind(&out_dir.join(CLUSTER_FILE), &overrides, &RouterConfig::default())
        .expect("bind bench router");
    let router_addr = router.local_addr();
    let router_thread = std::thread::spawn(move || router.run());

    let spec = |key: &str| EvalSpec {
        key: key.to_string(),
        policy: "gladiator+m".to_string(),
        mode: None,
        decode: None,
        decoder: None,
    };
    let split_batch = Request {
        id: Some(1),
        request: RequestKind::BatchEval {
            evals: vec![spec(&key_a), spec(&key_b), spec(&key_a), spec(&key_b)],
            per_item: Some(true),
        },
    };
    let batch_line = request_line(&split_batch);
    let solo_line =
        request_line(&Request { id: Some(2), request: RequestKind::Eval(spec(&key_a)) });

    let mut routed = Client::connect(router_addr).expect("connect routed client");
    let mut direct = Client::connect(mono_addr).expect("connect monolithic client");
    // Warm every cache (both replicas and the monolithic daemon).
    let _ = routed.send_raw(&batch_line).expect("warmup routed");
    let _ = direct.send_raw(&batch_line).expect("warmup monolithic");

    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    // The headline pair: identical split batch, routed vs monolithic.
    group.bench_function("routed_batch_eval_roundtrip_x4", |b| {
        b.iter(|| routed.send_raw(black_box(&batch_line)).expect("routed batch"));
    });
    group.bench_function("monolithic_batch_eval_roundtrip_x4", |b| {
        b.iter(|| direct.send_raw(black_box(&batch_line)).expect("monolithic batch"));
    });
    // The raw pass-through path: one extra hop over a pooled connection.
    group.bench_function("routed_eval_roundtrip_hot_cache", |b| {
        b.iter(|| routed.send_raw(black_box(&solo_line)).expect("routed eval"));
    });
    group.finish();

    match routed.request(RequestKind::Shutdown).expect("router shutdown") {
        ResponseKind::ShuttingDown => {}
        other => panic!("unexpected shutdown answer: {other:?}"),
    }
    router_thread.join().expect("router thread");
    for (addr, thread) in daemons {
        let mut client = Client::connect(addr).expect("connect for shutdown");
        match client.request(RequestKind::Shutdown).expect("daemon shutdown") {
            ResponseKind::ShuttingDown => {}
            other => panic!("unexpected shutdown answer: {other:?}"),
        }
        thread.join().expect("daemon thread");
    }
    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
