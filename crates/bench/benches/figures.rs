//! Criterion benchmarks regenerating every *figure* of the paper's evaluation at a
//! reduced scale. Each benchmark body is the same code path the `repro` binary runs at
//! paper scale; the reported rows (who wins, direction of the gaps) follow the paper's
//! shape even at this scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qec_bench::bench_scale;
use qec_experiments::runners;

fn configure(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));
    group
}

fn bench_figures(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = configure(c);

    group.bench_function("fig1_headline_fnfp_and_dlp", |b| {
        b.iter(|| runners::fig1_headline(&scale));
    });
    group.bench_function("fig3_device_characterization", |b| {
        b.iter(|| runners::fig3_device_characterization(&scale));
    });
    group.bench_function("fig4b_open_loop_ler", |b| {
        b.iter(|| runners::fig4b_open_loop_ler(&scale));
    });
    group.bench_function("fig5_surface_pattern_usage", |b| {
        b.iter(|| runners::fig5_surface_pattern_usage(&scale));
    });
    group.bench_function("fig8_color_code_patterns", |b| {
        b.iter(|| runners::fig8_color_code(&scale));
    });
    group.bench_function("fig9_speculation_accuracy", |b| {
        b.iter(|| runners::fig9_speculation_accuracy(&scale));
    });
    group.bench_function("fig10_surface_dlp_trajectories", |b| {
        b.iter(|| runners::fig10_surface_dlp(&scale));
    });
    group.bench_function("fig11_color_dlp_trajectories", |b| {
        b.iter(|| runners::fig11_color_dlp(&scale));
    });
    group.bench_function("fig12_ler_vs_distance", |b| {
        b.iter(|| runners::fig12_ler_vs_distance(&scale));
    });
    group.bench_function("fig13_error_rate_sensitivity", |b| {
        b.iter(|| runners::fig13_error_rate_sensitivity(&scale));
    });
    group.bench_function("fig14_distance_scaling", |b| {
        b.iter(|| runners::fig14_distance_scaling(&scale));
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
