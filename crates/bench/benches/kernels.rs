//! Micro-benchmarks of the hot kernels: round simulation, pattern classification,
//! union-find decoding, offline model construction, and the per-shot cost of the
//! legacy rebuild-everything Monte-Carlo path vs the batch engine. These bound the
//! throughput of the paper-scale reproduction runs.
//!
//! A snapshot of the numbers lives in `crates/bench/BENCH_baseline.json`
//! (regenerate with `cargo bench --bench kernels > crates/bench/BENCH_baseline.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use gladiator::{GladiatorConfig, GladiatorModel};
use leakage_speculation::{build_policy, PolicyKind};
use leaky_sim::{NoiseParams, Simulator};
use qec_codes::{CheckBasis, Code, MatchingGraph};
use qec_decoder::{detection_events, UnionFindDecoder};
use qec_experiments::engine::BatchEngine;
use qec_experiments::harness::{simulate_shot, ExperimentSpec};

fn bench_simulator_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_rounds");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    for d in [3usize, 5, 7, 9] {
        let code = Code::rotated_surface(d);
        group.bench_with_input(BenchmarkId::new("surface_gladiator_m", d), &code, |b, code| {
            let config = GladiatorConfig::default();
            b.iter(|| {
                let mut policy = build_policy(PolicyKind::GladiatorM, code, &config);
                let mut sim = Simulator::new(code, NoiseParams::default(), 5);
                sim.run_with_policy(policy.as_mut(), 20)
            });
        });
    }
    let color = Code::color_666(9);
    group.bench_function("color_d9_gladiator_dm", |b| {
        let config = GladiatorConfig::default();
        b.iter(|| {
            let mut policy = build_policy(PolicyKind::GladiatorDM, &color, &config);
            let mut sim = Simulator::new(&color, NoiseParams::default(), 5);
            sim.run_with_policy(policy.as_mut(), 20)
        });
    });
    group.finish();
}

fn bench_decoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_find_decoder");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    for d in [3usize, 5, 7] {
        let code = Code::rotated_surface(d);
        let rounds = 2 * d;
        let graph = MatchingGraph::build(&code, CheckBasis::Z, rounds + 1);
        let decoder = UnionFindDecoder::new(graph);
        let mut sim = Simulator::new(&code, NoiseParams::default(), 3);
        let run = sim.run_with_policy(&mut leaky_sim::policy::NeverLrc, rounds);
        let events = detection_events(&run, decoder.graph());
        group.bench_with_input(BenchmarkId::new("decode", d), &events, |b, events| {
            b.iter(|| decoder.decode(events));
        });
    }
    group.finish();
}

fn bench_offline_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("offline_model");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("build_surface_model", |b| {
        let code = Code::rotated_surface(7);
        b.iter(|| GladiatorModel::for_code(&code, GladiatorConfig::default()));
    });
    group.bench_function("build_bpc_model_width6", |b| {
        let code = Code::bpc(21);
        b.iter(|| GladiatorModel::for_code(&code, GladiatorConfig::default()));
    });
    group.bench_function("minimize_boolean_checker", |b| {
        let model = GladiatorModel::for_code(&Code::rotated_surface(5), GladiatorConfig::default());
        b.iter(|| model.minimized_expression());
    });
    group.finish();
}

/// Head-to-head per-shot cost: the legacy path (offline model + policy + simulator
/// rebuilt every shot) against the batch engine (artifacts built once, per-thread
/// contexts reseeded). Equal-output paths — the determinism tests pin that — so the
/// gap is pure amortizable setup.
fn bench_shot_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_paths");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    const SHOTS: usize = 16;
    for d in [3usize, 5] {
        let code = Code::rotated_surface(d);
        let spec = ExperimentSpec::quick(PolicyKind::GladiatorM).with_shots(SHOTS).with_rounds(20);
        group.bench_with_input(BenchmarkId::new("legacy_rebuild_per_shot", d), &code, |b, code| {
            b.iter(|| {
                (0..SHOTS as u64)
                    .map(|shot| simulate_shot(code, &spec, shot).num_rounds())
                    .sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("batch_engine", d), &code, |b, code| {
            b.iter(|| {
                BatchEngine::new(code, &spec)
                    .run_records()
                    .iter()
                    .map(leaky_sim::RunRecord::num_rounds)
                    .sum::<usize>()
            });
        });
        group.bench_with_input(BenchmarkId::new("batch_engine_prebuilt", d), &code, |b, code| {
            let engine = BatchEngine::new(code, &spec);
            b.iter(|| {
                engine.run_records().iter().map(leaky_sim::RunRecord::num_rounds).sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator_rounds,
    bench_decoder,
    bench_offline_model,
    bench_shot_paths
);
criterion_main!(benches);
