//! Benchmarks of the serving layer: wire-protocol encode/parse costs and the
//! full loopback `eval` round trip against a live daemon with a hot cache —
//! the per-query price a client pays once the corpus is resident, which is
//! the number the daemon exists to minimize (versus `repro replay`'s
//! process-startup + corpus-open + artifact-construction bill per query).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use leakage_speculation::PolicyKind;
use qec_experiments::replay::record_into_corpus;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_serve::{
    parse_request, parse_response, request_line, Client, EvalSpec, Request, RequestKind,
    ResponseKind, ServeConfig, Server,
};
use qec_trace::Corpus;

fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("qec-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut corpus = Corpus::open(&dir).expect("open bench corpus");
    let scenario = Scenario {
        code: CodeFamily::Surface,
        distance: 3,
        rounds: 9,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy: PolicyKind::EraserM,
        shots: 8,
        seed: 11,
        decode: false,
        decoder: None,
    };
    let entry = record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "serve bench")
        .expect("record bench cell");
    corpus.save().expect("save bench corpus");

    let server = Server::bind(&dir, &ServeConfig::default()).expect("bind bench server");
    let addr = server.local_addr();
    let daemon = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect bench client");

    let eval = Request {
        id: Some(1),
        request: RequestKind::Eval(EvalSpec {
            key: entry.key.clone(),
            policy: "gladiator+m".to_string(),
            mode: None,
            decode: None,
            decoder: None,
        }),
    };
    let eval_line = request_line(&eval);
    // Warm the cache (and capture a response line for the parse bench).
    let response_line = client.send_raw(&eval_line).expect("warmup eval");

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("encode_eval_request", |b| {
        b.iter(|| request_line(black_box(&eval)));
    });
    group.bench_function("parse_eval_request", |b| {
        b.iter(|| parse_request(black_box(&eval_line)).expect("parse"));
    });
    group.bench_function("parse_eval_response", |b| {
        b.iter(|| parse_response(black_box(&response_line)).expect("parse"));
    });
    // One full round trip: socket write, server-side cache-hit evaluation of
    // 8 recorded shots, response serialization, socket read.
    group.bench_function("eval_roundtrip_hot_cache", |b| {
        b.iter(|| client.send_raw(black_box(&eval_line)).expect("eval"));
    });
    // Same round trip through the per-item batch path: one request carrying
    // four pairings, answered as a `batch-items` list. Measures the amortized
    // per-pairing cost of the batch framing plus the worker-pool dispatch.
    let batch = Request {
        id: Some(2),
        request: RequestKind::BatchEval {
            evals: (0..4)
                .map(|_| EvalSpec {
                    key: entry.key.clone(),
                    policy: "gladiator+m".to_string(),
                    mode: None,
                    decode: None,
                    decoder: None,
                })
                .collect(),
            per_item: Some(true),
        },
    };
    let batch_line = request_line(&batch);
    group.bench_function("batch_eval_per_item_roundtrip_x4", |b| {
        b.iter(|| client.send_raw(black_box(&batch_line)).expect("batch eval"));
    });
    group.finish();

    match client.request(RequestKind::Shutdown).expect("shutdown") {
        ResponseKind::ShuttingDown => {}
        other => panic!("unexpected shutdown answer: {other:?}"),
    }
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
