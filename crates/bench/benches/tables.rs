//! Criterion benchmarks regenerating every *table* of the paper's evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use qec_bench::bench_scale;
use qec_experiments::runners;

fn bench_tables(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("table2_leakage_detection_efficacy", |b| {
        b.iter(|| runners::table2_efficacy(&scale));
    });
    group.bench_function("table3_fpga_lut_usage", |b| {
        b.iter(runners::table3_lut_usage);
    });
    group.bench_function("table4_equilibrium_and_inaccuracy", |b| {
        b.iter(|| runners::table4_equilibrium(&scale));
    });
    group.bench_function("table5_code_family_reduction_factors", |b| {
        b.iter(|| runners::table5_code_families(&scale));
    });
    group.bench_function("table6_mobility_classification", |b| {
        b.iter(|| runners::table6_mobility(&scale));
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
