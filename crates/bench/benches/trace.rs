//! Benchmarks of the trace subsystem: recording overhead over plain
//! simulation, `.qtr` encode/decode throughput, and replay vs re-simulation —
//! the pair that quantifies the record-once/replay-many value proposition
//! (each additional policy evaluated against a corpus costs `replay`, not
//! `resim`).
//!
//! A snapshot of the replay-vs-resim numbers (produced by `repro snapshot`)
//! lives in `crates/bench/BENCH_trace_baseline.json` and gates CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_experiments::engine::BatchEngine;
use qec_experiments::replay::{
    calibration_for, record_cell, replay_cell, replay_cell_closed_loop, trace_snapshot_scenario,
    LoadedCell,
};
use qec_trace::{TraceReader, TraceWriter};

fn bench_trace(c: &mut Criterion) {
    // The same pinned cell `repro snapshot` gates in CI — the bench and the
    // committed BENCH_trace_baseline.json always describe the same workload.
    let scenario = trace_snapshot_scenario();
    let policy = scenario.policy;
    let code = scenario.build_code();
    let spec = scenario.to_spec();
    let engine = BatchEngine::new(&code, &spec);
    let (header, traces) = record_cell(&scenario, policy, "bench");
    let mut encoded = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut encoded, &header).expect("in-memory write");
        for trace in &traces {
            writer.write_shot(trace).expect("in-memory write");
        }
        let _ = writer.finish().expect("in-memory write");
    }
    let cell = LoadedCell { header: header.clone(), shots: traces.clone(), code: code.clone() };
    let factory = Arc::new(PolicyFactory::new(&code, &calibration_for(&header)));

    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("record_16_shots", |b| {
        b.iter(|| engine.trace_records());
    });
    group.bench_function("encode_16_shots", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            let mut writer = TraceWriter::new(&mut bytes, &header).expect("in-memory write");
            for trace in &traces {
                writer.write_shot(trace).expect("in-memory write");
            }
            let _ = writer.finish().expect("in-memory write");
            bytes
        });
    });
    group.bench_function("decode_16_shots", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(encoded.as_slice()).expect("in-memory read");
            reader.read_all().expect("in-memory read")
        });
    });
    group.bench_function("replay_16_shots", |b| {
        b.iter(|| replay_cell(&cell, &factory, policy, None).expect("replay"));
    });
    group.bench_function("resim_16_shots", |b| {
        b.iter(|| engine.run());
    });
    // Closed-loop replay of the recording policy: zero divergence, so this is
    // the pure-replay fast path of exact counterfactual evaluation.
    group.bench_function("closed_loop_16_shots", |b| {
        b.iter(|| replay_cell_closed_loop(&cell, &factory, policy, None).expect("closed-loop"));
    });
    // Closed-loop replay of a different policy: pays divergence repair
    // (forced prefix + live suffix) on every divergent shot.
    group.bench_function("closed_loop_cross_16_shots", |b| {
        b.iter(|| {
            replay_cell_closed_loop(&cell, &factory, PolicyKind::EraserM, None)
                .expect("closed-loop cross")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
