//! Benchmarks of the trace subsystem: recording overhead over plain
//! simulation, `.qtr` encode/decode throughput, and replay vs re-simulation —
//! the pair that quantifies the record-once/replay-many value proposition
//! (each additional policy evaluated against a corpus costs `replay`, not
//! `resim`).
//!
//! The closed-loop lines cover both replay paths: per-policy divergence
//! repair (`closed_loop_cross`) and shared-checkpoint cross-policy
//! evaluation (`closed_loop_cross_shared`, `closed_loop_multi` — one forced
//! pass per shot serving four candidate suffixes).
//!
//! A snapshot of the replay-vs-resim numbers (produced by `repro snapshot`)
//! lives in `crates/bench/BENCH_trace_baseline.json` and gates CI.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_experiments::engine::BatchEngine;
use qec_experiments::replay::{
    calibration_for, evaluate_cell_set, record_cell, replay_cell, replay_cell_closed_loop,
    trace_snapshot_multi_cell, trace_snapshot_scenario, LoadedCell, ReplayMode,
    MULTI_SNAPSHOT_POLICIES,
};
use qec_trace::{TraceReader, TraceWriter};

fn bench_trace(c: &mut Criterion) {
    // The same pinned cell `repro snapshot` gates in CI — the bench and the
    // committed BENCH_trace_baseline.json always describe the same workload.
    let scenario = trace_snapshot_scenario();
    let policy = scenario.policy;
    let code = scenario.build_code();
    let spec = scenario.to_spec();
    let engine = BatchEngine::new(&code, &spec);
    let (header, traces) = record_cell(&scenario, policy, "bench");
    let mut encoded = Vec::new();
    {
        let mut writer = TraceWriter::new(&mut encoded, &header).expect("in-memory write");
        for trace in &traces {
            writer.write_shot(trace).expect("in-memory write");
        }
        let _ = writer.finish().expect("in-memory write");
    }
    let cell = LoadedCell { header: header.clone(), shots: traces.clone(), code: code.clone() };
    let factory = Arc::new(PolicyFactory::new(&code, &calibration_for(&header)));

    let mut group = c.benchmark_group("trace");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("record_16_shots", |b| {
        b.iter(|| engine.trace_records());
    });
    group.bench_function("encode_16_shots", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            let mut writer = TraceWriter::new(&mut bytes, &header).expect("in-memory write");
            for trace in &traces {
                writer.write_shot(trace).expect("in-memory write");
            }
            let _ = writer.finish().expect("in-memory write");
            bytes
        });
    });
    group.bench_function("decode_16_shots", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(encoded.as_slice()).expect("in-memory read");
            reader.read_all().expect("in-memory read")
        });
    });
    group.bench_function("replay_16_shots", |b| {
        b.iter(|| replay_cell(&cell, &factory, policy, None).expect("replay"));
    });
    group.bench_function("resim_16_shots", |b| {
        b.iter(|| engine.run());
    });
    // Closed-loop replay of the recording policy: zero divergence, so this is
    // the pure-replay fast path of exact counterfactual evaluation.
    group.bench_function("closed_loop_16_shots", |b| {
        b.iter(|| replay_cell_closed_loop(&cell, &factory, policy, None).expect("closed-loop"));
    });
    // Closed-loop replay of a different policy: pays divergence repair
    // (forced prefix + live suffix) on every divergent shot.
    group.bench_function("closed_loop_cross_16_shots", |b| {
        b.iter(|| {
            replay_cell_closed_loop(&cell, &factory, PolicyKind::EraserM, None)
                .expect("closed-loop cross")
        });
    });
    // Same cross-policy workload through the shared-checkpoint path. With a
    // single candidate there is nothing to share, so this measures the
    // overhead of checkpoint planning relative to the per-policy path above.
    group.bench_function("closed_loop_cross_shared_16_shots", |b| {
        b.iter(|| {
            evaluate_cell_set(
                &cell,
                &factory,
                &[PolicyKind::EraserM],
                &[None],
                ReplayMode::ClosedLoop,
                true,
            )
            .expect("closed-loop cross shared")
        });
    });
    // Four candidate policies against one organically-leaking recorded cell:
    // one forced pass per divergent shot plus per-candidate suffixes, instead
    // of four full re-simulations. This is the headline cost model of
    // shared-checkpoint cross-policy replay.
    let (multi_cell, multi_factory) = trace_snapshot_multi_cell();
    let no_decoders = vec![None; MULTI_SNAPSHOT_POLICIES.len()];
    group.bench_function("closed_loop_multi_16_shots", |b| {
        b.iter(|| {
            evaluate_cell_set(
                &multi_cell,
                &multi_factory,
                &MULTI_SNAPSHOT_POLICIES,
                &no_decoders,
                ReplayMode::ClosedLoop,
                true,
            )
            .expect("closed-loop multi")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_trace);
criterion_main!(benches);
