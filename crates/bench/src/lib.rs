//! Benchmark support crate.
//!
//! The actual Criterion benchmarks live in `benches/`: `figures` regenerates every
//! figure of the paper at a reduced scale, `tables` regenerates every table, and
//! `kernels` measures the hot kernels (round simulation, union-find decoding, offline
//! model construction). This library only hosts shared helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use qec_experiments::runners::Scale;

/// The scale used by the benchmark harness: small enough to finish in minutes, large
/// enough for the qualitative trends (who wins, and in which direction) to be visible.
#[must_use]
pub fn bench_scale() -> Scale {
    Scale { shots: 4, rounds_factor: 0.02, max_distance: 5, seed: 97 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_small() {
        let scale = bench_scale();
        assert!(scale.shots <= 8);
        assert!(scale.rounds_factor < 0.5);
    }
}
