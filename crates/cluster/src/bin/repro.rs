//! `repro` — regenerate the paper's experiments, run declarative sweeps,
//! manage record-once/replay-many trace corpora, and serve them hot.
//!
//! ```text
//! repro run      [--scale smoke|quick|paper] [--out DIR] [EXPERIMENT ...]
//! repro sweep    [--spec FILE | --grid KEY=V,V ...] [options] [--out FILE]
//!                [--corpus DIR [--record-policy LABEL] [--closed-loop]]
//!                [--adaptive --target-ci R --checkpoint DIR | --resume DIR]
//! repro record   [--spec FILE | --grid KEY=V,V ...] [options] --corpus DIR
//! repro replay   --corpus DIR [--policy L1,L2] [--decode] [--closed-loop]
//!                [--verify-live]
//! repro corpus   DIR [--verify]
//! repro corpus shard SRC --out DIR --replicas N [--replica-addr HOST:PORT ...]
//! repro serve    --corpus DIR [--addr HOST:PORT] [--cache-cells N]
//!                [--max-connections N] [--queue-limit N]
//! repro route    --cluster FILE [--addr HOST:PORT] [--replica-addr I=HOST:PORT ...]
//!                [--timeout-ms N] [--retries N] [--max-connections N]
//! repro query    --addr HOST:PORT ACTION [--key KEY] [--policy L1,L2]
//!                [--closed-loop] [--decode] [--timeout-ms N] [--retries N]
//! repro list
//! repro snapshot [--out FILE] [--trace-out FILE] [--cluster-out FILE]
//!                [--check BASELINE] [--check-trace BASELINE]
//!                [--check-cluster BASELINE] [--tolerance FRACTION]
//! repro version | repro --version
//! ```
//!
//! Argument parsing is strict: unknown subcommands, flags or experiment names
//! print usage to stderr and exit with status 2. `snapshot --check[-trace]`
//! exits 1 when a benchmark regressed beyond the tolerance; `replay
//! --verify-live` and `corpus --verify` exit 1 on a mismatch/corruption;
//! `query` exits 1 on an error response. Everything else exits 0.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use leakage_speculation::PolicyKind;
use qec_cluster::{cluster_snapshot, shard_corpus, Router, RouterConfig, ShardOptions};
use qec_decoder::DecoderKind;
use qec_experiments::adaptive::{
    adaptive_snapshot, resume_adaptive, run_adaptive, AdaptiveOutcome, AdaptiveSpec,
    ADAPTIVE_SCHEMA_VERSION,
};
use qec_experiments::replay::{
    cell_key, extend_into_corpus, load_entry, record_into_corpus, replay_corpus_with_stats,
    trace_snapshot, CellCheckpointStats, ExtendDisposition, ReplayMode, ReplayOptions,
    ReplayReport, REPLAY_SCHEMA_VERSION,
};
use qec_experiments::report::{
    bench_lines_to_string, compare_bench_lines, fmt_float, parse_bench_lines, text_table, to_json,
};
use qec_experiments::runners::{self, Scale};
use qec_experiments::scenario::CodeFamily;
use qec_experiments::sweep::{
    git_describe, run_sweep, run_sweep_with_corpus, snapshot, snapshot_spec, SweepReport,
    SweepSpec, SWEEP_SCHEMA_VERSION,
};
use qec_serve::client::ClientConfig;
use qec_serve::{
    parse_response, request_line, Client, ErrorCode, EvalSpec, Request, RequestKind, Response,
    ResponseKind, ServeConfig, Server, PROTOCOL_VERSION,
};
use qec_trace::Corpus;

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig3", "fig4b", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "table2", "table3", "table4", "table5", "table6",
];

const USAGE: &str = "\
usage: repro <COMMAND> [OPTIONS]

commands:
  run       rerun paper experiments: repro run [--scale smoke|quick|paper]
            [--out DIR] [EXPERIMENT ...]   (no names = all experiments)
  sweep     run a declarative scenario grid and write one JSON report:
            repro sweep [--spec FILE.json | --grid KEY=V[,V...] ...]
            [--scale smoke|quick|paper] [--shots N] [--rounds-per-distance N]
            [--seed N] [--no-decode] [--decoder uf,lookup] [--no-timing]
            [--out FILE] [--corpus DIR [--record-policy LABEL] [--closed-loop
            [--no-shared-checkpoints]]]
            [--adaptive --target-ci R --checkpoint DIR [--confidence C]
            [--initial-batch N] [--max-shots N] [--stop-after-rounds N]]
            or resume a checkpointed adaptive sweep:
            repro sweep --resume DIR [--stop-after-rounds N] [--out FILE]
            [--corpus DIR [--record-policy LABEL]]
            grid keys: d=3,5,7  p=1e-3,2e-3  lr=0.1  policy=eraser+m,...
            code=surface|color|hgp|bpc  decoder=uf,lookup
            a decoder axis replays every cell once per listed backend and
            labels each report row with its decoder (lookup is exact at d=3
            only; an unsupported pairing is a usage error)
            with --corpus, each policy-free cell is simulated once (recorded
            into DIR as a .qtr trace) and every grid policy is replayed;
            --closed-loop re-simulates each shot from its first schedule
            divergence, making every cell an exact counterfactual; each cell's
            policy group shares one forced prefix pass per divergent shot
            unless --no-shared-checkpoints (reports are byte-identical
            either way)
            --adaptive allocates shots per cell in deterministic rounds until
            the Wilson interval on the cell's failure rate reaches --target-ci
            relative half-width at --confidence (default 0.95), or the cell
            hits the shot ceiling (--max-shots overrides the spec's shots);
            batches start at --initial-batch (default 64) and double per
            round; the tally is checkpointed to --checkpoint DIR at every
            round boundary (kill -9 safe), --stop-after-rounds N pauses there
            (exit 0), and --resume continues a checkpointed run — the final
            report is byte-identical to the uninterrupted run's wherever it
            was stopped; with --corpus each finished cell is recorded into
            DIR under --record-policy (default: the spec's first policy),
            appending only the new shots when a shorter recording of the
            cell already exists (see docs/ADAPTIVE.md)
  record    record the grid's policy-free cells into a trace corpus:
            repro record [--spec FILE.json | --grid ...] [--scale ...]
            [--shots N] [--rounds-per-distance N] [--seed N]
            [--record-policy LABEL] --corpus DIR
  replay    replay policies against a recorded corpus without re-simulating:
            repro replay --corpus DIR [--policy L1,L2,...] [--decode]
            [--decoder uf,lookup] [--closed-loop [--no-shared-checkpoints]]
            [--verify-live] [--out FILE]
            --decoder replays each cell once per listed backend (implies
            --decode) and adds a decoder column to the summary and a
            `decoder` field to each report row
            --closed-loop repairs divergences by re-simulating from the first
            divergent round (exact counterfactual metrics + divergence
            profiles); the policy set shares one forced prefix pass per
            divergent shot unless --no-shared-checkpoints (reports are
            byte-identical either way; the summary's resim column shows the
            cell's forced passes `Nf` and served suffixes `Ns`); with
            --verify-live every policy is checked bit-for-bit against a fresh
            live simulation (exit 1 on any mismatch)
  corpus    inspect a corpus manifest: repro corpus DIR [--verify]
            (--verify re-reads every trace, checking CRCs and code identity)
            or shard one for cluster serving:
            repro corpus shard SRC --out DIR --replicas N
            [--replica-addr HOST:PORT ...]
            partitions SRC by the policy-free cell hash into N sub-corpora
            (DIR/replica-<i>, each servable by an unmodified `repro serve`)
            plus a DIR/cluster.json shard map recording the assignment and
            optional replica addresses (one --replica-addr per replica, in
            index order; see docs/CLUSTER.md)
  serve     run the speculation-evaluation daemon over a recorded corpus:
            repro serve --corpus DIR [--addr HOST:PORT] [--cache-cells N]
            [--max-connections N] [--queue-limit N]
            binds --addr (default 127.0.0.1:0 = ephemeral; the bound address
            is printed on startup), holds an LRU cache of N cells (default 8)
            hot in memory, and answers the newline-delimited JSON protocol of
            docs/SERVE_PROTOCOL.md until a shutdown request arrives; at most
            --max-connections clients (default 32) are served concurrently
            (extras get one `overloaded` error line) and at most --queue-limit
            evaluations (default 256, batches weigh their length) are admitted
            at once — over-limit requests are shed with `overloaded` instead
            of stalling the daemon; edits to the corpus manifest.json are
            picked up on the next request without dropping connections
  route     run the cluster router over replica daemons:
            repro route --cluster FILE [--addr HOST:PORT]
            [--replica-addr INDEX=HOST:PORT ...] [--timeout-ms N]
            [--retries N] [--max-connections N]
            speaks the daemon's exact protocol on --addr (default 127.0.0.1:0;
            the bound address is printed on startup), resolving each cell
            request to its owning replica from the FILE shard map and fanning
            split batches out concurrently; responses are byte-identical to a
            monolithic daemon serving the unsharded corpus; every replica call
            is bounded by --timeout-ms (default 5000, 0 = no deadline) with
            --retries reconnect attempts (default 1), after which that replica's
            answers are typed `unavailable` errors — never a hang, never a torn
            batch; --replica-addr overrides the shard map's recorded addresses
  query     send one request to a running daemon and print the raw response:
            repro query --addr HOST:PORT ACTION [flags]
            actions: ping | version | stats | cells | shutdown
                     stat --key KEY | verify --key KEY
                     eval --key KEY --policy LABEL [--closed-loop] [--decode]
                          [--decoder uf|lookup]
                     batch-eval [--key KEY ...] --policy L1,L2,...
                                [--closed-loop] [--decode] [--decoder uf|lookup]
            --decoder selects the serving backend (implies --decode; the
            daemon answers a typed bad-request for a backend that cannot
            serve the cell)
            batch-eval with no --key pairs every corpus cell with every
            policy and asks for per-item results: each pairing succeeds or
            fails on its own (exit 1 when any item failed); stdout carries
            the server's response line verbatim; --timeout-ms N bounds the
            connect and every read/write (default 10000, 0 = block forever);
            --retries N (default 0) re-sends a request the server shed with
            a typed `overloaded` error, after a short growing backoff
  list      print known experiments, policies and code families
  snapshot  run the pinned perf sweeps and write BENCH-format lines:
            repro snapshot [--out FILE] [--trace-out FILE] [--cluster-out FILE]
            [--check BASELINE] [--check-trace BASELINE]
            [--check-cluster BASELINE] [--tolerance FRACTION]
            (default tolerance 0.25 = +25%; the cluster snapshot round-trips
            a split batch-eval through a 2-replica router next to the same
            batch against a monolithic daemon)
  version   print version, git provenance and schema versions (also --version)

exit status: 0 ok; 1 gate failure (snapshot --check*, replay --verify-live,
corpus --verify); 2 usage error
";

/// A usage error: the message is printed to stderr followed by the usage text.
struct UsageError(String);

impl UsageError {
    fn new(message: impl Into<String>) -> Self {
        UsageError(message.into())
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        None => Err(UsageError::new("missing command")),
        Some("--help" | "-h" | "help") => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some("--version" | "-V" | "version") => cmd_version(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some(other) => Err(UsageError::new(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(code) => code,
        Err(UsageError(message)) => {
            // Tolerate a closed stderr so the exit code survives `2>&1 | head`.
            use std::io::Write as _;
            let _ = writeln!(std::io::stderr(), "repro: {message}");
            let _ = write!(std::io::stderr(), "{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Borrowing cursor over the argument list with one token of lookahead.
struct Args<'a> {
    items: &'a [String],
    pos: usize,
}

impl<'a> Args<'a> {
    fn new(items: &'a [String]) -> Self {
        Args { items, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.items.get(self.pos)?;
        self.pos += 1;
        Some(arg)
    }

    fn peek(&self) -> Option<&'a str> {
        self.items.get(self.pos).map(String::as_str)
    }

    /// Pulls the value of a `--flag VALUE` pair. A following flag token does
    /// not count as a value, so `--out --no-timing` is a usage error rather
    /// than a file named `--no-timing`.
    fn value(&mut self, flag: &str) -> Result<&'a str, UsageError> {
        match self.peek() {
            Some(value) if !value.starts_with("--") => {
                self.pos += 1;
                Ok(value)
            }
            _ => Err(UsageError::new(format!("{flag} requires a value"))),
        }
    }
}

fn parse_scale(value: &str) -> Result<Scale, UsageError> {
    match value {
        "smoke" => Ok(Scale::smoke()),
        "quick" => Ok(Scale::quick()),
        "paper" => Ok(Scale::paper()),
        other => Err(UsageError::new(format!("unknown scale `{other}` (smoke|quick|paper)"))),
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, UsageError> {
    value.parse().map_err(|_| UsageError::new(format!("{flag}: invalid value `{value}`")))
}

// ---------------------------------------------------------------------------------
// repro run
// ---------------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut scale = Scale::quick();
    let mut out_dir = PathBuf::from("repro-results");
    let mut selected: Vec<String> = Vec::new();
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--scale" => scale = parse_scale(iter.value("--scale")?)?,
            "--out" => out_dir = PathBuf::from(iter.value("--out")?),
            flag if flag.starts_with('-') => {
                return Err(UsageError::new(format!("unknown flag `{flag}` for `run`")));
            }
            name => selected.push(name.to_string()),
        }
    }
    if let Some(unknown) = selected.iter().find(|n| !EXPERIMENTS.contains(&n.as_str())) {
        return Err(UsageError::new(format!(
            "unknown experiment `{unknown}`; known: {}",
            EXPERIMENTS.join(", ")
        )));
    }
    if selected.is_empty() {
        selected = EXPERIMENTS.iter().map(|s| (*s).to_string()).collect();
    }
    fs::create_dir_all(&out_dir).expect("create output directory");
    for name in &selected {
        println!("=== {name} ===");
        let payload = run_one(name, &scale).expect("experiment names were validated above");
        let path = out_dir.join(format!("{name}.json"));
        fs::write(&path, payload).expect("write result file");
        println!("(saved {})\n", path.display());
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro sweep
// ---------------------------------------------------------------------------------

/// The spec-building flags shared by `sweep` and `record`: a grid (or spec
/// file) plus scalar overrides.
#[derive(Default)]
struct SpecFlags {
    scale: Option<Scale>,
    spec_file: Option<PathBuf>,
    grid: Vec<(String, String)>,
    shots: Option<usize>,
    rounds_per_distance: Option<usize>,
    seed: Option<u64>,
    no_decode: bool,
}

impl SpecFlags {
    /// Consumes `arg` when it is a spec flag, returning whether it was one.
    fn try_consume(&mut self, arg: &str, iter: &mut Args<'_>) -> Result<bool, UsageError> {
        match arg {
            "--spec" => self.spec_file = Some(PathBuf::from(iter.value("--spec")?)),
            "--grid" => {
                self.grid.push(split_grid_entry(iter.value("--grid")?)?);
                // Consume every following KEY=VALUES token.
                while iter.peek().is_some_and(|a| !a.starts_with("--") && a.contains('=')) {
                    let entry = iter.next().expect("peeked above");
                    self.grid.push(split_grid_entry(entry)?);
                }
            }
            "--scale" => self.scale = Some(parse_scale(iter.value("--scale")?)?),
            "--shots" => self.shots = Some(parse_number("--shots", iter.value("--shots")?)?),
            "--rounds-per-distance" => {
                let value = iter.value("--rounds-per-distance")?;
                self.rounds_per_distance = Some(parse_number("--rounds-per-distance", value)?);
            }
            "--seed" => self.seed = Some(parse_number("--seed", iter.value("--seed")?)?),
            "--no-decode" => self.no_decode = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Lowers the collected flags to a concrete [`SweepSpec`].
    fn build(self) -> Result<SweepSpec, UsageError> {
        let mut spec = match (&self.spec_file, self.grid.is_empty()) {
            (Some(_), false) => {
                return Err(UsageError::new("--spec and --grid are mutually exclusive"));
            }
            (Some(path), true) => {
                // A spec file is complete on its own; --scale only shapes the
                // grid-path defaults, so combining them would be silently ignored.
                if self.scale.is_some() {
                    return Err(UsageError::new("--scale applies only without --spec"));
                }
                let text = fs::read_to_string(path)
                    .map_err(|e| UsageError::new(format!("--spec {}: {e}", path.display())))?;
                serde_json::from_str::<SweepSpec>(&text)
                    .map_err(|e| UsageError::new(format!("--spec {}: {e}", path.display())))?
            }
            (None, _) => {
                let mut spec = SweepSpec::for_scale(&self.scale.unwrap_or_else(Scale::quick));
                apply_grid(&mut spec, &self.grid)?;
                spec
            }
        };
        // Scalar flags override whatever produced the spec (grid defaults or file).
        if let Some(shots) = self.shots {
            spec.shots = shots;
        }
        if let Some(k) = self.rounds_per_distance {
            spec.rounds_per_distance = k;
        }
        if let Some(seed) = self.seed {
            spec.seed = seed;
        }
        if self.no_decode {
            spec.decode = false;
        }
        Ok(spec)
    }
}

fn parse_decoder_label(label: &str) -> Result<DecoderKind, UsageError> {
    DecoderKind::from_label(label.trim()).ok_or_else(|| {
        UsageError::new(format!(
            "unknown decoder `{label}`; known: {}",
            DecoderKind::known_labels()
        ))
    })
}

fn parse_policy_label(label: &str) -> Result<PolicyKind, UsageError> {
    PolicyKind::from_label(label.trim()).ok_or_else(|| {
        UsageError::new(format!(
            "unknown policy `{label}`; known: {}",
            PolicyKind::ALL.map(PolicyKind::label).join(", ")
        ))
    })
}

fn cmd_sweep(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut flags = SpecFlags::default();
    let mut timing = true;
    let mut out: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut record_policy: Option<PolicyKind> = None;
    let mut mode = ReplayMode::OpenLoop;
    let mut shared_checkpoints = true;
    let mut decoders: Vec<DecoderKind> = Vec::new();
    let mut adaptive = false;
    let mut target_ci: Option<f64> = None;
    let mut confidence = 0.95f64;
    let mut initial_batch = 64usize;
    let mut max_shots: Option<usize> = None;
    let mut checkpoint_dir: Option<PathBuf> = None;
    let mut stop_after_rounds: Option<u64> = None;
    let mut resume_dir: Option<PathBuf> = None;
    let mut spec_flags_used = false;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        if flags.try_consume(arg, &mut iter)? {
            spec_flags_used = true;
            continue;
        }
        match arg {
            "--no-timing" => timing = false,
            "--out" => out = Some(PathBuf::from(iter.value("--out")?)),
            "--corpus" => corpus_dir = Some(PathBuf::from(iter.value("--corpus")?)),
            "--record-policy" => {
                record_policy = Some(parse_policy_label(iter.value("--record-policy")?)?);
            }
            "--closed-loop" => mode = ReplayMode::ClosedLoop,
            "--no-shared-checkpoints" => shared_checkpoints = false,
            "--decoder" => {
                for label in iter.value("--decoder")?.split(',') {
                    decoders.push(parse_decoder_label(label)?);
                }
            }
            "--adaptive" => adaptive = true,
            "--target-ci" => {
                target_ci = Some(parse_number("--target-ci", iter.value("--target-ci")?)?);
            }
            "--confidence" => {
                confidence = parse_number("--confidence", iter.value("--confidence")?)?;
            }
            "--initial-batch" => {
                initial_batch = parse_number("--initial-batch", iter.value("--initial-batch")?)?;
            }
            "--max-shots" => {
                max_shots = Some(parse_number("--max-shots", iter.value("--max-shots")?)?);
            }
            "--checkpoint" => checkpoint_dir = Some(PathBuf::from(iter.value("--checkpoint")?)),
            "--stop-after-rounds" => {
                stop_after_rounds =
                    Some(parse_number("--stop-after-rounds", iter.value("--stop-after-rounds")?)?);
            }
            "--resume" => resume_dir = Some(PathBuf::from(iter.value("--resume")?)),
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `sweep`")));
            }
        }
    }
    if record_policy.is_some() && corpus_dir.is_none() {
        return Err(UsageError::new("--record-policy requires --corpus"));
    }
    if let Some(dir) = resume_dir {
        // Resume takes its whole spec from the checkpoint: flags that would
        // redefine the run contradict the byte-identity contract.
        if spec_flags_used || adaptive || !decoders.is_empty() || mode == ReplayMode::ClosedLoop {
            return Err(UsageError::new(
                "--resume takes the spec from the checkpoint; it only accepts \
                 --stop-after-rounds, --out, --corpus and --record-policy",
            ));
        }
        if target_ci.is_some() || max_shots.is_some() || checkpoint_dir.is_some() {
            return Err(UsageError::new(
                "--resume reads --target-ci/--max-shots/--checkpoint from the checkpoint \
                 directory; do not pass them",
            ));
        }
        let outcome = resume_adaptive(&dir, stop_after_rounds).map_err(UsageError::new)?;
        return finish_adaptive(outcome, &dir, out, corpus_dir, record_policy);
    }
    if adaptive {
        if mode == ReplayMode::ClosedLoop || !shared_checkpoints {
            return Err(UsageError::new("--adaptive runs live; it cannot combine --closed-loop"));
        }
        let checkpoint = checkpoint_dir
            .ok_or_else(|| UsageError::new("--adaptive requires --checkpoint DIR"))?;
        let target = target_ci
            .ok_or_else(|| UsageError::new("--adaptive requires --target-ci R (e.g. 0.1)"))?;
        let mut spec = flags.build()?;
        if !decoders.is_empty() {
            spec.decoders = Some(decoders);
        }
        if let Some(ceiling) = max_shots {
            spec.shots = ceiling;
        }
        spec.adaptive =
            Some(AdaptiveSpec { target_rel_halfwidth: target, confidence, initial_batch });
        // Adaptive/decoder/family violations surface here as typed usage
        // errors (exit 2) rather than mid-sweep failures.
        spec.expand().map_err(UsageError::new)?;
        let outcome =
            run_adaptive(&spec, &checkpoint, stop_after_rounds).map_err(UsageError::new)?;
        return finish_adaptive(outcome, &checkpoint, out, corpus_dir, record_policy);
    }
    if target_ci.is_some()
        || max_shots.is_some()
        || checkpoint_dir.is_some()
        || stop_after_rounds.is_some()
    {
        return Err(UsageError::new(
            "--target-ci/--max-shots/--checkpoint/--stop-after-rounds require --adaptive",
        ));
    }
    if mode == ReplayMode::ClosedLoop && corpus_dir.is_none() {
        return Err(UsageError::new("--closed-loop requires --corpus"));
    }
    if !shared_checkpoints && mode != ReplayMode::ClosedLoop {
        return Err(UsageError::new("--no-shared-checkpoints requires --closed-loop"));
    }
    let mut spec = flags.build()?;
    if !decoders.is_empty() {
        spec.decoders = Some(decoders);
    }
    // Decoder/family mismatches surface here, at expansion time, as typed
    // usage errors (exit 2) rather than mid-sweep failures.
    spec.expand().map_err(UsageError::new)?;
    let report = match &corpus_dir {
        Some(dir) => {
            run_sweep_with_corpus(&spec, dir, record_policy, timing, mode, shared_checkpoints)
                .map_err(UsageError::new)?
        }
        None => run_sweep(&spec, timing).map_err(UsageError::new)?,
    };
    let json = to_json(&report);
    // Persist the artifact before any (interruptible) console output, so a
    // consumer that closes our stdout early still gets the report on disk.
    let out = out.unwrap_or_else(|| PathBuf::from("repro-results/sweep.json"));
    let to_stdout = out.as_os_str() == "-";
    if !to_stdout {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).expect("create output directory");
        }
        fs::write(&out, json.as_bytes()).expect("write sweep report");
    }
    if to_stdout {
        // Keep stdout machine-readable: the summary table goes to stderr so
        // `repro sweep --out - | jq .` sees nothing but the JSON report.
        eprint!("{}", sweep_summary(&report));
        emit(&json);
    } else {
        emit(&sweep_summary(&report));
        emit(&format!("(saved {} cells to {})", report.cells.len(), out.display()));
    }
    Ok(ExitCode::SUCCESS)
}

/// Lands an adaptive sweep outcome: `None` is a pause at a round boundary
/// (checkpointed, exit 0 with a resume hint); `Some` persists the report
/// exactly like the fixed-shot path, optionally records the finished cells
/// into a corpus (appending only new shots to cells already recorded), and
/// prints the allocation provenance that deliberately lives outside the
/// report bytes.
fn finish_adaptive(
    outcome: Option<AdaptiveOutcome>,
    checkpoint: &std::path::Path,
    out: Option<PathBuf>,
    corpus_dir: Option<PathBuf>,
    record_policy: Option<PolicyKind>,
) -> Result<ExitCode, UsageError> {
    let Some(outcome) = outcome else {
        emit(&format!(
            "adaptive sweep paused at a round boundary (state checkpointed); continue with \
             `repro sweep --resume {}`",
            checkpoint.display()
        ));
        return Ok(ExitCode::SUCCESS);
    };
    if let Some(dir) = &corpus_dir {
        let recording = record_policy
            .or_else(|| outcome.report.cells.first().map(|cell| cell.scenario.policy))
            .ok_or_else(|| UsageError::new("adaptive sweep expanded to no cells"))?;
        let mut corpus = Corpus::open(dir).map_err(|e| UsageError::new(e.to_string()))?;
        let generator = format!("repro sweep {}", env!("CARGO_PKG_VERSION"));
        // Ascending shot order maximizes append reuse: a cell's shorter
        // recording is grown before a longer allocation of the same cell
        // asks for it.
        let mut scenarios: Vec<_> = outcome.report.cells.iter().map(|c| c.scenario).collect();
        scenarios.sort_by_key(|s| s.shots);
        let mut seen: Vec<String> = Vec::new();
        let (mut recorded, mut extended, mut appended, mut cached) =
            (0usize, 0usize, 0usize, 0usize);
        for scenario in &scenarios {
            let key = cell_key(scenario);
            if seen.contains(&key) {
                continue; // several policies share one policy-free cell
            }
            seen.push(key);
            let (_, disposition) = extend_into_corpus(&mut corpus, scenario, recording, &generator)
                .map_err(UsageError::new)?;
            match disposition {
                ExtendDisposition::Cached => cached += 1,
                ExtendDisposition::Extended { appended: shots } => {
                    extended += 1;
                    appended += shots;
                }
                ExtendDisposition::Recorded => recorded += 1,
            }
        }
        corpus.save().map_err(|e| UsageError::new(e.to_string()))?;
        emit(&format!(
            "corpus {}: {recorded} cells recorded, {extended} extended (+{appended} shots), \
             {cached} already current",
            dir.display()
        ));
    }
    let json = to_json(&outcome.report);
    let out = out.unwrap_or_else(|| PathBuf::from("repro-results/sweep.json"));
    let to_stdout = out.as_os_str() == "-";
    if !to_stdout {
        if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent).expect("create output directory");
        }
        fs::write(&out, json.as_bytes()).expect("write sweep report");
    }
    // Allocation provenance goes to the console (stderr when stdout carries
    // the report), never into the report bytes — an adaptive run at its
    // ceiling must stay byte-identical to the legacy fixed-shot report.
    let provenance = format!(
        "adaptive: {} rounds, {} shots allocated ({} cells converged, {} at ceiling)",
        outcome.rounds, outcome.shots_allocated, outcome.converged, outcome.ceilinged
    );
    if to_stdout {
        eprint!("{}", sweep_summary(&outcome.report));
        eprintln!("{provenance}");
        emit(&json);
    } else {
        emit(&sweep_summary(&outcome.report));
        emit(&provenance);
        emit(&format!("(saved {} cells to {})", outcome.report.cells.len(), out.display()));
    }
    Ok(ExitCode::SUCCESS)
}

/// Prints a line to stdout, ignoring a closed pipe (`repro sweep | head` must
/// not abort after the report is already on disk).
fn emit(line: &str) {
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{line}");
}

/// Splits one `KEY=V[,V...]` grid token.
fn split_grid_entry(entry: &str) -> Result<(String, String), UsageError> {
    entry
        .split_once('=')
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .ok_or_else(|| UsageError::new(format!("--grid expects KEY=VALUES, got `{entry}`")))
}

/// Applies `KEY=V,V` grid entries onto the scale-derived default spec.
fn apply_grid(spec: &mut SweepSpec, grid: &[(String, String)]) -> Result<(), UsageError> {
    fn values<T: std::str::FromStr>(key: &str, list: &str) -> Result<Vec<T>, UsageError> {
        list.split(',')
            .map(|item| {
                item.trim()
                    .parse()
                    .map_err(|_| UsageError::new(format!("grid {key}: invalid value `{item}`")))
            })
            .collect()
    }
    for (key, list) in grid {
        match key.as_str() {
            "d" | "distance" => spec.distances = values(key, list)?,
            "p" | "error-rate" => spec.error_rates = values(key, list)?,
            "lr" | "leakage-ratio" => spec.leakage_ratios = values(key, list)?,
            "policy" => {
                spec.policies = list
                    .split(',')
                    .map(|label| {
                        PolicyKind::from_label(label.trim()).ok_or_else(|| {
                            UsageError::new(format!(
                                "grid policy: unknown policy `{label}`; known: {}",
                                PolicyKind::ALL.map(PolicyKind::label).join(", ")
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
            }
            "code" | "family" => {
                spec.code = CodeFamily::from_label(list.trim()).ok_or_else(|| {
                    UsageError::new(format!(
                        "grid code: unknown family `{list}`; known: {}",
                        CodeFamily::ALL.map(CodeFamily::label).join(", ")
                    ))
                })?;
            }
            "decoder" => {
                spec.decoders =
                    Some(list.split(',').map(parse_decoder_label).collect::<Result<_, _>>()?);
            }
            other => {
                return Err(UsageError::new(format!(
                    "unknown grid key `{other}` (d, p, lr, policy, code, decoder)"
                )));
            }
        }
    }
    Ok(())
}

fn sweep_summary(report: &SweepReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|cell| {
            vec![
                cell.code.clone(),
                fmt_float(cell.scenario.p),
                fmt_float(cell.scenario.leakage_ratio),
                cell.scenario.policy.label().to_string(),
                cell.metrics.logical_error_rate.map_or("-".to_string(), fmt_float),
                fmt_float(cell.metrics.lrcs_per_round),
                fmt_float(cell.metrics.inaccuracy_per_round),
                if report.timing { format!("{:.1}", cell.wall_time_ms) } else { "-".to_string() },
            ]
        })
        .collect();
    text_table(&["code", "p", "lr", "policy", "LER", "LRC/round", "inacc/round", "ms"], &rows)
}

// ---------------------------------------------------------------------------------
// repro record
// ---------------------------------------------------------------------------------

fn cmd_record(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut flags = SpecFlags::default();
    let mut corpus_dir: Option<PathBuf> = None;
    let mut record_policy: Option<PolicyKind> = None;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        if flags.try_consume(arg, &mut iter)? {
            continue;
        }
        match arg {
            "--corpus" => corpus_dir = Some(PathBuf::from(iter.value("--corpus")?)),
            "--record-policy" => {
                record_policy = Some(parse_policy_label(iter.value("--record-policy")?)?);
            }
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `record`")));
            }
        }
    }
    let corpus_dir = corpus_dir.ok_or_else(|| UsageError::new("record requires --corpus DIR"))?;
    let spec = flags.build()?;
    let scenarios = spec.expand().map_err(UsageError::new)?;
    let recording = record_policy
        .or_else(|| scenarios.first().map(|s| s.policy))
        .expect("expansion yields at least one scenario");
    let mut corpus = Corpus::open(&corpus_dir).map_err(|e| UsageError::new(e.to_string()))?;
    let generator = format!("repro record {}", env!("CARGO_PKG_VERSION"));
    let mut seen: Vec<String> = Vec::new();
    let (mut recorded, mut cached) = (0usize, 0usize);
    for scenario in &scenarios {
        let key = cell_key(scenario);
        if seen.contains(&key) {
            continue; // several policies share one policy-free cell
        }
        seen.push(key.clone());
        if let Some(entry) = corpus.lookup(&key) {
            // A hit recorded under a different policy is not the corpus the
            // user asked for — mirroring `sweep --corpus` strictness.
            if entry.policy != recording.label() {
                return Err(UsageError::new(format!(
                    "cell {key}: corpus already holds a trace recorded with policy \
                     `{}`, but this run records with `{}` — pass --record-policy {} or use a \
                     fresh corpus directory",
                    entry.policy,
                    recording.label(),
                    entry.policy
                )));
            }
            cached += 1;
            emit(&format!("cached   {key}"));
            continue;
        }
        let entry = record_into_corpus(&mut corpus, scenario, recording, &generator)
            .map_err(UsageError::new)?;
        recorded += 1;
        emit(&format!("recorded {key} -> {}", entry.file));
    }
    corpus.save().map_err(|e| UsageError::new(e.to_string()))?;
    emit(&format!(
        "({recorded} cell(s) recorded with policy {}, {cached} cached, corpus {})",
        recording.label(),
        corpus_dir.display()
    ));
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro replay
// ---------------------------------------------------------------------------------

fn cmd_replay(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut corpus_dir: Option<PathBuf> = None;
    let mut options = ReplayOptions::default();
    let mut out: Option<PathBuf> = None;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--corpus" => corpus_dir = Some(PathBuf::from(iter.value("--corpus")?)),
            "--policy" => {
                for label in iter.value("--policy")?.split(',') {
                    options.policies.push(parse_policy_label(label)?);
                }
            }
            "--decode" => options.decode = true,
            "--decoder" => {
                for label in iter.value("--decoder")?.split(',') {
                    options.decoders.push(parse_decoder_label(label)?);
                }
            }
            "--closed-loop" => options.mode = ReplayMode::ClosedLoop,
            "--no-shared-checkpoints" => options.shared_checkpoints = false,
            "--verify-live" => options.verify_live = true,
            "--out" => out = Some(PathBuf::from(iter.value("--out")?)),
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `replay`")));
            }
        }
    }
    let corpus_dir = corpus_dir.ok_or_else(|| UsageError::new("replay requires --corpus DIR"))?;
    if !options.shared_checkpoints && options.mode != ReplayMode::ClosedLoop {
        return Err(UsageError::new("--no-shared-checkpoints requires --closed-loop"));
    }
    // Selecting a decoder is asking for decoded metrics.
    if !options.decoders.is_empty() {
        options.decode = true;
    }
    let (report, checkpoint_stats) =
        replay_corpus_with_stats(&corpus_dir, &options).map_err(UsageError::new)?;
    let json = to_json(&report);
    let summary = replay_summary(&report, &checkpoint_stats);
    match &out {
        Some(path) if path.as_os_str() == "-" => {
            // Keep stdout machine-readable, as `sweep --out -` does.
            eprint!("{summary}");
            emit(&json);
        }
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs::create_dir_all(parent).expect("create output directory");
            }
            fs::write(path, json.as_bytes()).expect("write replay report");
            emit(&summary);
            emit(&format!("(saved {} rows to {})", report.results.len(), path.display()));
        }
        None => emit(&summary),
    }
    let mismatches: Vec<&str> = report
        .results
        .iter()
        .filter(|row| row.live_match == Some(false))
        .map(|row| row.key.as_str())
        .collect();
    if options.verify_live {
        let verified = report.results.iter().filter(|row| row.live_match.is_some()).count();
        if verified == 0 {
            // Nothing was verified — passing here would green-light a gate
            // that checked nothing. (Open-loop verification only covers exact
            // pairings; closed-loop verifies every pairing.)
            eprintln!(
                "verify-live FAILED: nothing was verified (in open-loop mode include the \
                 recording policy in --policy, or pass --closed-loop to verify every policy)"
            );
            return Ok(ExitCode::FAILURE);
        }
        if mismatches.is_empty() {
            let message = format!(
                "verify-live OK: {verified} {} replay(s) matched the live engine bit-for-bit",
                report.replay_mode
            );
            if out.as_ref().is_some_and(|path| path.as_os_str() == "-") {
                // `--out -` promises pure JSON on stdout; status goes to stderr.
                eprintln!("{message}");
            } else {
                emit(&message);
            }
        } else {
            eprintln!(
                "verify-live FAILED for {} cell(s): {}",
                mismatches.len(),
                mismatches.join(", ")
            );
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn replay_summary(report: &ReplayReport, checkpoint_stats: &[CellCheckpointStats]) -> String {
    // The decoder column appears only when some row carries a selected
    // backend, so legacy (no `--decoder`) summaries are unchanged.
    let with_decoder = report.results.iter().any(|row| row.decoder.is_some());
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .map(|row| {
            let mut columns = vec![
                row.code.clone(),
                row.recorded_policy.clone(),
                row.policy.clone(),
                if row.exact { "yes".to_string() } else { format!("no ({})", row.divergent_shots) },
                fmt_float(row.metrics.false_negatives),
                fmt_float(row.metrics.false_positives),
                fmt_float(row.metrics.lrcs_per_round),
                row.metrics.logical_error_rate.map_or("-".to_string(), fmt_float),
                // The honest cost measure: divergent shots re-execute their
                // full round count (forced prefix + live suffix), annotated
                // with the cell's amortized bill — forced prefix passes `Nf`
                // vs candidate suffixes served `Ns` (shared checkpoints make
                // one forced pass serve the whole policy set).
                row.divergence_profile.as_ref().map_or("-".to_string(), |profile| {
                    let cell = checkpoint_stats.iter().find(|stats| stats.key == row.key);
                    cell.map_or_else(
                        || format!("{:.0}%", profile.simulated_fraction() * 100.0),
                        |cell| {
                            format!(
                                "{:.0}% {}f/{}s",
                                profile.simulated_fraction() * 100.0,
                                cell.stats.forced_passes,
                                cell.stats.suffixes,
                            )
                        },
                    )
                }),
                row.live_match.map_or("-".to_string(), |ok| {
                    if ok {
                        "match".to_string()
                    } else {
                        "MISMATCH".to_string()
                    }
                }),
            ];
            if with_decoder {
                columns.insert(3, row.decoder.clone().unwrap_or_else(|| "uf".to_string()));
            }
            columns
        })
        .collect();
    let mut headers = vec![
        "code",
        "recorded",
        "policy",
        "exact",
        "FN",
        "FP",
        "LRC/round",
        "LER",
        "resim",
        "live",
    ];
    if with_decoder {
        headers.insert(3, "decoder");
    }
    format!("replay mode: {}\n{}", report.replay_mode, text_table(&headers, &rows))
}

// ---------------------------------------------------------------------------------
// repro corpus
// ---------------------------------------------------------------------------------

fn cmd_corpus(args: &[String]) -> Result<ExitCode, UsageError> {
    // `corpus shard` is a sub-subcommand; a corpus directory literally named
    // `shard` is still reachable as `./shard`.
    if args.first().map(String::as_str) == Some("shard") {
        return cmd_corpus_shard(&args[1..]);
    }
    let mut dir: Option<PathBuf> = None;
    let mut verify = false;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--verify" => verify = true,
            flag if flag.starts_with('-') => {
                return Err(UsageError::new(format!("unknown flag `{flag}` for `corpus`")));
            }
            path if dir.is_none() => dir = Some(PathBuf::from(path)),
            extra => {
                return Err(UsageError::new(format!("unexpected argument `{extra}` for `corpus`")));
            }
        }
    }
    let dir = dir.ok_or_else(|| UsageError::new("corpus requires a directory"))?;
    let corpus = Corpus::open_existing(&dir).map_err(|e| UsageError::new(e.to_string()))?;
    let rows: Vec<Vec<String>> = corpus
        .entries()
        .iter()
        .map(|entry| {
            vec![
                entry.code.clone(),
                entry.policy.clone(),
                entry.rounds.to_string(),
                entry.shots.to_string(),
                entry.seed.to_string(),
                entry.file.clone(),
            ]
        })
        .collect();
    emit(&format!("corpus {} ({} cell(s))", dir.display(), corpus.entries().len()));
    if !rows.is_empty() {
        emit(&text_table(&["code", "policy", "rounds", "shots", "seed", "file"], &rows));
    }
    if !verify {
        return Ok(ExitCode::SUCCESS);
    }
    let mut corrupt = 0usize;
    for entry in corpus.entries() {
        match load_entry(&corpus, entry) {
            Ok(_) => emit(&format!("verified {}", entry.file)),
            Err(e) => {
                corrupt += 1;
                eprintln!("CORRUPT  {}: {e}", entry.file);
            }
        }
    }
    if corrupt > 0 {
        eprintln!("corpus verify FAILED: {corrupt} corrupt trace(s)");
        return Ok(ExitCode::FAILURE);
    }
    emit("corpus verify OK: every trace decoded with valid CRCs and matching code identity");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro corpus shard
// ---------------------------------------------------------------------------------

fn cmd_corpus_shard(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut source: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut replicas: Option<usize> = None;
    let mut addrs: Vec<String> = Vec::new();
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--out" => out = Some(PathBuf::from(iter.value("--out")?)),
            "--replicas" => {
                replicas = Some(parse_number("--replicas", iter.value("--replicas")?)?);
            }
            "--replica-addr" => addrs.push(iter.value("--replica-addr")?.to_string()),
            flag if flag.starts_with('-') => {
                return Err(UsageError::new(format!("unknown flag `{flag}` for `corpus shard`")));
            }
            path if source.is_none() => source = Some(PathBuf::from(path)),
            extra => {
                return Err(UsageError::new(format!(
                    "unexpected argument `{extra}` for `corpus shard`"
                )));
            }
        }
    }
    let source =
        source.ok_or_else(|| UsageError::new("corpus shard requires a source directory"))?;
    let out = out.ok_or_else(|| UsageError::new("corpus shard requires --out DIR"))?;
    let replicas = replicas.ok_or_else(|| UsageError::new("corpus shard requires --replicas N"))?;
    if replicas == 0 {
        return Err(UsageError::new("--replicas must be at least 1"));
    }
    if !addrs.is_empty() && addrs.len() != replicas {
        return Err(UsageError::new(format!(
            "--replica-addr given {} time(s) for {replicas} replica(s) — pass one per \
             replica in index order, or none",
            addrs.len()
        )));
    }
    let options = ShardOptions {
        addrs,
        created_by: format!("repro corpus shard {}", env!("CARGO_PKG_VERSION")),
        git_describe: git_describe(),
    };
    // Shard failures are runtime errors (exit 1): the flags were fine.
    let map = match shard_corpus(&source, &out, replicas, &options) {
        Ok(map) => map,
        Err(message) => {
            eprintln!("repro corpus shard: {message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    emit(&format!(
        "sharded {} ({} cell(s)) across {} replica(s) under {}",
        source.display(),
        map.cells(),
        map.replicas.len(),
        out.display()
    ));
    let rows: Vec<Vec<String>> = map
        .replicas
        .iter()
        .map(|replica| {
            vec![
                replica.index.to_string(),
                replica.dir.clone(),
                replica.cells.to_string(),
                if replica.addr.is_empty() { "-".to_string() } else { replica.addr.clone() },
            ]
        })
        .collect();
    emit(&text_table(&["replica", "dir", "cells", "addr"], &rows));
    emit(&format!("shard map: {}", out.join(qec_trace::cluster::CLUSTER_FILE).display()));
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro route
// ---------------------------------------------------------------------------------

fn cmd_route(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut cluster: Option<PathBuf> = None;
    let mut overrides: Vec<(usize, String)> = Vec::new();
    let mut config = RouterConfig::default();
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--cluster" => cluster = Some(PathBuf::from(iter.value("--cluster")?)),
            "--addr" => config.addr = iter.value("--addr")?.to_string(),
            "--replica-addr" => {
                let value = iter.value("--replica-addr")?;
                let (index, addr) = value.split_once('=').ok_or_else(|| {
                    UsageError::new(format!("--replica-addr `{value}`: expected INDEX=HOST:PORT"))
                })?;
                overrides.push((parse_number("--replica-addr", index)?, addr.to_string()));
            }
            "--timeout-ms" => {
                let ms: u64 = parse_number("--timeout-ms", iter.value("--timeout-ms")?)?;
                config.replica_timeout = (ms > 0).then(|| std::time::Duration::from_millis(ms));
            }
            "--retries" => {
                config.replica_retries = parse_number("--retries", iter.value("--retries")?)?;
            }
            "--max-connections" => {
                config.max_connections =
                    parse_number("--max-connections", iter.value("--max-connections")?)?;
                if config.max_connections == 0 {
                    return Err(UsageError::new("--max-connections must be at least 1"));
                }
            }
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `route`")));
            }
        }
    }
    let cluster = cluster.ok_or_else(|| UsageError::new("route requires --cluster FILE"))?;
    let router = match Router::bind(&cluster, &overrides, &config) {
        Ok(router) => router,
        Err(message) => {
            eprintln!("repro route: {message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    // Same announce-line contract as `repro serve`: scripts parse the bound
    // (possibly ephemeral) address from the first line.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "qec-cluster routing on {} (cluster {}, {} replica(s), {} cell(s), \
             {} connection(s))",
            router.local_addr(),
            cluster.display(),
            router.replica_count(),
            router.cluster_cells(),
            config.max_connections
        );
        let _ = stdout.flush();
    }
    router.run();
    emit("qec-cluster: clean shutdown");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro serve
// ---------------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut corpus_dir: Option<PathBuf> = None;
    let mut config = ServeConfig::default();
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--corpus" => corpus_dir = Some(PathBuf::from(iter.value("--corpus")?)),
            "--addr" => config.addr = iter.value("--addr")?.to_string(),
            "--cache-cells" => {
                config.cache_cells = parse_number("--cache-cells", iter.value("--cache-cells")?)?;
                if config.cache_cells == 0 {
                    return Err(UsageError::new("--cache-cells must be at least 1"));
                }
            }
            "--max-connections" => {
                config.max_connections =
                    parse_number("--max-connections", iter.value("--max-connections")?)?;
                if config.max_connections == 0 {
                    return Err(UsageError::new("--max-connections must be at least 1"));
                }
            }
            "--queue-limit" => {
                config.queue_limit = parse_number("--queue-limit", iter.value("--queue-limit")?)?;
                if config.queue_limit == 0 {
                    return Err(UsageError::new("--queue-limit must be at least 1"));
                }
            }
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `serve`")));
            }
        }
    }
    let corpus_dir = corpus_dir.ok_or_else(|| UsageError::new("serve requires --corpus DIR"))?;
    // Corpus/bind failures are runtime errors (exit 1), not usage errors: the
    // flags were fine, the environment was not.
    let server = match Server::bind(&corpus_dir, &config) {
        Ok(server) => server,
        Err(message) => {
            eprintln!("repro serve: {message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    // The announce line is the startup handshake scripts parse for the bound
    // (possibly ephemeral) address — flush it through any pipe buffering.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout();
        let _ = writeln!(
            stdout,
            "qec-serve listening on {} (corpus {}, {} cell(s), cache {} cell(s), \
             {} connection(s), queue {})",
            server.local_addr(),
            corpus_dir.display(),
            server.corpus_cells(),
            config.cache_cells,
            config.max_connections,
            config.queue_limit
        );
        let _ = stdout.flush();
    }
    server.run();
    emit("qec-serve: clean shutdown");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro query
// ---------------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut addr: Option<String> = None;
    let mut action: Option<String> = None;
    let mut keys: Vec<String> = Vec::new();
    let mut policies: Vec<String> = Vec::new();
    let mut mode: Option<String> = None;
    let mut decode = false;
    let mut decoder: Option<String> = None;
    // Deadlines default on: `query` talks to a daemon it does not control,
    // so a hung or partitioned server must yield a typed failure, not a
    // wedged invocation.
    let mut timeout_ms: u64 = 10_000;
    let mut retries: u32 = 0;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--addr" => addr = Some(iter.value("--addr")?.to_string()),
            "--key" => keys.push(iter.value("--key")?.to_string()),
            "--timeout-ms" => {
                timeout_ms = parse_number("--timeout-ms", iter.value("--timeout-ms")?)?;
            }
            "--retries" => retries = parse_number("--retries", iter.value("--retries")?)?,
            "--policy" => {
                for label in iter.value("--policy")?.split(',') {
                    // Validated client-side for a friendly exit-2; the server
                    // re-validates and answers unknown-policy for raw clients.
                    parse_policy_label(label)?;
                    policies.push(label.trim().to_string());
                }
            }
            "--closed-loop" => mode = Some(ReplayMode::ClosedLoop.label().to_string()),
            "--decode" => decode = true,
            "--decoder" => {
                // Validated client-side for a friendly exit-2; the server
                // re-validates and answers bad-request for raw clients.
                let label = parse_decoder_label(iter.value("--decoder")?)?;
                decoder = Some(label.label().to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(UsageError::new(format!("unknown flag `{flag}` for `query`")));
            }
            name if action.is_none() => action = Some(name.to_string()),
            extra => {
                return Err(UsageError::new(format!("unexpected argument `{extra}` for `query`")));
            }
        }
    }
    let addr = addr.ok_or_else(|| UsageError::new("query requires --addr HOST:PORT"))?;
    let action = action.ok_or_else(|| UsageError::new("query requires an action"))?;
    // Strict parsing, like every other subcommand: a flag the chosen action
    // cannot consume is a usage error, not silently ignored.
    let takes_key = matches!(action.as_str(), "stat" | "verify" | "eval" | "batch-eval");
    let takes_eval_flags = matches!(action.as_str(), "eval" | "batch-eval");
    if !takes_key && !keys.is_empty() {
        return Err(UsageError::new(format!("query {action} does not take --key")));
    }
    if !takes_eval_flags {
        if !policies.is_empty() {
            return Err(UsageError::new(format!("query {action} does not take --policy")));
        }
        if mode.is_some() {
            return Err(UsageError::new(format!("query {action} does not take --closed-loop")));
        }
        if decode {
            return Err(UsageError::new(format!("query {action} does not take --decode")));
        }
        if decoder.is_some() {
            return Err(UsageError::new(format!("query {action} does not take --decoder")));
        }
    }
    // Selecting a decoder is asking for decoded metrics (mirrors `replay`).
    if decoder.is_some() {
        decode = true;
    }
    let eval_spec = |key: &str, policy: &str| EvalSpec {
        key: key.to_string(),
        policy: policy.to_string(),
        mode: mode.clone(),
        decode: decode.then_some(true),
        decoder: decoder.clone(),
    };
    let one_key = || -> Result<&String, UsageError> {
        match keys.as_slice() {
            [key] => Ok(key),
            [] => Err(UsageError::new(format!("query {action} requires --key KEY"))),
            _ => Err(UsageError::new(format!("query {action} takes exactly one --key"))),
        }
    };
    let request = match action.as_str() {
        "ping" => RequestKind::Ping,
        "version" => RequestKind::Version,
        "stats" => RequestKind::Stats,
        "cells" => RequestKind::ListCells,
        "shutdown" => RequestKind::Shutdown,
        "stat" => RequestKind::StatCell { key: one_key()?.clone() },
        "verify" => RequestKind::VerifyCell { key: one_key()?.clone() },
        "eval" => match policies.as_slice() {
            [policy] => RequestKind::Eval(eval_spec(one_key()?, policy)),
            _ => return Err(UsageError::new("query eval requires exactly one --policy LABEL")),
        },
        "batch-eval" => {
            if policies.is_empty() {
                return Err(UsageError::new("query batch-eval requires --policy L1[,L2...]"));
            }
            // Keys (all cells when no --key) are resolved after connecting,
            // over the same connection the batch request goes out on.
            RequestKind::BatchEval { evals: Vec::new(), per_item: Some(true) }
        }
        other => {
            return Err(UsageError::new(format!("unknown query action `{other}`")));
        }
    };
    let client_config = ClientConfig {
        connect_timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
        io_timeout: (timeout_ms > 0).then(|| std::time::Duration::from_millis(timeout_ms)),
    };
    let mut client = match Client::connect_with(addr.as_str(), client_config) {
        Ok(client) => client,
        Err(message) => {
            eprintln!("repro query: {message}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let request = match request {
        RequestKind::BatchEval { .. } => {
            // No --key = every corpus cell, in manifest order.
            let keys = if keys.is_empty() {
                match fetch_all_keys(&mut client) {
                    Ok(keys) => keys,
                    Err(message) => {
                        eprintln!("repro query: {message}");
                        return Ok(ExitCode::FAILURE);
                    }
                }
            } else {
                keys.clone()
            };
            let evals: Vec<EvalSpec> = keys
                .iter()
                .flat_map(|key| policies.iter().map(move |policy| eval_spec(key, policy)))
                .collect();
            RequestKind::BatchEval { evals, per_item: Some(true) }
        }
        other => other,
    };
    let out_line = request_line(&Request { id: None, request });
    // `--retries N`: an `overloaded` shed is the server's explicit "retry
    // later" (nothing was evaluated), so it is the one error worth re-sending
    // after a short growing backoff. Every request is a read-only query, so a
    // re-send can never double-apply anything. Anything else — transport
    // failures included — fails fast with the server's (or OS's) message.
    let mut attempt = 0u32;
    let line = loop {
        match client.send_raw(&out_line) {
            Ok(line) => {
                let shed = matches!(
                    parse_response(&line),
                    Ok(Response {
                        response: ResponseKind::Error(ref error),
                        ..
                    }) if error.code == ErrorCode::Overloaded
                );
                if !(shed && attempt < retries) {
                    break line;
                }
            }
            Err(message) => {
                eprintln!("repro query: {message}");
                return Ok(ExitCode::FAILURE);
            }
        }
        attempt += 1;
        std::thread::sleep(std::time::Duration::from_millis(50 << (attempt - 1).min(4)));
    };
    // stdout carries the server's response bytes verbatim (machine-readable,
    // byte-comparable across runs); status classification goes by the parsed
    // payload.
    emit(&line);
    match parse_response(&line) {
        Ok(response) => match response.response {
            ResponseKind::Error(error) => {
                eprintln!("repro query: server error {error}");
                Ok(ExitCode::FAILURE)
            }
            // Per-item batches succeed or fail pairing by pairing; the exit
            // code reflects the whole batch so scripts need not parse JSON.
            ResponseKind::BatchItems(items) => {
                let failed = items.iter().filter(|item| item.as_result().is_err()).count();
                if failed > 0 {
                    eprintln!("repro query: {failed} of {} batch item(s) failed", items.len());
                    return Ok(ExitCode::FAILURE);
                }
                Ok(ExitCode::SUCCESS)
            }
            _ => Ok(ExitCode::SUCCESS),
        },
        Err(error) => {
            eprintln!("repro query: unparsable response: {error}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Asks the daemon for its cell list over the already-open connection (used
/// by `batch-eval` with no `--key`).
fn fetch_all_keys(client: &mut Client) -> Result<Vec<String>, String> {
    match client.request(RequestKind::ListCells) {
        Ok(ResponseKind::Cells(cells)) => Ok(cells.into_iter().map(|cell| cell.key).collect()),
        Ok(other) => Err(format!("batch-eval: unexpected list-cells answer {other:?}")),
        Err(message) => Err(format!("batch-eval: {message}")),
    }
}

// ---------------------------------------------------------------------------------
// repro version
// ---------------------------------------------------------------------------------

fn cmd_version(args: &[String]) -> Result<ExitCode, UsageError> {
    if let Some(extra) = args.first() {
        return Err(UsageError::new(format!("unexpected argument `{extra}` for `version`")));
    }
    println!("repro {} ({})", env!("CARGO_PKG_VERSION"), git_describe());
    println!("sweep report schema:    {SWEEP_SCHEMA_VERSION}");
    println!("adaptive checkpoint:    {ADAPTIVE_SCHEMA_VERSION}");
    println!("replay report schema:   {REPLAY_SCHEMA_VERSION}");
    println!("trace (.qtr) schema:    {}", qec_trace::TRACE_SCHEMA_VERSION);
    println!("corpus manifest schema: {}", qec_trace::MANIFEST_SCHEMA_VERSION);
    println!("serve protocol:         {PROTOCOL_VERSION}");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro list
// ---------------------------------------------------------------------------------

fn cmd_list(args: &[String]) -> Result<ExitCode, UsageError> {
    if let Some(extra) = args.first() {
        return Err(UsageError::new(format!("unexpected argument `{extra}` for `list`")));
    }
    println!("experiments: {}", EXPERIMENTS.join(", "));
    println!("policies:    {}", PolicyKind::ALL.map(PolicyKind::label).join(", "));
    println!("codes:       {}", CodeFamily::ALL.map(CodeFamily::label).join(", "));
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------------
// repro snapshot
// ---------------------------------------------------------------------------------

/// Writes `lines` to `out` and, when a baseline is given, gates them against
/// it. Returns `false` when the gate failed.
fn snapshot_gate(
    lines: &[qec_experiments::report::BenchLine],
    out: &PathBuf,
    check: Option<&PathBuf>,
    tolerance: f64,
) -> Result<bool, UsageError> {
    let text = bench_lines_to_string(lines);
    // The artifact lands on disk before the (interruptible) console echo.
    if let Some(parent) = out.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent).expect("create output directory");
    }
    fs::write(out, &text).expect("write snapshot file");
    emit(text.trim_end());
    emit(&format!("(saved {})", out.display()));
    let Some(baseline_path) = check else {
        return Ok(true);
    };
    let baseline_text = fs::read_to_string(baseline_path)
        .map_err(|e| UsageError::new(format!("--check {}: {e}", baseline_path.display())))?;
    let baseline = parse_bench_lines(&baseline_text)
        .map_err(|e| UsageError::new(format!("--check {}: {e}", baseline_path.display())))?;
    let regressions = compare_bench_lines(lines, &baseline, tolerance);
    if regressions.is_empty() {
        emit(&format!(
            "perf gate OK: no benchmark regressed beyond +{:.0}% of {}",
            tolerance * 100.0,
            baseline_path.display()
        ));
        return Ok(true);
    }
    eprintln!(
        "perf gate FAILED: {} benchmark(s) regressed beyond +{:.0}%:",
        regressions.len(),
        tolerance * 100.0
    );
    for regression in &regressions {
        eprintln!(
            "  {}: {} ns -> {} ns ({:.2}x)",
            regression.benchmark, regression.baseline_ns, regression.current_ns, regression.ratio
        );
    }
    Ok(false)
}

fn cmd_snapshot(args: &[String]) -> Result<ExitCode, UsageError> {
    let mut out = PathBuf::from("BENCH_sweep.json");
    let mut trace_out = PathBuf::from("BENCH_trace.json");
    let mut cluster_out = PathBuf::from("BENCH_cluster.json");
    let mut check: Option<PathBuf> = None;
    let mut check_trace: Option<PathBuf> = None;
    let mut check_cluster: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;
    let mut iter = Args::new(args);
    while let Some(arg) = iter.next() {
        match arg {
            "--out" => out = PathBuf::from(iter.value("--out")?),
            "--trace-out" => trace_out = PathBuf::from(iter.value("--trace-out")?),
            "--cluster-out" => cluster_out = PathBuf::from(iter.value("--cluster-out")?),
            "--check" => check = Some(PathBuf::from(iter.value("--check")?)),
            "--check-trace" => check_trace = Some(PathBuf::from(iter.value("--check-trace")?)),
            "--check-cluster" => {
                check_cluster = Some(PathBuf::from(iter.value("--check-cluster")?));
            }
            "--tolerance" => {
                tolerance = parse_number("--tolerance", iter.value("--tolerance")?)?;
            }
            other => {
                return Err(UsageError::new(format!("unknown argument `{other}` for `snapshot`")));
            }
        }
    }
    let spec = snapshot_spec();
    emit(&format!(
        "running pinned snapshot sweep: {} cells x {} samples ...",
        spec.cell_count(),
        qec_experiments::sweep::SNAPSHOT_SAMPLES
    ));
    let mut sweep_lines = snapshot();
    emit(&format!(
        "running pinned adaptive pause/resume snapshot x {} samples ...",
        qec_experiments::sweep::SNAPSHOT_SAMPLES
    ));
    // The adaptive pause/resume line rides in the sweep baseline file, so the
    // one `--check` gate covers checkpoint + resume overhead too.
    sweep_lines.extend(adaptive_snapshot());
    let sweep_ok = snapshot_gate(&sweep_lines, &out, check.as_ref(), tolerance)?;
    emit(&format!(
        "running pinned trace snapshot (record/encode/decode/replay/resim) x {} samples ...",
        qec_experiments::sweep::SNAPSHOT_SAMPLES
    ));
    let trace_ok = snapshot_gate(&trace_snapshot(), &trace_out, check_trace.as_ref(), tolerance)?;
    emit(&format!(
        "running pinned cluster snapshot (2-replica routed vs monolithic batch-eval) x {} \
         samples ...",
        qec_experiments::sweep::SNAPSHOT_SAMPLES
    ));
    let cluster_ok =
        snapshot_gate(&cluster_snapshot(), &cluster_out, check_cluster.as_ref(), tolerance)?;
    if sweep_ok && trace_ok && cluster_ok {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}

// ---------------------------------------------------------------------------------
// experiment dispatch (repro run)
// ---------------------------------------------------------------------------------

fn policy_table(results: &[qec_experiments::PolicyExperimentResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fmt_float(r.metrics.false_negatives),
                fmt_float(r.metrics.false_positives),
                fmt_float(r.metrics.data_lrcs),
                fmt_float(r.metrics.lrcs_per_round),
                fmt_float(r.metrics.average_dlp),
                fmt_float(r.metrics.final_dlp),
                r.metrics.logical_error_rate.map_or("-".to_string(), fmt_float),
            ]
        })
        .collect();
    text_table(
        &["policy", "FN", "FP", "data LRCs", "LRC/round", "avg DLP", "final DLP", "LER"],
        &rows,
    )
}

fn run_one(name: &str, scale: &Scale) -> Option<String> {
    match name {
        "fig1" => {
            let results = runners::fig1_headline(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "fig3" => {
            let result = runners::fig3_device_characterization(scale);
            println!("leaked-CNOT bit-flip probability: {}", fmt_float(result.leaked_cnot_bitflip));
            println!(
                "leakage population after 40 CNOTs: with injection {}, without {}",
                fmt_float(*result.accumulation_with_injection.last().unwrap_or(&0.0)),
                fmt_float(*result.accumulation_without_injection.last().unwrap_or(&0.0)),
            );
            Some(to_json(&result))
        }
        "fig4b" => {
            let rows = runners::fig4b_open_loop_ler(scale);
            print_ler(&rows);
            Some(to_json(&rows))
        }
        "fig5" => {
            let rows = runners::fig5_surface_pattern_usage(scale);
            print_patterns(&rows);
            Some(to_json(&rows))
        }
        "fig8" => {
            let (counts, usage) = runners::fig8_color_code(scale);
            let rows: Vec<Vec<String>> = counts
                .iter()
                .map(|c| {
                    vec![
                        c.policy.clone(),
                        c.width.to_string(),
                        format!("{}/{}", c.flagged, c.space),
                    ]
                })
                .collect();
            println!("{}", text_table(&["policy", "width", "flagged"], &rows));
            print_patterns(&usage);
            Some(to_json(&(counts, usage)))
        }
        "fig9" => {
            let results = runners::fig9_speculation_accuracy(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "fig10" => {
            let rows = runners::fig10_surface_dlp(scale);
            print_dlp(&rows);
            Some(to_json(&rows))
        }
        "fig11" => {
            let rows = runners::fig11_color_dlp(scale);
            print_dlp(&rows);
            Some(to_json(&rows))
        }
        "fig12" => {
            let rows = runners::fig12_ler_vs_distance(scale);
            print_ler(&rows);
            for policy in ["eraser+m", "gladiator+m"] {
                let lambda = runners::suppression_factor(&rows, policy);
                println!("suppression factor {policy}: {lambda:?}");
            }
            Some(to_json(&rows))
        }
        "fig13" => {
            let rows = runners::fig13_error_rate_sensitivity(scale);
            print_ler(&rows);
            Some(to_json(&rows))
        }
        "fig14" => {
            let rows = runners::fig14_distance_scaling(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.distance.to_string(),
                        r.policy.clone(),
                        fmt_float(r.average_dlp),
                        fmt_float(r.data_lrcs),
                    ]
                })
                .collect();
            println!("{}", text_table(&["d", "policy", "avg DLP", "data LRCs"], &table));
            Some(to_json(&rows))
        }
        "table2" => {
            let results = runners::table2_efficacy(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "table3" => {
            let reports = runners::table3_lut_usage();
            let rows: Vec<Vec<String>> = reports
                .iter()
                .map(|r| {
                    vec![
                        r.distance.to_string(),
                        r.gladiator.to_string(),
                        r.eraser.to_string(),
                        format!("{:.1}x", r.reduction_factor()),
                    ]
                })
                .collect();
            println!("{}", text_table(&["d", "GLADIATOR LUTs", "ERASER LUTs", "reduction"], &rows));
            Some(to_json(&reports))
        }
        "table4" => {
            let rows = runners::table4_equilibrium(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.policy.clone(),
                        fmt_float(r.leakage_ratio),
                        fmt_float(r.p),
                        fmt_float(r.leakage_equilibrium),
                        fmt_float(r.inaccuracy_per_round),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["policy", "lr", "p", "equilibrium DLP", "inaccuracy/round"], &table)
            );
            Some(to_json(&rows))
        }
        "table5" => {
            let rows = runners::table5_code_families(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.code.clone(),
                        format!("{:.2}x", r.lrc_reduction),
                        format!("{:.2}x", r.dlp_reduction),
                        format!("{:.2}x", r.cycle_time_reduction),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["code", "LRC red.", "DLP red.", "cycle-time red."], &table)
            );
            Some(to_json(&rows))
        }
        "table6" => {
            let rows = runners::table6_mobility(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.1}%", r.mobility_percent),
                        r.true_regime.clone(),
                        format!("{:.0}%", r.accuracy * 100.0),
                        fmt_float(r.estimated_conditional),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["mobility", "true regime", "accuracy", "estimate"], &table)
            );
            Some(to_json(&rows))
        }
        _ => None,
    }
}

fn print_ler(rows: &[runners::LerRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.distance.to_string(),
                fmt_float(r.p),
                fmt_float(r.logical_error_rate),
                fmt_float(r.lrcs_per_round),
            ]
        })
        .collect();
    println!("{}", text_table(&["policy", "d", "p", "LER", "LRC/round"], &table));
}

fn print_dlp(rows: &[runners::DlpSeriesRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let final_dlp = r.dlp_series.last().copied().unwrap_or(0.0);
            vec![
                r.code.clone(),
                r.policy.clone(),
                fmt_float(r.leakage_ratio),
                fmt_float(final_dlp),
                fmt_float(r.lrcs_per_round),
            ]
        })
        .collect();
    println!("{}", text_table(&["code", "policy", "lr", "final DLP", "LRC/round"], &table));
}

fn print_patterns(rows: &[runners::PatternUsageRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.lrcs_with_leak + r.lrcs_without_leak > 0)
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:0width$b}", r.pattern, width = r.width),
                r.lrcs_with_leak.to_string(),
                r.lrcs_without_leak.to_string(),
            ]
        })
        .collect();
    println!("{}", text_table(&["policy", "pattern", "LRCs (leaked)", "LRCs (healthy)"], &table));
}
