//! `qec-cluster` — sharded corpus serving over replica `qec-serve` daemons.
//!
//! PR 7 made one daemon production-shaped (bounded workers, backpressure, hot
//! reload); a corpus that outgrows one process's memory or one machine's
//! cores is the next wall. This crate splits the *corpus*, not the protocol:
//!
//! * [`shard`] — `shard_corpus` partitions a recorded corpus by the existing
//!   policy-free cell hash into N per-replica sub-corpora — each a complete
//!   `shards/ + manifest.json` tree an **unmodified** daemon can serve — plus
//!   a schema-versioned `cluster.json` shard map
//!   ([`qec_trace::cluster::ClusterMap`]: cell→replica assignments, replica
//!   addresses, provenance).
//! * [`router`] — a daemon speaking the same frozen NDJSON protocol
//!   (`docs/SERVE_PROTOCOL.md`) in front of the replicas: solo cell requests
//!   pass through **raw** to their owner (routed bytes are daemon bytes),
//!   split batches fan out concurrently and reassemble in original order,
//!   `list-cells` merges back into source-manifest order, `stats` aggregates
//!   and adds the additive router counters. Replica failure is bounded and
//!   typed (`unavailable`), never a hang, never a torn batch.
//!
//! Byte-identity is the contract end to end: a routed response row is the
//! monolithic daemon's row is the `repro replay` row — the e2e tests in
//! `tests/cluster.rs` and the CI `cluster-smoke` job `cmp` exactly that.
//! See `docs/CLUSTER.md` for the shard-map schema and routing semantics.
//!
//! The `repro` binary (moved here from `qec-serve` so the CLI can host the
//! `corpus shard` / `route` subcommands without a dependency cycle) remains
//! the workspace's single command-line entry point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod router;
pub mod shard;
pub mod snapshot;

pub use router::{Router, RouterConfig};
pub use shard::{shard_corpus, ShardOptions};
pub use snapshot::cluster_snapshot;
