//! The router daemon: one `qec-serve`-protocol endpoint over N replica
//! daemons.
//!
//! The router speaks the **same frozen NDJSON protocol** as the daemon
//! (`docs/SERVE_PROTOCOL.md`) — a client cannot tell the difference except by
//! the `version` response's server string and the additive router counters in
//! `stats`. Internally it resolves every cell-addressed request to its owning
//! replica by the shard-map assignment rule (`cell_hash(key) % replicas` —
//! the same pure function [`shard_corpus`](crate::shard_corpus) partitioned
//! by, so routing needs no per-key table lookup), and keeps one pooled,
//! deadline-bounded [`Client`] connection per replica.
//!
//! Byte-identity is the design invariant, inherited from the daemon's own
//! "served row ≡ replay row" contract:
//!
//! * **solo requests** (`eval`, `stat-cell`, `verify-cell`, and whole
//!   `batch-eval`s owned by one replica) are passed through **raw**: the
//!   router forwards the canonical request line carrying the client's own
//!   correlation id and returns the replica's response line verbatim — the
//!   routed bytes ARE the daemon's bytes;
//! * **split batches** fan per-owner sub-batches out concurrently on the
//!   vendored-rayon pool and reassemble `batch-items` entries in original
//!   request order, rewriting each per-item error's `evals[j]:` index prefix
//!   back to the original index. Entries round-trip through the vendored
//!   serde stack, whose f64 formatting is shortest-round-trip and whose
//!   objects preserve field order, so a reassembled row is byte-identical to
//!   the monolithic daemon's row for the same pairing;
//! * `list-cells` merges per-replica listings back into **source-manifest
//!   order** (the shard map records every assignment in that order), which
//!   is byte-identical to the unsharded daemon's listing;
//! * `stats` aggregates per-replica counters (sums, and maxes for the
//!   high-water marks) and adds the router's own additive counters.
//!
//! Replica failure is never a hang and never a torn batch: every replica call
//! runs under connect/read/write deadlines with bounded reconnect-retry, and
//! a replica that stays unreachable yields typed `unavailable` errors — per
//! item for split batches (sibling replicas' items are unaffected), as the
//! whole response for solo requests.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use qec_serve::client::{Client, ClientConfig};
use qec_serve::protocol::{
    parse_request, parse_response, request_line, response_line, BatchItem, ErrorCode, EvalSpec,
    Request, RequestKind, Response, ResponseKind, ServerStats, VersionInfo, WireError,
    PROTOCOL_VERSION,
};
use qec_trace::cluster::ClusterMap;
use qec_trace::{Corpus, CorpusEntry};

/// Router construction options.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind, `host:port`. Port `0` picks an ephemeral port — read
    /// it back from [`Router::local_addr`].
    pub addr: String,
    /// Hard connection limit, as the daemon's: a connection beyond it gets
    /// one typed `overloaded` error line and is closed.
    pub max_connections: usize,
    /// Per-call deadline for every replica connect/read/write (`None` blocks
    /// forever — not recommended; a hung replica would hang its requests).
    pub replica_timeout: Option<Duration>,
    /// Reconnect-retry attempts per replica call beyond the first (bounded;
    /// an exhausted budget yields a typed `unavailable` error).
    pub replica_retries: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            replica_timeout: Some(Duration::from_millis(5000)),
            replica_retries: 1,
        }
    }
}

/// One replica's routing endpoint: its address, one pooled connection, and
/// its health. Calls on one replica serialize on the slot lock (the protocol
/// is strictly request→response per connection); cross-replica fan-out is
/// where the concurrency lives.
struct ReplicaSlot {
    index: usize,
    addr: String,
    client: Mutex<Option<Client>>,
    /// Whether the last call succeeded (the `replicas_up` gauge).
    up: AtomicBool,
    /// Calls that exhausted their retry budget (summed into
    /// `replica_errors`).
    errors: AtomicU64,
    timeout: Option<Duration>,
    retries: u32,
}

impl ReplicaSlot {
    /// Sends one raw line to the replica and returns its raw response line,
    /// reusing the pooled connection when possible and reconnecting (with
    /// bounded backoff-retry) when the transport fails. Retrying a protocol
    /// request is safe: every request is a read-only query against the
    /// replica's corpus.
    fn call_raw(&self, line: &str) -> Result<String, String> {
        let mut guard = self.client.lock().unwrap_or_else(PoisonError::into_inner);
        let config = ClientConfig { connect_timeout: self.timeout, io_timeout: self.timeout };
        let mut last_err = String::new();
        for attempt in 0..=self.retries {
            if attempt > 0 {
                // Bounded exponential backoff; a refused connect returns
                // instantly, so this is the whole cost of a down replica.
                let backoff = Duration::from_millis(50 << (attempt - 1).min(4));
                std::thread::sleep(backoff);
            }
            let mut client = match guard.take() {
                Some(client) => client,
                None => match Client::connect_with(&self.addr, config) {
                    Ok(client) => client,
                    Err(message) => {
                        last_err = message;
                        continue;
                    }
                },
            };
            match client.send_raw(line) {
                Ok(response) => {
                    *guard = Some(client);
                    self.up.store(true, Ordering::Relaxed);
                    return Ok(response);
                }
                // The connection is unusable after any transport failure
                // (a late line would desynchronize pairing): drop it and
                // reconnect on the next attempt.
                Err(message) => last_err = message,
            }
        }
        self.up.store(false, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
        Err(format!("replica {} ({}): {last_err}", self.index, self.addr))
    }

    /// Sends a typed request and parses the typed response (the non-raw path
    /// behind `stats` aggregation and `list-cells` merging).
    fn call(&self, kind: RequestKind) -> Result<ResponseKind, String> {
        let line = self.call_raw(&request_line(&Request { id: None, request: kind }))?;
        let response = parse_response(&line)
            .map_err(|e| format!("replica {} ({}): {e}", self.index, self.addr))?;
        if response.v != PROTOCOL_VERSION {
            return Err(format!(
                "replica {} ({}) speaks protocol v{}, this router v{PROTOCOL_VERSION}",
                self.index, self.addr, response.v
            ));
        }
        Ok(response.response)
    }
}

/// Admitted-but-not-yet-served connections (same bounded hand-off as the
/// daemon's).
struct ConnQueue {
    inner: Mutex<ConnQueueState>,
    ready: Condvar,
}

struct ConnQueueState {
    pending: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            inner: Mutex::new(ConnQueueState { pending: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return;
        }
        inner.pending.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = inner.pending.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        inner.pending.clear();
        self.ready.notify_all();
    }
}

/// Shared router state.
struct RouterState {
    map: ClusterMap,
    replicas: Vec<Arc<ReplicaSlot>>,
    pool: rayon::ThreadPool,
    addr: SocketAddr,
    max_connections: usize,
    conn_queue: ConnQueue,
    requests: AtomicU64,
    routed_requests: AtomicU64,
    fanout_hwm: AtomicU64,
    active_connections: AtomicU64,
    shed_connections: AtomicU64,
    shutdown: AtomicBool,
    connections: Mutex<Vec<(u64, TcpStream)>>,
}

/// A bound, not-yet-running router. [`Router::run`] blocks until a `shutdown`
/// request arrives. Shutting the router down does **not** shut its replicas
/// down — they are independent daemons; stop them with their own `shutdown`.
pub struct Router {
    listener: TcpListener,
    state: RouterState,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("addr", &self.state.addr)
            .field("replicas", &self.state.replicas.len())
            .field("cells", &self.state.map.cells())
            .finish()
    }
}

impl Router {
    /// Loads and validates the shard map at `cluster_path`, applies
    /// `addr_overrides` (`(replica index, host:port)` pairs, overriding the
    /// addresses recorded in the map) and binds the listen socket. Replicas
    /// are **not** probed at bind: a replica may come up later or die mid-run;
    /// health is tracked per call.
    ///
    /// # Errors
    /// Returns a message when the map is missing/invalid, an override names a
    /// replica the map does not have, any replica is left without an address,
    /// or the address cannot be bound.
    pub fn bind(
        cluster_path: &Path,
        addr_overrides: &[(usize, String)],
        config: &RouterConfig,
    ) -> Result<Router, String> {
        let mut map = ClusterMap::load(cluster_path).map_err(|e| e.to_string())?;
        for (index, addr) in addr_overrides {
            let n = map.replicas.len();
            let replica = map
                .replicas
                .get_mut(*index)
                .ok_or_else(|| format!("--replica-addr {index}: no such replica (0..{n})"))?;
            replica.addr.clone_from(addr);
        }
        if let Some(missing) = map.replicas.iter().find(|replica| replica.addr.is_empty()) {
            return Err(format!(
                "replica {} has no address — record one in {} or pass --replica-addr {}=HOST:PORT",
                missing.index,
                cluster_path.display(),
                missing.index
            ));
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let replicas: Vec<Arc<ReplicaSlot>> = map
            .replicas
            .iter()
            .map(|replica| {
                Arc::new(ReplicaSlot {
                    index: replica.index,
                    addr: replica.addr.clone(),
                    client: Mutex::new(None),
                    up: AtomicBool::new(true),
                    errors: AtomicU64::new(0),
                    timeout: config.replica_timeout,
                    retries: config.replica_retries,
                })
            })
            .collect();
        // One pool worker per replica: a request can fan out to every replica
        // at once, and per-replica calls serialize on the slot anyway.
        let pool = rayon::ThreadPool::new(replicas.len().max(1));
        Ok(Router {
            listener,
            state: RouterState {
                map,
                replicas,
                pool,
                addr,
                max_connections: config.max_connections.max(1),
                conn_queue: ConnQueue::new(),
                requests: AtomicU64::new(0),
                routed_requests: AtomicU64::new(0),
                fanout_hwm: AtomicU64::new(0),
                active_connections: AtomicU64::new(0),
                shed_connections: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                connections: Mutex::new(Vec::new()),
            },
        })
    }

    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Replicas in the shard map.
    #[must_use]
    pub fn replica_count(&self) -> usize {
        self.state.replicas.len()
    }

    /// Total cells across the shard map.
    #[must_use]
    pub fn cluster_cells(&self) -> usize {
        self.state.map.cells()
    }

    /// Accepts and routes connections until a `shutdown` request is handled
    /// (the daemon's bounded accept/worker model, minus the evaluation queue —
    /// the router does no evaluation of its own).
    pub fn run(self) {
        let Router { listener, state } = self;
        let state = &state;
        let next_id = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..state.max_connections {
                scope.spawn(|| connection_worker(state, &next_id));
            }
            for stream in listener.incoming() {
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = stream.set_nodelay(true);
                let admitted = state.active_connections.fetch_add(1, Ordering::AcqRel);
                if admitted >= state.max_connections as u64 {
                    state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    state.shed_connections.fetch_add(1, Ordering::Relaxed);
                    shed_connection(state, stream);
                    continue;
                }
                state.conn_queue.push(stream);
            }
            state.conn_queue.close();
            for (_, conn) in state.connections.lock().unwrap_or_else(PoisonError::into_inner).iter()
            {
                let _ = conn.shutdown(std::net::Shutdown::Read);
            }
        });
    }
}

fn connection_worker(state: &RouterState, next_id: &AtomicU64) {
    while let Some(stream) = state.conn_queue.pop() {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.connections.lock().unwrap_or_else(PoisonError::into_inner).push((id, clone));
        }
        handle_connection(state, stream);
        state
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(conn_id, _)| *conn_id != id);
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Same refusal bytes as the daemon's connection shed.
fn shed_connection(state: &RouterState, mut stream: TcpStream) {
    let error = WireError::new(
        ErrorCode::Overloaded,
        format!(
            "connection limit reached ({} active); connection refused — retry later",
            state.max_connections
        ),
    );
    let response = Response { id: None, v: PROTOCOL_VERSION, response: ResponseKind::Error(error) };
    let _ = writeln!(stream, "{}", response_line(&response));
    let _ = stream.flush();
}

/// Serves one client connection: reads LF-terminated request lines, answers
/// each in order. Raw pass-through answers are written verbatim; everything
/// else is serialized by the router from typed values.
fn handle_connection(state: &RouterState, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        // Panic containment, mirroring the daemon: a panic while routing one
        // request answers with a typed `internal` error and closes this
        // connection only — the worker and every other connection keep
        // serving (poisoned guards recover via `PoisonError::into_inner`).
        let (answer, panicked) = match parse_request(&line) {
            Ok(request) => {
                let id = request.id;
                let kind = request.request;
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    route_request(state, id, kind)
                })) {
                    Ok(answer) => (answer, false),
                    Err(payload) => {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(ToString::to_string)
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        let error = WireError::new(
                            ErrorCode::Internal,
                            format!("request panicked router-side: {message}; connection closed"),
                        );
                        (local_line(id, ResponseKind::Error(error)), true)
                    }
                }
            }
            Err(error) => (local_line(None, ResponseKind::Error(error)), false),
        };
        let stop = answer.stop;
        if writeln!(writer, "{}", answer.line).is_err() {
            break;
        }
        let _ = writer.flush();
        if panicked {
            break;
        }
        if stop {
            state.shutdown.store(true, Ordering::Release);
            let mut poke = state.addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke {
                    std::net::SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect(poke);
            break;
        }
    }
}

/// One answered request: the exact wire line to write, and whether it was a
/// shutdown (which stops the router after the line is delivered).
struct Answer {
    line: String,
    stop: bool,
}

/// A line the router serializes itself (local answers and reassembled
/// fan-outs).
fn local_line(id: Option<u64>, response: ResponseKind) -> Answer {
    let stop = matches!(response, ResponseKind::ShuttingDown);
    Answer { line: response_line(&Response { id, v: PROTOCOL_VERSION, response }), stop }
}

/// Routes one parsed request. Never hangs on a dead replica: every replica
/// call is deadline-bounded, and exhaustion yields a typed `unavailable`.
fn route_request(state: &RouterState, id: Option<u64>, request: RequestKind) -> Answer {
    match request {
        // Local kinds: liveness and identity belong to the router itself.
        RequestKind::Ping => local_line(id, ResponseKind::Pong),
        RequestKind::Shutdown => local_line(id, ResponseKind::ShuttingDown),
        RequestKind::Version => local_line(
            id,
            ResponseKind::Version(VersionInfo {
                server: format!("qec-cluster {}", env!("CARGO_PKG_VERSION")),
                git_describe: qec_experiments::sweep::git_describe(),
                protocol: PROTOCOL_VERSION,
                trace_schema: qec_trace::TRACE_SCHEMA_VERSION,
                manifest_schema: qec_trace::MANIFEST_SCHEMA_VERSION,
                replay_schema: qec_experiments::replay::REPLAY_SCHEMA_VERSION,
            }),
        ),
        RequestKind::Stats => local_line(id, aggregate_stats(state)),
        RequestKind::ListCells => local_line(id, merge_list_cells(state)),
        // Cell-addressed solo requests: raw pass-through to the owner.
        RequestKind::StatCell { ref key } | RequestKind::VerifyCell { ref key } => {
            let key = key.clone();
            route_solo(state, id, request, &key)
        }
        RequestKind::Eval(ref spec) => {
            let key = spec.key.clone();
            route_solo(state, id, request, &key)
        }
        RequestKind::BatchEval { evals, per_item } => route_batch(state, id, evals, per_item),
    }
}

/// The owning replica of a cell key: the shard-map assignment rule applied
/// directly. Keys outside the corpus route to their *would-be* owner, which
/// answers `unknown-cell` with exactly the monolithic daemon's bytes.
fn owner_of<'a>(state: &'a RouterState, key: &str) -> &'a Arc<ReplicaSlot> {
    let index = ClusterMap::assign(Corpus::cell_hash(key), state.replicas.len());
    &state.replicas[index]
}

fn note_fanout(state: &RouterState, replicas_touched: u64) {
    state.routed_requests.fetch_add(1, Ordering::Relaxed);
    state.fanout_hwm.fetch_max(replicas_touched, Ordering::Relaxed);
}

/// The typed refusal for an unreachable replica. `context` names the request
/// so batch items can carry their index prefix.
fn unavailable(message: String) -> WireError {
    WireError::new(ErrorCode::Unavailable, format!("{message} — unreachable after bounded retry"))
}

/// Routes a single-cell request raw: the replica sees the client's own
/// correlation id and its response line is returned verbatim, so routed
/// bytes are daemon bytes by construction.
fn route_solo(state: &RouterState, id: Option<u64>, request: RequestKind, key: &str) -> Answer {
    note_fanout(state, 1);
    let owner = owner_of(state, key);
    let line = request_line(&Request { id, request });
    match owner.call_raw(&line) {
        Ok(raw) => Answer { line: raw, stop: false },
        Err(message) => local_line(id, ResponseKind::Error(unavailable(message))),
    }
}

/// Aggregated `stats`: sums (and maxes, for the high-water marks) across the
/// replicas that answered, plus the router's own counters. A replica that
/// cannot be reached is simply absent from the aggregate — visible as
/// `replicas_up < N` and a bumped `replica_errors`, never an error response.
fn aggregate_stats(state: &RouterState) -> ResponseKind {
    note_fanout(state, state.replicas.len() as u64);
    let jobs: Vec<_> = state
        .replicas
        .iter()
        .map(|slot| {
            let slot = Arc::clone(slot);
            move || slot.call(RequestKind::Stats)
        })
        .collect();
    let mut total = ServerStats {
        requests: 0,
        evals: 0,
        batch_evals: 0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cached_cells: 0,
        cache_capacity: 0,
        corpus_cells: 0,
        shared_passes: 0,
        suffixes_served: 0,
        peak_checkpoints: 0,
        active_connections: 0,
        max_connections: 0,
        queue_depth_hwm: 0,
        queue_limit: 0,
        shed_requests: 0,
        shed_connections: 0,
        corpus_reloads: 0,
        routed_requests: 0,
        fanout_hwm: 0,
        replica_errors: 0,
        replicas_up: 0,
        adaptive_rounds: 0,
        shots_allocated: 0,
    };
    for outcome in state.pool.execute_ordered(jobs) {
        let Ok(ResponseKind::Stats(stats)) = outcome else { continue };
        total.requests += stats.requests;
        total.evals += stats.evals;
        total.batch_evals += stats.batch_evals;
        total.cache_hits += stats.cache_hits;
        total.cache_misses += stats.cache_misses;
        total.cache_evictions += stats.cache_evictions;
        total.cached_cells += stats.cached_cells;
        total.cache_capacity += stats.cache_capacity;
        total.corpus_cells += stats.corpus_cells;
        total.shared_passes += stats.shared_passes;
        total.suffixes_served += stats.suffixes_served;
        total.peak_checkpoints = total.peak_checkpoints.max(stats.peak_checkpoints);
        total.active_connections += stats.active_connections;
        total.max_connections += stats.max_connections;
        total.queue_depth_hwm = total.queue_depth_hwm.max(stats.queue_depth_hwm);
        total.queue_limit += stats.queue_limit;
        total.shed_requests += stats.shed_requests;
        total.shed_connections += stats.shed_connections;
        total.corpus_reloads += stats.corpus_reloads;
        // Each replica's corpus carries its own shard of an adaptively grown
        // sweep; the cluster-wide totals are plain sums.
        total.adaptive_rounds += stats.adaptive_rounds;
        total.shots_allocated += stats.shots_allocated;
    }
    total.routed_requests = state.routed_requests.load(Ordering::Relaxed);
    total.fanout_hwm = state.fanout_hwm.load(Ordering::Relaxed);
    total.replica_errors =
        state.replicas.iter().map(|slot| slot.errors.load(Ordering::Relaxed)).sum();
    total.replicas_up =
        state.replicas.iter().filter(|slot| slot.up.load(Ordering::Relaxed)).count() as u64;
    ResponseKind::Stats(total)
}

/// Merged `list-cells`: every replica's listing, reassembled into
/// source-manifest order via the shard map's assignment list — byte-identical
/// to the unsharded daemon's listing. A complete listing needs every replica,
/// so any unreachable one fails the whole request with a typed `unavailable`.
fn merge_list_cells(state: &RouterState) -> ResponseKind {
    note_fanout(state, state.replicas.len() as u64);
    let jobs: Vec<_> = state
        .replicas
        .iter()
        .map(|slot| {
            let slot = Arc::clone(slot);
            move || slot.call(RequestKind::ListCells)
        })
        .collect();
    let mut by_key: Vec<(String, CorpusEntry)> = Vec::with_capacity(state.map.cells());
    for outcome in state.pool.execute_ordered(jobs) {
        match outcome {
            Ok(ResponseKind::Cells(cells)) => {
                by_key.extend(cells.into_iter().map(|entry| (entry.key.clone(), entry)));
            }
            Ok(ResponseKind::Error(error)) => return ResponseKind::Error(error),
            Ok(other) => {
                return ResponseKind::Error(WireError::new(
                    ErrorCode::Internal,
                    format!("unexpected list-cells answer from a replica: {other:?}"),
                ))
            }
            Err(message) => return ResponseKind::Error(unavailable(message)),
        }
    }
    let mut merged = Vec::with_capacity(state.map.assignments.len());
    for assignment in &state.map.assignments {
        match by_key.iter().position(|(key, _)| key == &assignment.key) {
            Some(at) => merged.push(by_key.swap_remove(at).1),
            None => {
                // The replica's live corpus no longer lists a mapped cell
                // (hot-reloaded behind the shard map): a partial listing would
                // silently misrepresent the cluster, so fail typed instead.
                return ResponseKind::Error(WireError::new(
                    ErrorCode::CorruptCorpus,
                    format!(
                        "cell `{}` is in the shard map but not in replica {}'s corpus — \
                         the shard map is stale; re-shard the corpus",
                        assignment.key, assignment.replica
                    ),
                ));
            }
        }
    }
    // Cells the replicas serve beyond the map are ignored: the router's view
    // of the cluster IS the shard map.
    ResponseKind::Cells(merged)
}

/// Routes `batch-eval`. Single-owner batches (including empty ones, which
/// replica 0 refuses with the daemon's own `bad-request` bytes) pass through
/// raw. Split batches fan out per-owner sub-batches concurrently — always
/// per-item toward the replicas, reassembled into whichever answer shape the
/// client asked for.
fn route_batch(
    state: &RouterState,
    id: Option<u64>,
    evals: Vec<EvalSpec>,
    per_item: Option<bool>,
) -> Answer {
    let owners: Vec<usize> = evals
        .iter()
        .map(|spec| ClusterMap::assign(Corpus::cell_hash(&spec.key), state.replicas.len()))
        .collect();
    let mut distinct: Vec<usize> = Vec::new();
    for &owner in &owners {
        if !distinct.contains(&owner) {
            distinct.push(owner);
        }
    }
    if distinct.len() <= 1 {
        // One owner (or an empty batch): the whole request passes through raw
        // with the client's own id and `per_item` flag — byte-identical to
        // the daemon by construction, including refusal shapes.
        note_fanout(state, 1);
        let owner = &state.replicas[distinct.first().copied().unwrap_or(0)];
        let line =
            request_line(&Request { id, request: RequestKind::BatchEval { evals, per_item } });
        return match owner.call_raw(&line) {
            Ok(raw) => Answer { line: raw, stop: false },
            Err(message) => local_line(id, ResponseKind::Error(unavailable(message))),
        };
    }
    note_fanout(state, distinct.len() as u64);
    // Per-owner sub-batches, original order preserved within each owner.
    distinct.sort_unstable();
    let sub_batches: Vec<(usize, Vec<usize>)> = distinct
        .iter()
        .map(|&owner| {
            let indices: Vec<usize> = (0..evals.len()).filter(|&i| owners[i] == owner).collect();
            (owner, indices)
        })
        .collect();
    let jobs: Vec<_> = sub_batches
        .iter()
        .map(|(owner, indices)| {
            let slot = Arc::clone(&state.replicas[*owner]);
            let sub_evals: Vec<EvalSpec> = indices.iter().map(|&i| evals[i].clone()).collect();
            let expected = indices.len();
            move || -> Result<Vec<BatchItem>, WireError> {
                let line = request_line(&Request {
                    id: None,
                    request: RequestKind::BatchEval { evals: sub_evals, per_item: Some(true) },
                });
                let raw = slot.call_raw(&line).map_err(unavailable)?;
                let response = parse_response(&raw).map_err(|e| {
                    WireError::new(
                        ErrorCode::Internal,
                        format!("replica {}: unparsable response: {e}", slot.index),
                    )
                })?;
                match response.response {
                    ResponseKind::BatchItems(items) if items.len() == expected => Ok(items),
                    // A whole-sub-batch refusal (e.g. an `overloaded` shed):
                    // propagate the typed error to this owner's items.
                    ResponseKind::Error(error) => Err(error),
                    other => Err(WireError::new(
                        ErrorCode::Internal,
                        format!("replica {}: unexpected batch-eval answer: {other:?}", slot.index),
                    )),
                }
            }
        })
        .collect();
    let sub_outcomes = state.pool.execute_ordered(jobs);
    // Reassemble in original request order, rewriting per-item error index
    // prefixes from sub-batch positions to original positions.
    let mut items: Vec<Option<BatchItem>> = (0..evals.len()).map(|_| None).collect();
    let mut whole_errors: Vec<WireError> = Vec::new();
    for ((_, indices), outcome) in sub_batches.iter().zip(sub_outcomes) {
        match outcome {
            Ok(sub_items) => {
                for (sub_index, (item, &orig)) in sub_items.into_iter().zip(indices).enumerate() {
                    let item = match item {
                        BatchItem::Error(mut error) => {
                            error.message = reindex_message(&error.message, sub_index, orig);
                            BatchItem::Error(error)
                        }
                        ok => ok,
                    };
                    items[orig] = Some(item);
                }
            }
            Err(error) => {
                for &orig in indices {
                    let mut item_error = error.clone();
                    item_error.message = format!("evals[{orig}]: {}", item_error.message);
                    items[orig] = Some(BatchItem::Error(item_error));
                }
                whole_errors.push(error);
            }
        }
    }
    let items: Vec<BatchItem> =
        items.into_iter().map(|item| item.expect("every index answered")).collect();
    if per_item == Some(true) {
        return local_line(id, ResponseKind::BatchItems(items));
    }
    // Legacy all-or-nothing reassembly: a whole-sub-batch refusal (shed or
    // unreachable replica) refuses the whole batch, as the daemon's admission
    // would; otherwise the first failing item (in request order) carries its
    // indexed error, matching the daemon's fail-fast/collect semantics.
    if let Some(error) = whole_errors.into_iter().next() {
        return local_line(id, ResponseKind::Error(error));
    }
    let mut results = Vec::with_capacity(items.len());
    for item in items {
        match item.into_result() {
            Ok(result) => results.push(result),
            Err(error) => return local_line(id, ResponseKind::Error(error)),
        }
    }
    local_line(id, ResponseKind::Batch(results))
}

/// Rewrites a per-item error message's `evals[j]: ` prefix (the daemon indexes
/// errors by position in the batch it saw — the sub-batch) to the item's
/// original index, so split-batch errors are byte-identical to the monolithic
/// daemon's. Messages without the prefix (none are produced today) pass
/// through unchanged.
fn reindex_message(message: &str, sub_index: usize, original_index: usize) -> String {
    let prefix = format!("evals[{sub_index}]: ");
    match message.strip_prefix(&prefix) {
        Some(rest) => format!("evals[{original_index}]: {rest}"),
        None => message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The router-side half of the poisoned-lock regression (PR 9 pinned the
    /// daemon's `server.rs` recovery only): a panic that dies holding live
    /// router locks — the connection registry and a replica slot's client
    /// lock, the two mutexes on the routing path — must not stop the router
    /// from admitting connections, routing evals through the poisoned slot,
    /// aggregating stats, or shutting down cleanly.
    #[test]
    fn a_poisoned_router_lock_keeps_the_router_routing() {
        use leakage_speculation::PolicyKind;
        use qec_experiments::replay::record_into_corpus;
        use qec_experiments::scenario::{CodeFamily, Scenario};
        use qec_serve::{EvalSpec, RequestKind, ResponseKind, ServeConfig, Server};
        use qec_trace::cluster::CLUSTER_FILE;
        use qec_trace::Corpus;

        use crate::shard::{shard_corpus, ShardOptions};

        let base = std::env::temp_dir().join(format!("qec-router-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let corpus_dir = base.join("corpus");
        let mut corpus = Corpus::open(&corpus_dir).unwrap();
        let mut keys = Vec::new();
        for p in [1e-3, 2e-3, 3e-3, 4e-3] {
            let scenario = Scenario {
                code: CodeFamily::Surface,
                distance: 3,
                rounds: 4,
                p,
                leakage_ratio: 0.1,
                policy: PolicyKind::EraserM,
                shots: 3,
                seed: 11,
                decode: false,
                decoder: None,
            };
            let entry =
                record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "poison test")
                    .unwrap();
            keys.push(entry.key);
        }
        corpus.save().unwrap();
        let out_dir = base.join("sharded");
        let map = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default()).unwrap();
        let replicas: Vec<(String, std::thread::JoinHandle<()>)> = map
            .replicas
            .iter()
            .map(|replica| {
                let server =
                    Server::bind(&out_dir.join(&replica.dir), &ServeConfig::default()).unwrap();
                let addr = server.local_addr().to_string();
                (addr, std::thread::spawn(move || server.run()))
            })
            .collect();
        let overrides: Vec<(usize, String)> =
            replicas.iter().enumerate().map(|(index, (addr, _))| (index, addr.clone())).collect();
        let router =
            Router::bind(&out_dir.join(CLUSTER_FILE), &overrides, &RouterConfig::default())
                .unwrap();
        let router_addr = router.local_addr().to_string();

        // Poison the live locks exactly as a mid-request panic would: a
        // thread dies while holding both guards.
        {
            let prior = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let _ = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _connections =
                            router.state.connections.lock().unwrap_or_else(PoisonError::into_inner);
                        let _slot = router.state.replicas[0]
                            .client
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        panic!("poison the router locks");
                    })
                    .join()
            });
            std::panic::set_hook(prior);
            assert!(router.state.connections.is_poisoned(), "connection registry must poison");
            assert!(router.state.replicas[0].client.is_poisoned(), "replica slot must poison");
        }

        let handle = std::thread::spawn(move || router.run());
        let mut client = Client::connect(&router_addr).unwrap();
        // A solo eval owned by the replica behind the poisoned client lock:
        // the slot guard recovers and the call goes through.
        let poisoned_owner = keys
            .iter()
            .find(|key| ClusterMap::assign(Corpus::cell_hash(key), 2) == 0)
            .expect("the pinned p-grid provably splits 2 ways")
            .clone();
        let spec = EvalSpec {
            key: poisoned_owner,
            policy: "eraser+m".to_string(),
            mode: None,
            decode: None,
            decoder: None,
        };
        let ResponseKind::Eval(_) = client.request(RequestKind::Eval(spec)).unwrap() else {
            panic!("eval must route through a poisoned replica slot")
        };
        // Aggregated stats fan out to every replica (slot 0's lock recovers
        // again) and count the routed traffic.
        let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
            panic!("stats must aggregate on a router with poisoned locks")
        };
        assert_eq!(stats.replicas_up, 2, "both replicas must stay reachable");
        assert!(stats.routed_requests >= 1, "the eval was routed: {stats:?}");
        // Clean shutdown walks the poisoned connection registry.
        assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
        handle.join().unwrap();
        for (addr, replica_handle) in replicas {
            let mut replica_client = Client::connect(&addr).unwrap();
            assert_eq!(
                replica_client.request(RequestKind::Shutdown).unwrap(),
                ResponseKind::ShuttingDown
            );
            replica_handle.join().unwrap();
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn reindex_rewrites_only_the_matching_prefix() {
        assert_eq!(reindex_message("evals[0]: no such cell", 0, 7), "evals[7]: no such cell");
        assert_eq!(reindex_message("evals[2]: boom", 2, 2), "evals[2]: boom");
        // A mismatched or absent prefix is left alone.
        assert_eq!(reindex_message("evals[1]: boom", 0, 7), "evals[1]: boom");
        assert_eq!(reindex_message("no prefix here", 0, 7), "no prefix here");
    }
}
