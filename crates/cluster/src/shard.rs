//! Cutting a recorded corpus into per-replica sub-corpora.
//!
//! [`shard_corpus`] partitions a corpus by the existing policy-free cell hash
//! (`Corpus::cell_hash(key) % replicas`) into N sub-corpora, each a complete
//! `shards/ + manifest.json` tree an **unmodified** `qec-serve` daemon can
//! serve, plus a `cluster.json` shard map (see [`qec_trace::cluster`]). Trace
//! files are copied byte-for-byte, and each sub-manifest is the verbatim
//! entry subset of the source manifest — so a replica's answers for its cells
//! are the monolithic daemon's answers, by construction.

use std::path::{Path, PathBuf};

use qec_trace::cluster::{ClusterMap, CLUSTER_FILE};
use qec_trace::corpus::MANIFEST_FILE;
use qec_trace::{Corpus, CorpusManifest};

/// Options for [`shard_corpus`].
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Replica daemon addresses recorded in the shard map, one per replica
    /// (`host:port`), or empty to leave them unassigned (the router's
    /// `--replica-addr` flags fill them at startup).
    pub addrs: Vec<String>,
    /// `created_by` provenance recorded in the map (e.g. `repro shard 0.1.0`).
    pub created_by: String,
    /// `git describe` provenance recorded in the map.
    pub git_describe: String,
}

/// Shards the corpus at `corpus_dir` across `replicas` sub-corpora under
/// `out_dir`, writing `out_dir/replica-<i>/{manifest.json,shards/...}` for
/// each replica and `out_dir/cluster.json` describing the partition. Returns
/// the written shard map.
///
/// The partition is by `Corpus::cell_hash(key) % replicas` — a pure function
/// of the key, never of manifest order — and every replica must end up owning
/// at least one cell (a daemon refuses to serve an empty corpus).
///
/// # Errors
/// Returns a message when the source corpus is missing or empty, a replica
/// would own no cells, the output directory already holds a shard map or
/// sub-corpus, or any file copy fails.
pub fn shard_corpus(
    corpus_dir: &Path,
    out_dir: &Path,
    replicas: usize,
    options: &ShardOptions,
) -> Result<ClusterMap, String> {
    let corpus = Corpus::open_existing(corpus_dir).map_err(|e| e.to_string())?;
    if corpus.entries().is_empty() {
        return Err(format!(
            "corpus {} is empty — nothing to shard (record cells first)",
            corpus_dir.display()
        ));
    }
    let cluster_path = out_dir.join(CLUSTER_FILE);
    if cluster_path.exists() {
        return Err(format!(
            "{} already exists — refusing to overwrite an existing shard map \
             (use a fresh --out directory)",
            cluster_path.display()
        ));
    }
    let manifest = CorpusManifest {
        schema_version: qec_trace::MANIFEST_SCHEMA_VERSION,
        entries: corpus.entries().to_vec(),
    };
    let (map, sub_manifests) = ClusterMap::partition(
        &manifest,
        replicas,
        &options.addrs,
        options.created_by.clone(),
        options.git_describe.clone(),
        corpus_dir.display().to_string(),
    )
    .map_err(|e| e.to_string())?;
    for (replica, sub) in map.replicas.iter().zip(&sub_manifests) {
        let replica_dir = out_dir.join(&replica.dir);
        if replica_dir.join(MANIFEST_FILE).exists() {
            return Err(format!(
                "{} already holds a corpus — refusing to overwrite (use a fresh --out directory)",
                replica_dir.display()
            ));
        }
        write_sub_corpus(&corpus, &replica_dir, sub)?;
    }
    map.save(&cluster_path).map_err(|e| e.to_string())?;
    Ok(map)
}

/// Writes one replica's sub-corpus: the subset manifest verbatim plus a
/// byte-for-byte copy of each owned trace file (same shard-relative paths, so
/// the sub-corpus is indistinguishable from one recorded in place).
fn write_sub_corpus(
    source: &Corpus,
    replica_dir: &Path,
    manifest: &CorpusManifest,
) -> Result<(), String> {
    for entry in &manifest.entries {
        let from: PathBuf = source.dir().join(&entry.file);
        let to = replica_dir.join(&entry.file);
        if let Some(parent) = to.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
        }
        std::fs::copy(&from, &to)
            .map_err(|e| format!("copy {} -> {}: {e}", from.display(), to.display()))?;
    }
    let json = serde_json::to_string_pretty(manifest).expect("manifest is always serializable");
    std::fs::write(replica_dir.join(MANIFEST_FILE), json)
        .map_err(|e| format!("{}: {e}", replica_dir.join(MANIFEST_FILE).display()))?;
    Ok(())
}
