//! The pinned cluster benchmark behind `repro snapshot --cluster-out` and the
//! CI perf gate's `BENCH_cluster_baseline.json`.
//!
//! One self-contained scene: a tiny recorded corpus, sharded across two
//! in-process replica daemons, fronted by a router — then a split per-item
//! `batch-eval` (both replicas owning items, so the fan-out/reassembly path
//! is what's timed) round-tripped through the router with hot caches, next to
//! the same batch against a monolithic daemon serving the unsharded corpus.
//! The pair prices the routing tax: `routed / monolithic` is the overhead a
//! deployment pays for sharding once the corpus is resident.

use std::time::Instant;

use leakage_speculation::PolicyKind;
use qec_experiments::replay::record_into_corpus;
use qec_experiments::report::BenchLine;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_experiments::sweep::SNAPSHOT_SAMPLES;
use qec_serve::client::{Client, ClientConfig};
use qec_serve::{request_line, EvalSpec, Request, RequestKind, ResponseKind, ServeConfig, Server};
use qec_trace::cluster::ClusterMap;
use qec_trace::Corpus;

/// The pinned snapshot scenario family: the serve-bench cell at a handful of
/// error rates, recorded until both replicas of a 2-way shard own at least
/// one cell. Changing this invalidates `crates/bench/BENCH_cluster_baseline.json`.
fn snapshot_scenarios() -> Vec<Scenario> {
    [1e-3, 2e-3, 3e-3, 4e-3]
        .iter()
        .map(|&p| Scenario {
            code: CodeFamily::Surface,
            distance: 3,
            rounds: 9,
            p,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 8,
            seed: 11,
            decode: false,
            decoder: None,
        })
        .collect()
}

/// Runs the pinned cluster benchmark [`SNAPSHOT_SAMPLES`] times and reports
/// wall-times as [`BenchLine`]s:
///
/// * `cluster/routed_batch_eval_roundtrip` — a split per-item `batch-eval`
///   (one cell per replica × 2 policies) through the router, hot caches;
/// * `cluster/monolithic_batch_eval_roundtrip` — the identical batch against
///   one daemon serving the unsharded corpus, the routing-tax denominator.
///
/// Panics on any environment failure (it drives temp dirs, sockets and
/// threads it fully owns) — a panic is a broken build, not a regression.
#[must_use]
pub fn cluster_snapshot() -> Vec<BenchLine> {
    let root = std::env::temp_dir().join(format!("qec-cluster-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let corpus_dir = root.join("corpus");
    let mut corpus = Corpus::open(&corpus_dir).expect("open snapshot corpus");
    let mut keys = Vec::new();
    for scenario in snapshot_scenarios() {
        let entry = record_into_corpus(&mut corpus, &scenario, scenario.policy, "cluster snapshot")
            .expect("record snapshot cell");
        keys.push(entry.key.clone());
    }
    corpus.save().expect("save snapshot corpus");

    // Shard 2-ways; the scenario family is pinned so both replicas own cells
    // (asserted here, so a hash change cannot silently un-split the batch).
    let out_dir = root.join("sharded");
    let map = crate::shard_corpus(&corpus_dir, &out_dir, 2, &crate::ShardOptions::default())
        .expect("shard snapshot corpus");
    let owner = |key: &str| ClusterMap::assign(Corpus::cell_hash(key), 2);
    let key_a = keys.iter().find(|key| owner(key) == 0).expect("replica 0 owns a cell");
    let key_b = keys.iter().find(|key| owner(key) == 1).expect("replica 1 owns a cell");

    // Two replica daemons + the monolithic comparison daemon, all in-process.
    let mut daemons = Vec::new();
    let mut overrides = Vec::new();
    for replica in &map.replicas {
        let server = Server::bind(&out_dir.join(&replica.dir), &ServeConfig::default())
            .expect("bind replica daemon");
        overrides.push((replica.index, server.local_addr().to_string()));
        daemons.push((server.local_addr(), std::thread::spawn(move || server.run())));
    }
    let mono = Server::bind(&corpus_dir, &ServeConfig::default()).expect("bind monolithic daemon");
    let mono_addr = mono.local_addr();
    daemons.push((mono_addr, std::thread::spawn(move || mono.run())));

    let router = crate::Router::bind(
        &out_dir.join(qec_trace::cluster::CLUSTER_FILE),
        &overrides,
        &crate::RouterConfig::default(),
    )
    .expect("bind snapshot router");
    let router_addr = router.local_addr();
    let router_thread = std::thread::spawn(move || router.run());

    // The split batch: both replicas own items, two policies per cell.
    let batch = Request {
        id: Some(1),
        request: RequestKind::BatchEval {
            evals: [key_a, key_b]
                .iter()
                .flat_map(|key| {
                    ["gladiator+m", "eraser+m"].iter().map(move |policy| EvalSpec {
                        key: (*key).clone(),
                        policy: (*policy).to_string(),
                        mode: None,
                        decode: None,
                        decoder: None,
                    })
                })
                .collect(),
            per_item: Some(true),
        },
    };
    let batch_line = request_line(&batch);

    let time_roundtrips = |addr: std::net::SocketAddr, benchmark: &str| -> BenchLine {
        let mut client = Client::connect(addr).expect("connect snapshot client");
        // One untimed warmup settles both replica caches (and the monolithic
        // daemon's), so every timed sample is the hot-cache path.
        let _ = client.send_raw(&batch_line).expect("warmup batch");
        let samples: Vec<u64> = (0..SNAPSHOT_SAMPLES)
            .map(|_| {
                let start = Instant::now();
                let _ = client.send_raw(&batch_line).expect("timed batch");
                start.elapsed().as_nanos() as u64
            })
            .collect();
        BenchLine {
            benchmark: benchmark.to_string(),
            samples: SNAPSHOT_SAMPLES,
            mean_ns: samples.iter().sum::<u64>() / SNAPSHOT_SAMPLES as u64,
            min_ns: samples.iter().copied().min().unwrap_or(0),
            max_ns: samples.iter().copied().max().unwrap_or(0),
        }
    };
    let routed = time_roundtrips(router_addr, "cluster/routed_batch_eval_roundtrip");
    let monolithic = time_roundtrips(mono_addr, "cluster/monolithic_batch_eval_roundtrip");

    // Orderly teardown: router first (it holds replica connections), then
    // every daemon.
    let shutdown = |addr: std::net::SocketAddr| {
        let mut client = Client::connect_with(
            addr,
            ClientConfig::with_timeout(std::time::Duration::from_secs(10)),
        )
        .expect("connect for shutdown");
        match client.request(RequestKind::Shutdown).expect("shutdown request") {
            ResponseKind::ShuttingDown => {}
            other => panic!("unexpected shutdown answer: {other:?}"),
        }
    };
    shutdown(router_addr);
    router_thread.join().expect("router thread");
    for (addr, thread) in daemons {
        shutdown(addr);
        thread.join().expect("daemon thread");
    }
    let _ = std::fs::remove_dir_all(&root);
    vec![routed, monolithic]
}
