//! Cluster e2e tests: shard a recorded corpus across two in-process replica
//! daemons, front them with the router, and pin the contract — **routed
//! response bytes are the monolithic daemon's bytes** for every request kind,
//! and a dead replica yields typed `unavailable` errors within the client's
//! deadline, never a hang and never a torn batch.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use leakage_speculation::PolicyKind;
use qec_cluster::{shard_corpus, Router, RouterConfig, ShardOptions};
use qec_experiments::replay::record_into_corpus;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_serve::client::{Client, ClientConfig};
use qec_serve::{
    parse_response, request_line, ErrorCode, EvalSpec, Request, RequestKind, ResponseKind,
    ServeConfig, Server,
};
use qec_trace::cluster::{ClusterMap, CLUSTER_FILE};
use qec_trace::Corpus;

// ---------------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qec-cluster-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records a small corpus whose cells provably split across a 2-way shard
/// (asserted, so a cell-hash change cannot silently collapse the tests into
/// the single-owner fast path).
fn record_split_corpus(dir: &Path) -> Vec<String> {
    let mut corpus = Corpus::open(dir).unwrap();
    let mut keys = Vec::new();
    for p in [1e-3, 2e-3, 3e-3, 4e-3] {
        let scenario = Scenario {
            code: CodeFamily::Surface,
            distance: 3,
            rounds: 4,
            p,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 3,
            seed: 11,
            decode: false,
            decoder: None,
        };
        let entry = record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "cluster test")
            .unwrap();
        keys.push(entry.key);
    }
    corpus.save().unwrap();
    let owners: Vec<usize> =
        keys.iter().map(|key| ClusterMap::assign(Corpus::cell_hash(key), 2)).collect();
    assert!(owners.contains(&0) && owners.contains(&1), "cells must split 2 ways: {owners:?}");
    keys
}

struct Daemon {
    addr: String,
    handle: std::thread::JoinHandle<()>,
}

impl Daemon {
    fn start(dir: &Path) -> Daemon {
        let server = Server::bind(dir, &ServeConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        Daemon { addr, handle: std::thread::spawn(move || server.run()) }
    }

    fn shutdown(self) {
        let mut client = Client::connect(&self.addr).unwrap();
        assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
        self.handle.join().unwrap();
    }
}

/// The full scene: a recorded corpus, its 2-way shard, two replica daemons, a
/// monolithic comparison daemon over the unsharded corpus, and a bound router.
struct Cluster {
    keys: Vec<String>,
    replicas: Vec<Daemon>,
    monolithic: Daemon,
    router_addr: String,
    router_handle: std::thread::JoinHandle<()>,
}

fn start_cluster(name: &str, config: &RouterConfig) -> Cluster {
    let corpus_dir = tmp_dir(&format!("{name}-corpus"));
    let keys = record_split_corpus(&corpus_dir);
    let out_dir = tmp_dir(&format!("{name}-sharded"));
    let map = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default()).unwrap();
    let replicas: Vec<Daemon> =
        map.replicas.iter().map(|replica| Daemon::start(&out_dir.join(&replica.dir))).collect();
    let overrides: Vec<(usize, String)> =
        replicas.iter().enumerate().map(|(index, daemon)| (index, daemon.addr.clone())).collect();
    let monolithic = Daemon::start(&corpus_dir);
    let router = Router::bind(&out_dir.join(CLUSTER_FILE), &overrides, config).unwrap();
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());
    Cluster { keys, replicas, monolithic, router_addr, router_handle }
}

impl Cluster {
    fn key_owned_by(&self, replica: usize) -> &str {
        self.keys
            .iter()
            .find(|key| ClusterMap::assign(Corpus::cell_hash(key), 2) == replica)
            .unwrap()
    }

    fn shutdown(self) {
        let mut client = Client::connect(&self.router_addr).unwrap();
        assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
        self.router_handle.join().unwrap();
        for replica in self.replicas {
            replica.shutdown();
        }
        self.monolithic.shutdown();
    }
}

fn eval_spec(key: &str, policy: &str) -> EvalSpec {
    EvalSpec {
        key: key.to_string(),
        policy: policy.to_string(),
        mode: None,
        decode: None,
        decoder: None,
    }
}

/// Sends the same raw request lines to the router and the monolithic daemon,
/// asserting every response line is byte-identical. Both sides see the same
/// per-connection, per-cell request sequence, so cache `cached` flags evolve
/// identically by construction.
fn assert_byte_identical(cluster: &Cluster, lines: &[String]) {
    let mut routed = Client::connect(&cluster.router_addr).unwrap();
    let mut mono = Client::connect(&cluster.monolithic.addr).unwrap();
    for line in lines {
        let via_router = routed.send_raw(line).unwrap();
        let via_mono = mono.send_raw(line).unwrap();
        assert_eq!(via_router, via_mono, "routed bytes must equal monolithic bytes for {line}");
    }
}

// ---------------------------------------------------------------------------------
// byte identity
// ---------------------------------------------------------------------------------

#[test]
fn routed_solo_requests_are_byte_identical_to_monolithic() {
    let cluster = start_cluster("solo", &RouterConfig::default());
    let mut lines = Vec::new();
    for (id, key) in cluster.keys.iter().enumerate() {
        lines.push(request_line(&Request {
            id: Some(id as u64),
            request: RequestKind::StatCell { key: key.clone() },
        }));
        lines.push(request_line(&Request {
            id: Some(100 + id as u64),
            request: RequestKind::VerifyCell { key: key.clone() },
        }));
        // Twice per cell: the first eval is a cache miss on both sides, the
        // second a hit — `cached` flags must agree in both states.
        for _ in 0..2 {
            lines.push(request_line(&Request {
                id: None,
                request: RequestKind::Eval(eval_spec(key, "gladiator+m")),
            }));
        }
    }
    assert_byte_identical(&cluster, &lines);
    cluster.shutdown();
}

#[test]
fn routed_split_batches_are_byte_identical_to_monolithic() {
    let cluster = start_cluster("batch", &RouterConfig::default());
    // Every cell × two policies, interleaved so both replicas own items and
    // original order differs from per-owner order.
    let evals: Vec<EvalSpec> = cluster
        .keys
        .iter()
        .flat_map(|key| ["ideal", "eraser+m"].iter().map(move |policy| eval_spec(key, policy)))
        .collect();
    let mut lines = Vec::new();
    // Same batch twice (cold then hot caches), in both answer shapes.
    for per_item in [Some(true), None, Some(true), Some(false)] {
        lines.push(request_line(&Request {
            id: Some(7),
            request: RequestKind::BatchEval { evals: evals.clone(), per_item },
        }));
    }
    // Empty batch: the daemon's bad-request bytes, via the single-owner path.
    lines.push(request_line(&Request {
        id: Some(8),
        request: RequestKind::BatchEval { evals: Vec::new(), per_item: Some(true) },
    }));
    assert_byte_identical(&cluster, &lines);
    cluster.shutdown();
}

/// Decoder-selecting requests route exactly like legacy ones: the additive
/// `decoder` field survives the router's split-batch re-serialization, and
/// every routed response — cross-decoder rows, legacy no-decoder rows, and
/// typed `bad-request` answers for unknown selectors — is byte-identical to
/// the monolithic daemon's.
#[test]
fn routed_cross_decoder_batches_are_byte_identical_to_monolithic() {
    let cluster = start_cluster("decoder", &RouterConfig::default());
    let with_decoder = |key: &str, policy: &str, decoder: &str| EvalSpec {
        decode: Some(true),
        decoder: Some(decoder.to_string()),
        ..eval_spec(key, policy)
    };
    // Mixed selectors across both replicas in one batch, plus legacy members
    // with no decoder field.
    let evals: Vec<EvalSpec> = cluster
        .keys
        .iter()
        .flat_map(|key| ["uf", "lookup"].iter().map(move |d| with_decoder(key, "eraser+m", d)))
        .chain(cluster.keys.iter().map(|key| eval_spec(key, "ideal")))
        .collect();
    let mut lines = Vec::new();
    for per_item in [Some(true), Some(false)] {
        lines.push(request_line(&Request {
            id: Some(9),
            request: RequestKind::BatchEval { evals: evals.clone(), per_item },
        }));
    }
    // Solo evals: a selected backend and an unknown label (typed bad-request
    // bytes), one per replica.
    lines.push(request_line(&Request {
        id: Some(10),
        request: RequestKind::Eval(with_decoder(cluster.key_owned_by(0), "eraser+m", "lookup")),
    }));
    lines.push(request_line(&Request {
        id: Some(11),
        request: RequestKind::Eval(with_decoder(cluster.key_owned_by(1), "eraser+m", "mwpm")),
    }));
    assert_byte_identical(&cluster, &lines);
    cluster.shutdown();
}

#[test]
fn routed_error_bytes_match_monolithic() {
    let cluster = start_cluster("errors", &RouterConfig::default());
    let known = cluster.keys[0].clone();
    let lines = vec![
        // Unknown cell: routed to its would-be owner, whose refusal is the
        // daemon's exact unknown-cell message.
        request_line(&Request {
            id: Some(1),
            request: RequestKind::Eval(eval_spec("no such cell", "ideal")),
        }),
        request_line(&Request {
            id: Some(2),
            request: RequestKind::StatCell { key: "ghost".to_string() },
        }),
        // Unknown policy on a real cell.
        request_line(&Request {
            id: Some(3),
            request: RequestKind::Eval(eval_spec(&known, "frobnicate")),
        }),
        // Per-item split batch mixing good and bad pairings: item errors must
        // carry original-index `evals[i]:` prefixes.
        request_line(&Request {
            id: Some(4),
            request: RequestKind::BatchEval {
                evals: cluster
                    .keys
                    .iter()
                    .flat_map(|key| [eval_spec(key, "ideal"), eval_spec(key, "frobnicate")])
                    .collect(),
                per_item: Some(true),
            },
        }),
    ];
    assert_byte_identical(&cluster, &lines);
    cluster.shutdown();
}

#[test]
fn merged_list_cells_is_byte_identical_to_monolithic() {
    let cluster = start_cluster("cells", &RouterConfig::default());
    let lines = vec![request_line(&Request { id: Some(1), request: RequestKind::ListCells })];
    assert_byte_identical(&cluster, &lines);
    cluster.shutdown();
}

// ---------------------------------------------------------------------------------
// router-local semantics
// ---------------------------------------------------------------------------------

#[test]
fn version_identifies_the_router_and_stats_aggregate_with_router_counters() {
    let cluster = start_cluster("stats", &RouterConfig::default());
    let mut client = Client::connect(&cluster.router_addr).unwrap();
    assert_eq!(client.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    let ResponseKind::Version(version) = client.request(RequestKind::Version).unwrap() else {
        panic!("version must answer version");
    };
    assert!(
        version.server.starts_with("qec-cluster "),
        "the router identifies itself: {}",
        version.server
    );

    // Drive one split batch and one solo eval through the router, then read
    // the aggregate.
    let evals: Vec<EvalSpec> = cluster.keys.iter().map(|key| eval_spec(key, "ideal")).collect();
    let batch_size = evals.len() as u64;
    let ResponseKind::BatchItems(items) =
        client.request(RequestKind::BatchEval { evals, per_item: Some(true) }).unwrap()
    else {
        panic!("per-item batch must answer batch-items");
    };
    assert!(items.iter().all(|item| item.as_result().is_ok()));
    let ResponseKind::Eval(_) =
        client.request(RequestKind::Eval(eval_spec(&cluster.keys[0], "ideal"))).unwrap()
    else {
        panic!("solo eval must answer eval");
    };

    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats must answer stats");
    };
    // Replica-side sums: all four cells exist across the two sub-corpora, and
    // every batch item was evaluated somewhere.
    assert_eq!(stats.corpus_cells, cluster.keys.len());
    assert_eq!(stats.evals, batch_size + 1);
    // Router-side counters: the split batch, the solo eval, and this very
    // stats request (stats fans out to every replica, so it routes too).
    assert_eq!(stats.routed_requests, 3);
    assert_eq!(stats.fanout_hwm, 2);
    assert_eq!(stats.replica_errors, 0);
    assert_eq!(stats.replicas_up, 2);
    cluster.shutdown();
}

#[test]
fn router_shutdown_leaves_replicas_serving() {
    let cluster = start_cluster("shutdown", &RouterConfig::default());
    let Cluster { keys, replicas, monolithic, router_addr, router_handle } = cluster;
    let mut client = Client::connect(&router_addr).unwrap();
    assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
    router_handle.join().unwrap();
    // The replicas are independent daemons: still up, still answering.
    for replica in &replicas {
        let mut direct = Client::connect(&replica.addr).unwrap();
        assert_eq!(direct.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    }
    let _ = keys;
    for replica in replicas {
        replica.shutdown();
    }
    monolithic.shutdown();
}

// ---------------------------------------------------------------------------------
// replica failure: typed, bounded, never torn
// ---------------------------------------------------------------------------------

/// A router config with deadlines tight enough that "within the timeout"
/// is cheap to assert generously in wall-clock terms.
fn fast_failing_config() -> RouterConfig {
    RouterConfig {
        replica_timeout: Some(Duration::from_millis(500)),
        replica_retries: 1,
        ..RouterConfig::default()
    }
}

#[test]
fn dead_replica_yields_typed_unavailable_within_the_deadline_and_spares_siblings() {
    let cluster = start_cluster("kill", &fast_failing_config());
    let dead_key = cluster.key_owned_by(1).to_string();
    let live_key = cluster.key_owned_by(0).to_string();

    // Warm both paths, then capture the surviving replica's answer while the
    // cluster is whole (hot cache on both sides of the later comparison).
    let mut client = Client::connect(&cluster.router_addr).unwrap();
    let live_line = request_line(&Request {
        id: Some(1),
        request: RequestKind::Eval(eval_spec(&live_key, "ideal")),
    });
    let dead_line = request_line(&Request {
        id: Some(2),
        request: RequestKind::Eval(eval_spec(&dead_key, "ideal")),
    });
    // Twice each: the baseline is captured hot (`cached:true`), matching the
    // post-kill re-send.
    let _ = client.send_raw(&live_line).unwrap();
    let live_before = client.send_raw(&live_line).unwrap();
    let _ = client.send_raw(&dead_line).unwrap();

    // Kill replica 1 (a clean daemon shutdown — from the router's view the
    // connection just dies and reconnects are refused).
    let mut replicas = cluster.replicas;
    replicas.remove(1).shutdown();

    // Solo request to the dead replica's cell: a typed `unavailable`, inside
    // the configured deadline (500ms timeout × (1 + 1 retries) + backoff ≪ 10s).
    let started = Instant::now();
    let line = client.send_raw(&dead_line).unwrap();
    let elapsed = started.elapsed();
    let response = parse_response(&line).unwrap();
    let ResponseKind::Error(error) = response.response else {
        panic!("a dead replica must answer a typed error, got {line}");
    };
    assert_eq!(error.code, ErrorCode::Unavailable, "{error}");
    assert_eq!(response.id, Some(2), "the error still correlates to the request");
    assert!(
        elapsed < Duration::from_secs(10),
        "unavailable must arrive within the bounded deadline, took {elapsed:?}"
    );

    // The surviving replica's cells still answer — byte-identically to the
    // pre-kill response.
    let live_after = client.send_raw(&live_line).unwrap();
    assert_eq!(live_after, live_before, "a dead sibling must not change surviving answers");

    // A split batch is never torn: the dead replica's items carry per-item
    // `unavailable` errors with original indices, the survivor's items succeed.
    let evals = vec![
        eval_spec(&live_key, "ideal"),
        eval_spec(&dead_key, "ideal"),
        eval_spec(&live_key, "eraser+m"),
    ];
    let ResponseKind::BatchItems(items) =
        client.request(RequestKind::BatchEval { evals, per_item: Some(true) }).unwrap()
    else {
        panic!("per-item batch must answer batch-items");
    };
    assert_eq!(items.len(), 3);
    assert!(items[0].as_result().is_ok(), "survivor item 0 must succeed");
    assert!(items[2].as_result().is_ok(), "survivor item 2 must succeed");
    let Err(item_error) = items[1].as_result() else {
        panic!("the dead replica's item must fail typed");
    };
    assert_eq!(item_error.code, ErrorCode::Unavailable);
    assert!(
        item_error.message.starts_with("evals[1]: "),
        "item errors carry original indices: {}",
        item_error.message
    );

    // Stats still answer, reporting the outage.
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats must answer stats");
    };
    assert_eq!(stats.replicas_up, 1, "one replica is down");
    assert!(stats.replica_errors >= 1, "failed calls are counted: {stats:?}");

    // Cleanup.
    let mut shutdown_client = Client::connect(&cluster.router_addr).unwrap();
    assert_eq!(shutdown_client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
    cluster.router_handle.join().unwrap();
    for replica in replicas {
        replica.shutdown();
    }
    cluster.monolithic.shutdown();
}

#[test]
fn hung_replica_yields_unavailable_within_the_io_deadline() {
    // A listener that accepts and never answers: the pathological partition a
    // read deadline exists for.
    let hung = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let hung_addr = hung.local_addr().unwrap().to_string();
    let hung_thread = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold accepted sockets open until the listener is dropped.
        for stream in hung.incoming() {
            match stream {
                Ok(stream) => held.push(stream),
                Err(_) => break,
            }
        }
    });

    let corpus_dir = tmp_dir("hung-corpus");
    record_split_corpus(&corpus_dir);
    let out_dir = tmp_dir("hung-sharded");
    let map = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default()).unwrap();
    // Replica 0 is real; replica 1 is the black hole.
    let real = Daemon::start(&out_dir.join(&map.replicas[0].dir));
    let overrides = vec![(0, real.addr.clone()), (1, hung_addr)];
    let config = RouterConfig {
        replica_timeout: Some(Duration::from_millis(300)),
        replica_retries: 0,
        ..RouterConfig::default()
    };
    let router = Router::bind(&out_dir.join(CLUSTER_FILE), &overrides, &config).unwrap();
    let router_addr = router.local_addr().to_string();
    let router_handle = std::thread::spawn(move || router.run());

    let mut corpus_keys = Vec::new();
    for assignment in &map.assignments {
        if assignment.replica == 1 {
            corpus_keys.push(assignment.key.clone());
        }
    }
    let key = corpus_keys.first().unwrap().clone();
    let mut client = Client::connect(&router_addr).unwrap();
    let started = Instant::now();
    let response = client.request(RequestKind::Eval(eval_spec(&key, "ideal"))).unwrap();
    let elapsed = started.elapsed();
    let ResponseKind::Error(error) = response else {
        panic!("a hung replica must answer a typed error, got {response:?}");
    };
    assert_eq!(error.code, ErrorCode::Unavailable, "{error}");
    // One attempt bounded by a 300ms io deadline — assert generously.
    assert!(elapsed < Duration::from_secs(10), "hung replica answered in {elapsed:?}");

    let mut shutdown_client = Client::connect(&router_addr).unwrap();
    assert_eq!(shutdown_client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
    router_handle.join().unwrap();
    real.shutdown();
    drop(hung_thread); // detached; the process exit reaps the held sockets
}

// ---------------------------------------------------------------------------------
// sharding
// ---------------------------------------------------------------------------------

#[test]
fn shard_corpus_writes_servable_disjoint_sub_corpora() {
    let corpus_dir = tmp_dir("shard-corpus");
    let keys = record_split_corpus(&corpus_dir);
    let out_dir = tmp_dir("shard-out");
    let map = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default()).unwrap();
    assert_eq!(map.cells(), keys.len());

    let mut seen = Vec::new();
    for replica in &map.replicas {
        let sub = Corpus::open_existing(out_dir.join(&replica.dir)).unwrap();
        assert_eq!(sub.entries().len(), replica.cells);
        for entry in sub.entries() {
            // Ownership honors the assignment rule, trace bytes are verbatim.
            assert_eq!(
                ClusterMap::assign(Corpus::cell_hash(&entry.key), 2),
                replica.index,
                "{} landed on the wrong replica",
                entry.key
            );
            let original = std::fs::read(corpus_dir.join(&entry.file)).unwrap();
            let copied = std::fs::read(out_dir.join(&replica.dir).join(&entry.file)).unwrap();
            assert_eq!(original, copied, "{} must be copied byte-for-byte", entry.file);
            seen.push(entry.key.clone());
        }
    }
    seen.sort();
    let mut expected = keys;
    expected.sort();
    assert_eq!(seen, expected, "the shards partition the corpus exactly");

    // Refuses to overwrite an existing shard map.
    let err = shard_corpus(&corpus_dir, &out_dir, 2, &ShardOptions::default()).unwrap_err();
    assert!(err.contains("refusing to overwrite"), "{err}");
}

#[test]
fn client_timeouts_bound_a_hung_server() {
    // Direct client-level satellite check: `connect_with` deadlines make a
    // black-hole server a bounded, typed failure.
    let hung = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = hung.local_addr().unwrap();
    let hold = std::thread::spawn(move || hung.accept().map(|(s, _)| s));
    let mut client =
        Client::connect_with(addr, ClientConfig::with_timeout(Duration::from_millis(200))).unwrap();
    let started = Instant::now();
    let err = client.send_raw(r#"{"id":null,"request":"ping"}"#).unwrap_err();
    let elapsed = started.elapsed();
    assert!(elapsed < Duration::from_secs(10), "read must time out, took {elapsed:?}");
    assert!(!err.is_empty());
    drop(hold);
}
