//! End-to-end tests of the `repro` binary: strict argument handling (exit 2 on
//! any unknown input), the sweep subcommand's report contract, and worker-count
//! determinism of the report bytes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    cmd
}

fn run(args: &[&str]) -> Output {
    repro(args).output().expect("spawn repro")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[track_caller]
fn assert_usage_error(args: &[&str]) {
    let output = run(args);
    assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
    let stderr = stderr_of(&output);
    assert!(stderr.contains("usage: repro"), "{args:?} must print usage to stderr: {stderr}");
}

#[test]
fn unknown_inputs_exit_2_with_usage_on_stderr() {
    assert_usage_error(&[]); // no command
    assert_usage_error(&["frobnicate"]); // unknown command
    assert_usage_error(&["run", "--frobnicate"]); // unknown flag
    assert_usage_error(&["run", "fig99"]); // unknown experiment name
    assert_usage_error(&["run", "--scale", "galactic"]); // bad flag value
    assert_usage_error(&["run", "--scale"]); // missing flag value
    assert_usage_error(&["sweep", "--grid", "warp=9"]); // unknown grid key
    assert_usage_error(&["sweep", "--grid", "policy=bogus"]); // unknown policy
    assert_usage_error(&["sweep", "--spec", "/nonexistent/spec.json"]);
    assert_usage_error(&["sweep", "--spec", "x.json", "--grid", "d=3"]); // exclusive
    assert_usage_error(&["sweep", "--spec", "x.json", "--scale", "smoke"]); // scale is grid-only
    assert_usage_error(&["sweep", "--shots", "many"]);
    assert_usage_error(&["sweep", "--out", "--no-timing"]); // flag where a value belongs
    assert_usage_error(&["list", "extra"]);
    assert_usage_error(&["snapshot", "--frobnicate"]);
}

#[test]
fn help_exits_0_with_usage_on_stdout() {
    let output = run(&["--help"]);
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("usage: repro"));
}

#[test]
fn list_names_every_experiment_policy_and_code_family() {
    let output = run(&["list"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    for needle in ["fig1", "table6", "gladiator+m", "surface", "bpc"] {
        assert!(stdout.contains(needle), "list output missing {needle}: {stdout}");
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("repro-cli-{}-{name}", std::process::id()));
    path
}

fn sweep_json(out: &Path, threads: &str) -> String {
    let output = repro(&[
        "sweep",
        "--scale",
        "smoke",
        "--no-timing",
        "--out",
        out.to_str().expect("utf-8 temp path"),
    ])
    .env("RAYON_NUM_THREADS", threads)
    .output()
    .expect("spawn repro sweep");
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    std::fs::read_to_string(out).expect("sweep report written")
}

#[test]
fn default_sweep_writes_a_twelve_cell_schema_versioned_report() {
    let out = tmp_path("default.json");
    let json = sweep_json(&out, "2");
    let report: qec_experiments::SweepReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(report.schema_version, qec_experiments::sweep::SWEEP_SCHEMA_VERSION);
    assert_eq!(report.cells.len(), 12, "3 distances x 2 error rates x 2 policies");
    assert!(!report.timing);
    assert!(report.cells.iter().all(|c| c.metrics.logical_error_rate.is_some()));
    let _ = std::fs::remove_file(out);
}

#[test]
fn sweep_reports_are_byte_identical_across_worker_counts() {
    let out1 = tmp_path("t1.json");
    let out4 = tmp_path("t4.json");
    let single = sweep_json(&out1, "1");
    let quad = sweep_json(&out4, "4");
    assert_eq!(single, quad, "seed+shot contract must make worker count invisible");
    let _ = std::fs::remove_file(out1);
    let _ = std::fs::remove_file(out4);
}

#[test]
fn sweep_to_stdout_keeps_stdout_pure_json() {
    let output = run(&["sweep", "--scale", "smoke", "--grid", "d=3", "--no-timing", "--out", "-"]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let report: qec_experiments::SweepReport =
        serde_json::from_str(&stdout).expect("stdout must be nothing but the JSON report");
    assert_eq!(report.cells.len(), 4);
    assert!(stderr_of(&output).contains("LRC/round"), "summary table must move to stderr");
}

#[test]
fn grid_flags_restrict_the_sweep() {
    let out = tmp_path("grid.json");
    let output = run(&[
        "sweep",
        "--scale",
        "smoke",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m,ideal",
        "--no-timing",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let report: qec_experiments::SweepReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.cells.len(), 2);
    assert!(report.cells.iter().all(|c| c.scenario.distance == 3));
    let _ = std::fs::remove_file(out);
}

// ---------------------------------------------------------------------------------
// trace corpora: record | replay | corpus | sweep --corpus | version
// ---------------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn version_prints_provenance_and_every_schema_version() {
    for invocation in [&["--version"][..], &["-V"], &["version"]] {
        let output = run(invocation);
        assert_eq!(output.status.code(), Some(0), "{invocation:?}");
        let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
        assert!(stdout.starts_with("repro 0.1.0 ("), "{invocation:?}: {stdout}");
        assert!(
            stdout.contains(&format!(
                "sweep report schema:    {}",
                qec_experiments::sweep::SWEEP_SCHEMA_VERSION
            )),
            "{stdout}"
        );
        assert!(
            stdout
                .contains(&format!("trace (.qtr) schema:    {}", qec_trace::TRACE_SCHEMA_VERSION)),
            "{stdout}"
        );
        assert!(
            stdout.contains(&format!(
                "corpus manifest schema: {}",
                qec_trace::MANIFEST_SCHEMA_VERSION
            )),
            "{stdout}"
        );
        assert!(
            stdout.contains(&format!(
                "replay report schema:   {}",
                qec_experiments::replay::REPLAY_SCHEMA_VERSION
            )),
            "{stdout}"
        );
    }
}

#[test]
fn trace_subcommands_reject_bad_usage() {
    assert_usage_error(&["version", "extra"]);
    assert_usage_error(&["record"]); // missing --corpus
    assert_usage_error(&["record", "--corpus"]); // missing value
    assert_usage_error(&["record", "--corpus", "dir", "--frobnicate"]);
    assert_usage_error(&["replay"]); // missing --corpus
    assert_usage_error(&["replay", "--corpus", "dir", "--policy", "bogus"]);
    assert_usage_error(&["corpus"]); // missing directory
    assert_usage_error(&["corpus", "a", "b"]);
    assert_usage_error(&["sweep", "--record-policy", "ideal"]); // requires --corpus
    assert_usage_error(&["snapshot", "--check-trace"]); // missing value

    // Decoder selection: unknown labels and unsupported pairings exit 2.
    assert_usage_error(&["sweep", "--decoder", "mwpm"]); // unknown decoder
    assert_usage_error(&["sweep", "--grid", "decoder=mwpm"]); // unknown, via grid
    assert_usage_error(&["sweep", "--grid", "d=5", "decoder=lookup"]); // lookup is d=3 only
    assert_usage_error(&["replay", "--corpus", "dir", "--decoder", "bogus"]);
    assert_usage_error(&["query", "--addr", "x", "eval", "--decoder", "mwpm"]);
    assert_usage_error(&["query", "--addr", "x", "ping", "--decoder", "uf"]); // eval-only flag
}

/// The unknown-decoder usage error names the known labels, so the exit-2 is
/// actionable without opening the docs.
#[test]
fn unknown_decoder_errors_name_the_known_labels() {
    let output = run(&["replay", "--corpus", "dir", "--decoder", "bogus"]);
    assert_eq!(output.status.code(), Some(2));
    let stderr = stderr_of(&output);
    assert!(stderr.contains("unknown decoder `bogus`"), "{stderr}");
    assert!(stderr.contains("uf, lookup"), "{stderr}");
}

fn record_args(corpus: &str) -> Vec<&str> {
    vec![
        "record",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m,gladiator+m",
        "--shots",
        "4",
        "--rounds-per-distance",
        "2",
        "--seed",
        "7",
        "--corpus",
        corpus,
    ]
}

#[test]
fn record_replay_corpus_flow_verifies_against_the_live_engine() {
    let dir = tmp_dir("flow");
    let corpus = dir.to_str().unwrap();
    // Record: two policies collapse onto one policy-free cell.
    let output = run(&record_args(corpus));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(stdout.contains("1 cell(s) recorded with policy eraser+m"), "{stdout}");

    // Re-recording is a cache hit, not a new simulation.
    let rerun = run(&record_args(corpus));
    let stdout = String::from_utf8_lossy(&rerun.stdout).into_owned();
    assert!(stdout.contains("0 cell(s) recorded"), "{stdout}");
    assert!(stdout.contains("1 cached"), "{stdout}");

    // Replay with live verification: bit-for-bit or exit 1.
    let out = dir.join("replay.json");
    let output = run(&[
        "replay",
        "--corpus",
        corpus,
        "--policy",
        "eraser+m,gladiator+m",
        "--decode",
        "--verify-live",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let report: qec_experiments::ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.results.len(), 2);
    assert!(report.results[0].exact);
    assert_eq!(report.results[0].live_match, Some(true));
    assert!(!report.results[1].exact, "gladiator+m replays an eraser+m trace open-loop");

    // Corpus verification decodes every trace with CRC checking.
    let output = run(&["corpus", corpus, "--verify"]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(stdout.contains("corpus verify OK"), "{stdout}");

    // A flipped byte inside the shard file makes both verify paths fail.
    let shard = report_shard_file(&dir);
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&shard, &bytes).unwrap();
    let output = run(&["corpus", corpus, "--verify"]);
    assert_eq!(output.status.code(), Some(1), "corrupt trace must fail the verify gate");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cross-decoder session from the README, end to end: one recording
/// replayed under both backends, every row live-verified bit-for-bit
/// (`--decoder` implies `--decode`), rows labeled decoder-major, and the
/// summary growing a decoder column.
#[test]
fn cross_decoder_replay_verifies_both_backends_and_labels_rows() {
    let dir = tmp_dir("xdec");
    let corpus = dir.to_str().unwrap();
    let output = run(&record_args(corpus));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));

    let out = dir.join("replay.json");
    let output = run(&[
        "replay",
        "--corpus",
        corpus,
        "--policy",
        "eraser+m,gladiator+m",
        "--decoder",
        "uf,lookup",
        "--closed-loop",
        "--verify-live",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(stdout.contains("decoder"), "summary must grow a decoder column: {stdout}");
    assert!(stdout.contains("lookup"), "{stdout}");

    let report: qec_experiments::ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.results.len(), 4, "2 policies x 2 decoders");
    let decoders: Vec<_> = report.results.iter().map(|r| r.decoder.as_deref()).collect();
    assert_eq!(decoders, [Some("uf"), Some("uf"), Some("lookup"), Some("lookup")]);
    for row in &report.results {
        assert_eq!(row.live_match, Some(true), "{} {:?}", row.policy, row.decoder);
        assert!(row.metrics.logical_error_rate.is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn report_shard_file(dir: &Path) -> PathBuf {
    let shards = dir.join("shards");
    let sub = std::fs::read_dir(&shards).unwrap().next().unwrap().unwrap().path();
    std::fs::read_dir(sub).unwrap().next().unwrap().unwrap().path()
}

fn corpus_sweep(corpus: &str, out: &Path, threads: &str) -> String {
    let output = repro(&[
        "sweep",
        "--grid",
        "d=3",
        "p=1e-3,2e-3",
        "policy=eraser+m,gladiator+m,ideal",
        "--shots",
        "3",
        "--rounds-per-distance",
        "2",
        "--seed",
        "13",
        "--no-timing",
        "--corpus",
        corpus,
        "--out",
        out.to_str().unwrap(),
    ])
    .env("RAYON_NUM_THREADS", threads)
    .output()
    .expect("spawn repro sweep --corpus");
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    std::fs::read_to_string(out).expect("corpus sweep report written")
}

#[test]
fn corpus_sweeps_are_byte_identical_across_worker_counts_including_trace_files() {
    let dir1 = tmp_dir("cs1");
    let dir4 = tmp_dir("cs4");
    let out1 = dir1.join("report.json");
    let out4 = dir4.join("report.json");
    let report1 = corpus_sweep(dir1.to_str().unwrap(), &out1, "1");
    let report4 = corpus_sweep(dir4.to_str().unwrap(), &out4, "4");
    assert_eq!(report1, report4, "corpus sweep reports must not depend on worker count");
    let report: qec_experiments::SweepReport = serde_json::from_str(&report1).unwrap();
    assert_eq!(report.recorded_policy.as_deref(), Some("eraser+m"));
    assert_eq!(report.cells.len(), 6);
    // The recorded .qtr bytes themselves are worker-count invariant.
    let shard1 = report_shard_file(&dir1);
    let shard4 = dir4.join(shard1.strip_prefix(&dir1).unwrap());
    assert_eq!(
        std::fs::read(&shard1).unwrap(),
        std::fs::read(&shard4).unwrap(),
        "trace bytes must be identical under 1 vs 4 workers"
    );
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn closed_loop_replay_flow_verifies_every_policy_and_reports_profiles() {
    let dir = tmp_dir("closed-loop");
    let corpus = dir.to_str().unwrap();
    let output = run(&record_args(corpus));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));

    // Closed-loop + verify-live is the exact-counterfactual gate: every
    // policy (not just the recording one) must match live simulation.
    let out = dir.join("closed.json");
    let output = run(&[
        "replay",
        "--corpus",
        corpus,
        "--policy",
        "eraser+m,gladiator+m,always-lrc",
        "--decode",
        "--closed-loop",
        "--verify-live",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(stdout.contains("replay mode: closed-loop"), "{stdout}");
    assert!(stdout.contains("verify-live OK: 3 closed-loop replay(s)"), "{stdout}");
    let report: qec_experiments::ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.replay_mode, "closed-loop");
    assert_eq!(report.results.len(), 3);
    for row in &report.results {
        assert_eq!(row.live_match, Some(true), "{} must verify live", row.policy);
        assert!(row.metrics.logical_error_rate.is_some(), "{} must decode", row.policy);
        assert!(row.divergence_profile.is_some(), "{} must carry a profile", row.policy);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_loop_corpus_sweep_carries_mode_and_profiles() {
    let dir = tmp_dir("cl-sweep");
    let out = dir.join("report.json");
    let output = run(&[
        "sweep",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m,ideal",
        "--shots",
        "3",
        "--rounds-per-distance",
        "2",
        "--seed",
        "13",
        "--no-timing",
        "--corpus",
        dir.to_str().unwrap(),
        "--closed-loop",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let report: qec_experiments::SweepReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.replay_mode.as_deref(), Some("closed-loop"));
    assert!(report.cells.iter().all(|c| c.divergence_profile.is_some()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_loop_flags_reject_bad_usage() {
    assert_usage_error(&["sweep", "--closed-loop"]); // requires --corpus
    assert_usage_error(&["record", "--corpus", "dir", "--closed-loop"]); // replay-side flag
}

#[test]
fn read_only_corpus_commands_reject_a_missing_directory() {
    // A mistyped corpus path must not pass verification vacuously.
    assert_usage_error(&["corpus", "/nonexistent-corpus-dir"]);
    assert_usage_error(&["replay", "--corpus", "/nonexistent-corpus-dir", "--verify-live"]);
}

#[test]
fn replay_to_stdout_keeps_stdout_pure_json_even_with_verify_live() {
    let dir = tmp_dir("pure-json");
    let output = run(&record_args(dir.to_str().unwrap()));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let output = run(&["replay", "--corpus", dir.to_str().unwrap(), "--verify-live", "--out", "-"]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let report: qec_experiments::ReplayReport =
        serde_json::from_str(&stdout).expect("stdout must be nothing but the JSON report");
    assert_eq!(report.results.len(), 1);
    assert!(stderr_of(&output).contains("verify-live OK"), "status line must go to stderr");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// adaptive sweeps: flag discipline + binary-level pause/resume oracle
// ---------------------------------------------------------------------------------

#[test]
fn adaptive_flags_reject_bad_usage() {
    assert_usage_error(&["sweep", "--adaptive"]); // requires --checkpoint
    assert_usage_error(&["sweep", "--adaptive", "--checkpoint", "d"]); // requires --target-ci
    assert_usage_error(&["sweep", "--target-ci", "0.1"]); // requires --adaptive
    assert_usage_error(&["sweep", "--max-shots", "100"]); // requires --adaptive
    assert_usage_error(&["sweep", "--checkpoint", "d"]); // requires --adaptive
    assert_usage_error(&["sweep", "--stop-after-rounds", "1"]); // requires --adaptive
    assert_usage_error(&["sweep", "--adaptive", "--target-ci", "nope", "--checkpoint", "d"]);
    // --adaptive runs live: closed-loop replay cannot combine with it.
    assert_usage_error(&[
        "sweep",
        "--adaptive",
        "--target-ci",
        "0.1",
        "--checkpoint",
        "d",
        "--corpus",
        "c",
        "--closed-loop",
    ]);
    // --resume takes its whole spec from the checkpoint.
    assert_usage_error(&["sweep", "--resume", "d", "--grid", "d=3"]);
    assert_usage_error(&["sweep", "--resume", "d", "--adaptive"]);
    assert_usage_error(&["sweep", "--resume", "d", "--target-ci", "0.1"]);
    assert_usage_error(&["sweep", "--resume", "d", "--shots", "5"]);
    // Resuming a directory that holds no checkpoint is an error, not a
    // silent fresh start.
    assert_usage_error(&["sweep", "--resume", "/nonexistent-checkpoint-dir"]);
}

#[test]
fn paused_and_resumed_adaptive_sweep_reproduces_the_uninterrupted_bytes() {
    let base_out = tmp_path("adaptive-base.json");
    let base_ckpt = tmp_dir("adaptive-base-ckpt");
    let adaptive_args = |ckpt: &str, out: &str, extra: &[&str]| -> Vec<String> {
        let mut args: Vec<String> = [
            "sweep",
            "--grid",
            "d=3",
            "p=1e-3",
            "policy=eraser+m",
            "--shots",
            "12",
            "--seed",
            "23",
            "--no-decode",
            "--adaptive",
            "--target-ci",
            "1e-9",
            "--initial-batch",
            "2",
            "--checkpoint",
            ckpt,
            "--out",
            out,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        args.extend(extra.iter().map(ToString::to_string));
        args
    };
    fn as_strs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }

    // The uninterrupted baseline. An unreachable target rides the two-shot
    // initial batch through several doubling rounds to the 12-shot ceiling.
    let args = adaptive_args(base_ckpt.to_str().unwrap(), base_out.to_str().unwrap(), &[]);
    let output = run(&as_strs(&args));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let console = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(console.contains("at ceiling"), "provenance line must reach the console: {console}");
    let baseline = std::fs::read(&base_out).unwrap();

    // Pause after one round (exit 0, no report yet), then resume one round
    // at a time until the run completes: the report must be byte-identical.
    let out = tmp_path("adaptive-resumed.json");
    let ckpt = tmp_dir("adaptive-ckpt");
    let args =
        adaptive_args(ckpt.to_str().unwrap(), out.to_str().unwrap(), &["--stop-after-rounds", "1"]);
    let output = run(&as_strs(&args));
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    assert!(
        String::from_utf8_lossy(&output.stdout).contains("paused"),
        "stdout: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    assert!(!out.exists(), "a paused run must not write a report");

    let mut sessions = 0;
    while !out.exists() {
        sessions += 1;
        assert!(sessions < 32, "resume loop did not converge");
        let output = run(&[
            "sweep",
            "--resume",
            ckpt.to_str().unwrap(),
            "--stop-after-rounds",
            "1",
            "--out",
            out.to_str().unwrap(),
        ]);
        assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    }
    assert!(sessions >= 2, "the run must have spanned several sessions, got {sessions}");
    assert_eq!(
        std::fs::read(&out).unwrap(),
        baseline,
        "resumed report must be byte-identical to the uninterrupted run"
    );

    // A second fresh run into the used checkpoint directory is refused.
    let args = adaptive_args(ckpt.to_str().unwrap(), out.to_str().unwrap(), &[]);
    let output = run(&as_strs(&args));
    assert_eq!(output.status.code(), Some(2), "stderr: {}", stderr_of(&output));

    let _ = std::fs::remove_file(&base_out);
    let _ = std::fs::remove_file(&out);
    let _ = std::fs::remove_dir_all(&base_ckpt);
    let _ = std::fs::remove_dir_all(&ckpt);
}
