//! Daemon lifecycle tests: in-process server behavior (typed errors, cache
//! hits, batch ordering) and the full `repro serve`/`repro query` binary flow,
//! including the acceptance gate that a served `eval` is **byte-identical** to
//! the `repro replay` report row for the same `cell × policy`.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

use leakage_speculation::PolicyKind;
use qec_experiments::replay::record_into_corpus;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_experiments::ReplayReport;
use qec_serve::{
    request_line, Client, ErrorCode, EvalSpec, Request, RequestKind, ResponseKind, ServeConfig,
    Server, PROTOCOL_VERSION,
};
use qec_trace::Corpus;

// ---------------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qec-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records a tiny two-cell corpus (d=3 and d=5) directly through the library.
fn record_corpus(dir: &Path) -> Vec<String> {
    let mut corpus = Corpus::open(dir).unwrap();
    let mut keys = Vec::new();
    for distance in [3usize, 5] {
        let scenario = Scenario {
            code: CodeFamily::Surface,
            distance,
            rounds: 4,
            p: 1e-3,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 3,
            seed: 11,
            decode: false,
            decoder: None,
        };
        let entry =
            record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "server test").unwrap();
        keys.push(entry.key);
    }
    corpus.save().unwrap();
    keys
}

/// Starts an in-process server on an ephemeral port and returns its address
/// plus the join handle of the accept loop.
fn start_in_process(dir: &Path, cache_cells: usize) -> (String, std::thread::JoinHandle<()>) {
    let config =
        ServeConfig { addr: "127.0.0.1:0".to_string(), cache_cells, ..ServeConfig::default() };
    start_with_config(dir, config)
}

/// Like [`start_in_process`], but with full control over the connection and
/// queue limits.
fn start_with_config(dir: &Path, config: ServeConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(dir, &config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
}

/// Shutdown against a connection-limited daemon: the attempt itself can be
/// shed while just-closed connections drain, so retry until admitted.
fn shutdown_with_retry(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Ok(mut client) = Client::connect(addr) {
            if client.request(RequestKind::Shutdown) == Ok(ResponseKind::ShuttingDown) {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("could not shut the daemon down within 10s");
}

fn eval_spec(key: &str, policy: &str, closed_loop: bool, decode: bool) -> EvalSpec {
    EvalSpec {
        key: key.to_string(),
        policy: policy.to_string(),
        mode: closed_loop.then(|| "closed-loop".to_string()),
        decode: decode.then_some(true),
        decoder: None,
    }
}

// ---------------------------------------------------------------------------------
// in-process lifecycle
// ---------------------------------------------------------------------------------

#[test]
fn malformed_requests_get_typed_errors_and_never_kill_the_connection() {
    let dir = tmp_dir("malformed");
    record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    for garbage in [
        "this is not json",
        "{",
        "[1,2,3]",
        r#"{"id":null,"request":"frobnicate"}"#,
        r#"{"id":null,"request":{"eval":{"key":"k"}}}"#,
        r#"{"no":"envelope"}"#,
    ] {
        let line = client.send_raw(garbage).unwrap();
        let response = qec_serve::parse_response(&line).unwrap();
        let ResponseKind::Error(error) = response.response else {
            panic!("{garbage:?} must yield an error response, got {line}");
        };
        assert_eq!(error.code, ErrorCode::BadRequest, "{garbage:?} -> {error}");
    }
    // The connection survived all of it.
    assert_eq!(client.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    // Typed domain errors, not bad-request.
    let ResponseKind::Error(error) = client
        .request(RequestKind::Eval(eval_spec("no such cell", "ideal", false, false)))
        .unwrap()
    else {
        panic!("unknown cell must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownCell);
    let key = {
        let corpus = Corpus::open_existing(&dir).unwrap();
        corpus.entries()[0].key.clone()
    };
    let ResponseKind::Error(error) =
        client.request(RequestKind::Eval(eval_spec(&key, "not-a-policy", false, false))).unwrap()
    else {
        panic!("unknown policy must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    let ResponseKind::Error(error) = client
        .request(RequestKind::Eval(EvalSpec {
            key: key.clone(),
            policy: "ideal".to_string(),
            mode: Some("sideways".to_string()),
            decode: None,
            decoder: None,
        }))
        .unwrap()
    else {
        panic!("unknown mode must error");
    };
    assert_eq!(error.code, ErrorCode::BadRequest);
    drop(client);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_evals_hit_the_cache_and_say_so() {
    let dir = tmp_dir("cache-hits");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let eval = |client: &mut Client, key: &str| -> bool {
        match client
            .request(RequestKind::Eval(eval_spec(key, "gladiator+m", false, false)))
            .unwrap()
        {
            ResponseKind::Eval(result) => result.cached,
            other => panic!("expected eval result, got {other:?}"),
        }
    };
    assert!(!eval(&mut client, &keys[0]), "first touch loads from disk");
    assert!(eval(&mut client, &keys[0]), "second touch must be a cache hit");
    assert!(!eval(&mut client, &keys[1]));
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cached_cells, 2);
    assert_eq!(stats.evals, 3);
    assert_eq!(stats.corpus_cells, 2);
    assert!(stats.requests >= 4);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `stats` surface reports adaptive-sweep progress when a checkpoint is
/// colocated with the served corpus: zeros without one, and the exact
/// rounds/shots totals of the checkpointed run once `state.qad` appears —
/// read fresh per request, no reload or restart required.
#[test]
fn stats_report_adaptive_progress_from_a_colocated_checkpoint() {
    use qec_experiments::adaptive::{run_adaptive, AdaptiveSpec};
    use qec_experiments::sweep::SweepSpec;

    let dir = tmp_dir("adaptive-stats");
    record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let stats = |client: &mut Client| match client.request(RequestKind::Stats).unwrap() {
        ResponseKind::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    let before = stats(&mut client);
    assert_eq!((before.adaptive_rounds, before.shots_allocated), (0, 0));

    // An adaptive sweep checkpoints into the corpus directory (the file sets
    // are disjoint); the running daemon picks the progress up on the next
    // `stats` request.
    let spec = SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![1e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM],
        shots: 8,
        rounds_per_distance: 4,
        seed: 11,
        decode: false,
        decoders: None,
        adaptive: Some(AdaptiveSpec {
            target_rel_halfwidth: 1e-9,
            confidence: 0.95,
            initial_batch: 2,
        }),
    };
    let outcome = run_adaptive(&spec, &dir, None).unwrap().unwrap();
    let after = stats(&mut client);
    assert_eq!(after.adaptive_rounds, outcome.rounds);
    assert_eq!(after.shots_allocated, outcome.shots_allocated);
    assert_eq!(after.shots_allocated, 8, "the 1e-9 target drives the cell to its ceiling");

    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_eval_returns_results_in_request_order_and_is_all_or_nothing() {
    let dir = tmp_dir("batch");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    // Deliberately interleaved ordering across cells and policies.
    let evals: Vec<EvalSpec> = [
        (&keys[1], "ideal"),
        (&keys[0], "gladiator+m"),
        (&keys[1], "eraser+m"),
        (&keys[0], "ideal"),
    ]
    .into_iter()
    .map(|(key, policy)| eval_spec(key, policy, false, false))
    .collect();
    let ResponseKind::Batch(results) =
        client.request(RequestKind::BatchEval { evals: evals.clone(), per_item: None }).unwrap()
    else {
        panic!("batch");
    };
    assert_eq!(results.len(), evals.len());
    for (result, spec) in results.iter().zip(&evals) {
        assert_eq!(result.result.key, spec.key, "results must follow request order");
        assert_eq!(result.result.policy, spec.policy);
    }
    // Batch answers match single-eval answers for the same pairing.
    let ResponseKind::Eval(single) = client.request(RequestKind::Eval(evals[1].clone())).unwrap()
    else {
        panic!("eval");
    };
    assert_eq!(single.result, results[1].result);
    // One bad pairing fails the whole batch with its index in the message.
    let mut bad = evals.clone();
    bad[2].policy = "not-a-policy".to_string();
    let ResponseKind::Error(error) =
        client.request(RequestKind::BatchEval { evals: bad, per_item: None }).unwrap()
    else {
        panic!("bad batch must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    assert!(error.message.contains("evals[2]"), "{error}");
    let ResponseKind::Error(error) =
        client.request(RequestKind::BatchEval { evals: Vec::new(), per_item: None }).unwrap()
    else {
        panic!("empty batch must error");
    };
    assert_eq!(error.code, ErrorCode::BadRequest);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same-cell closed-loop batch members are evaluated as ONE shared-checkpoint
/// candidate set. That grouping must be invisible in the results — each row
/// equals the solo eval of the same pairing — while the additive `stats`
/// counters record that the shared path ran.
#[test]
fn grouped_closed_loop_batches_match_solo_evals_and_advance_counters() {
    let dir = tmp_dir("batch-shared");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let ResponseKind::Stats(before) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(before.shared_passes, 0, "no shared work before the batch");
    assert_eq!(before.suffixes_served, 0);
    // Three closed-loop members on one cell (grouped), one open-loop member
    // on the other (stays solo), interleaved to exercise order restoration.
    let evals: Vec<EvalSpec> = vec![
        eval_spec(&keys[0], "gladiator+m", true, true),
        eval_spec(&keys[1], "ideal", false, false),
        eval_spec(&keys[0], "always-lrc", true, true),
        eval_spec(&keys[0], "mlr-only", true, true),
    ];
    let ResponseKind::Batch(results) =
        client.request(RequestKind::BatchEval { evals: evals.clone(), per_item: None }).unwrap()
    else {
        panic!("batch");
    };
    assert_eq!(results.len(), evals.len());
    for (result, spec) in results.iter().zip(&evals) {
        assert_eq!(result.result.key, spec.key, "results must follow request order");
        assert_eq!(result.result.policy, spec.policy);
        let ResponseKind::Eval(solo) = client.request(RequestKind::Eval(spec.clone())).unwrap()
        else {
            panic!("eval");
        };
        assert_eq!(solo.result, result.result, "{}: grouped row must equal solo row", spec.policy);
    }
    let ResponseKind::Stats(after) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    // always-lrc diverges against an eraser+m recording, so the group forced
    // at least one prefix pass and served one suffix per divergent member.
    // The solo re-evals above run outside the batch path and add nothing.
    assert!(after.shared_passes > 0, "grouped batch must run the shared path");
    assert!(after.suffixes_served >= after.shared_passes);
    assert!(after.peak_checkpoints >= 1);
    assert_eq!(after.evals, before.evals + 8, "4 batch members + 4 solo evals");
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The served row's bytes, independent of the `cached` flag (which
/// legitimately resets when a hot reload swaps the cache).
fn eval_row_bytes(client: &mut Client, spec: &EvalSpec) -> String {
    match client.request(RequestKind::Eval(spec.clone())).unwrap() {
        ResponseKind::Eval(result) => serde_json::to_string(&result.result).unwrap(),
        other => panic!("expected eval result, got {other:?}"),
    }
}

#[test]
fn per_item_batches_isolate_failures_and_preserve_order() {
    let dir = tmp_dir("per-item");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let evals = vec![
        eval_spec(&keys[0], "ideal", false, false),
        eval_spec(&keys[1], "not-a-policy", false, false),
        eval_spec(&keys[1], "ideal", false, false),
        eval_spec("no such cell", "ideal", false, false),
    ];
    let ResponseKind::BatchItems(items) = client
        .request(RequestKind::BatchEval { evals: evals.clone(), per_item: Some(true) })
        .unwrap()
    else {
        panic!("per-item batch must answer batch-items");
    };
    assert_eq!(items.len(), evals.len());
    // Good pairings equal their solo evals (same bytes, same order)...
    for index in [0usize, 2] {
        let item = items[index].as_result().unwrap_or_else(|e| panic!("items[{index}]: {e}"));
        let ResponseKind::Eval(solo) =
            client.request(RequestKind::Eval(evals[index].clone())).unwrap()
        else {
            panic!("eval");
        };
        assert_eq!(item.result, solo.result, "items[{index}] must match the solo row");
    }
    // ...while bad pairings carry their own typed error naming their index,
    // without poisoning their siblings.
    let error = items[1].as_result().unwrap_err();
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    assert!(error.message.contains("evals[1]"), "{error}");
    let error = items[3].as_result().unwrap_err();
    assert_eq!(error.code, ErrorCode::UnknownCell);
    assert!(error.message.contains("evals[3]"), "{error}");
    // `per_item: false` keeps the legacy all-or-nothing contract.
    let ResponseKind::Error(error) = client
        .request(RequestKind::BatchEval { evals: evals.clone(), per_item: Some(false) })
        .unwrap()
    else {
        panic!("legacy batch must fail as a whole");
    };
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    // Empty batches are refused in either mode.
    let ResponseKind::Error(error) =
        client.request(RequestKind::BatchEval { evals: Vec::new(), per_item: Some(true) }).unwrap()
    else {
        panic!("empty per-item batch must error");
    };
    assert_eq!(error.code, ErrorCode::BadRequest);
    // The typed client API folds the items into one Result per pairing.
    let results = client.batch_eval(evals).unwrap();
    assert_eq!(results.len(), 4);
    assert!(results[0].is_ok() && results[2].is_ok(), "good pairings stay Ok");
    assert_eq!(results[1].as_ref().unwrap_err().code, ErrorCode::UnknownPolicy);
    assert_eq!(results[3].as_ref().unwrap_err().code, ErrorCode::UnknownCell);
    // The `evals` counter counts successes only: 2 per-item + 2 solo + 2 typed.
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(stats.evals, 6, "stats: {stats:?}");
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_limit_connections_get_one_overloaded_line_and_the_daemon_keeps_serving() {
    let dir = tmp_dir("conn-limit");
    record_corpus(&dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_cells: 2,
        max_connections: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start_with_config(&dir, config);
    let mut admitted = Client::connect(&addr).unwrap();
    // The ping round trip proves this connection was admitted, so the next
    // one is deterministically over the limit.
    assert_eq!(admitted.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    let over = std::net::TcpStream::connect(addr.as_str()).unwrap();
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = qec_serve::parse_response(line.trim()).expect("shed greeting must parse");
    assert_eq!(response.id, None, "no request to correlate with");
    let ResponseKind::Error(error) = response.response else {
        panic!("over-limit connection must get a typed error, got {line}");
    };
    assert_eq!(error.code, ErrorCode::Overloaded);
    assert!(error.message.contains("connection limit"), "{error}");
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0, "shed connection must be closed");
    // The established connection never noticed.
    assert_eq!(admitted.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    // Freeing the slot admits a later client — the retry-after-shed contract.
    drop(admitted);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut retry = None;
    while Instant::now() < deadline {
        if let Ok(mut client) = Client::connect(&addr) {
            if client.request(RequestKind::Ping) == Ok(ResponseKind::Pong) {
                retry = Some(client);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut retry = retry.expect("a freed slot must admit a new connection");
    let ResponseKind::Stats(stats) = retry.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert!(stats.shed_connections >= 1, "stats: {stats:?}");
    assert_eq!(stats.max_connections, 1);
    assert_eq!(stats.active_connections, 1, "only this connection is active");
    assert_eq!(retry.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overweight_requests_are_shed_with_a_typed_error_and_the_connection_survives() {
    let dir = tmp_dir("queue-shed");
    let keys = record_corpus(&dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_cells: 2,
        queue_limit: 1,
        ..ServeConfig::default()
    };
    let (addr, handle) = start_with_config(&dir, config);
    let mut client = Client::connect(&addr).unwrap();
    // Weight 3 can never fit under limit 1: the shed is deterministic, not a
    // race against other in-flight work.
    let heavy = vec![
        eval_spec(&keys[0], "ideal", false, false),
        eval_spec(&keys[0], "eraser+m", false, false),
        eval_spec(&keys[1], "ideal", false, false),
    ];
    let ResponseKind::Error(error) = client
        .request(RequestKind::BatchEval { evals: heavy.clone(), per_item: Some(true) })
        .unwrap()
    else {
        panic!("overweight batch must be shed");
    };
    assert_eq!(error.code, ErrorCode::Overloaded);
    assert!(error.message.contains("queue full"), "{error}");
    // Nothing was evaluated and the connection survived: a weight-1 request
    // on the very same connection succeeds.
    let ResponseKind::Eval(_) = client.request(RequestKind::Eval(heavy[0].clone())).unwrap() else {
        panic!("post-shed eval on the same connection must succeed");
    };
    // The typed client surfaces a shed as a whole-request failure.
    let message = client.batch_eval(heavy).unwrap_err();
    assert!(message.contains("overloaded"), "{message}");
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(stats.shed_requests, 2, "stats: {stats:?}");
    assert_eq!(stats.queue_limit, 1);
    assert_eq!(stats.queue_depth_hwm, 1, "only the solo eval was ever admitted");
    assert_eq!(stats.evals, 1);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs `lines` over one connection and returns the raw response lines,
/// retrying from scratch when the connection-limited daemon sheds the
/// attempt (the shed greeting carries the `overloaded` code).
fn send_lines_with_retry(addr: &str, lines: &[String]) -> Vec<String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    'attempt: while Instant::now() < deadline {
        let Ok(mut client) = Client::connect(addr) else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let mut responses = Vec::with_capacity(lines.len());
        for line in lines {
            match client.send_raw(line) {
                Ok(response) if response.contains("\"overloaded\"") => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue 'attempt;
                }
                Ok(response) => responses.push(response),
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    continue 'attempt;
                }
            }
        }
        return responses;
    }
    panic!("no admitted connection within 30s");
}

#[test]
fn concurrent_clients_get_byte_identical_rows_under_a_tiny_connection_limit() {
    let dir = tmp_dir("concurrent");
    let keys = record_corpus(&dir);
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_cells: 2,
        max_connections: 2,
        ..ServeConfig::default()
    };
    let (addr, handle) = start_with_config(&dir, config);
    // Warm both cells first so every measured response is a cache hit — the
    // `cached` flag would otherwise depend on which client arrives first.
    {
        let mut warm = Client::connect(&addr).unwrap();
        let warmed = warm
            .batch_eval(vec![
                eval_spec(&keys[0], "ideal", false, false),
                eval_spec(&keys[1], "ideal", false, false),
            ])
            .unwrap();
        assert!(warmed.iter().all(Result::is_ok));
    }
    let lines: Vec<String> = [
        eval_spec(&keys[0], "ideal", false, false),
        eval_spec(&keys[0], "gladiator+m", true, true),
        eval_spec(&keys[1], "ideal", false, false),
        eval_spec(&keys[1], "eraser+m", true, true),
    ]
    .into_iter()
    .map(|spec| request_line(&Request { id: Some(7), request: RequestKind::Eval(spec) }))
    .collect();
    // Single-client reference bytes...
    let baseline = send_lines_with_retry(&addr, &lines);
    // ...must be exactly what every one of 8 concurrent clients receives,
    // even though only 2 connections are ever served at once.
    std::thread::scope(|scope| {
        let threads: Vec<_> =
            (0..8).map(|_| scope.spawn(|| send_lines_with_retry(&addr, &lines))).collect();
        for thread in threads {
            assert_eq!(
                thread.join().unwrap(),
                baseline,
                "concurrent responses must be byte-identical to the single-client run"
            );
        }
    });
    shutdown_with_retry(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_manifest_reload_swaps_cells_without_torn_rows_or_dropped_connections() {
    let dir = tmp_dir("hot-reload");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 4);
    let mut client = Client::connect(&addr).unwrap();
    let specs = [
        eval_spec(&keys[0], "ideal", false, false),
        eval_spec(&keys[1], "gladiator+m", false, false),
    ];
    let baselines =
        [eval_row_bytes(&mut client, &specs[0]), eval_row_bytes(&mut client, &specs[1])];
    // A torn manifest write must neither take the daemon down nor swap in
    // garbage: the old snapshot keeps serving, and the check retries later.
    let manifest = dir.join("manifest.json");
    let good = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &good[..good.len() / 2]).unwrap();
    let ResponseKind::Cells(cells) = client.request(RequestKind::ListCells).unwrap() else {
        panic!("cells");
    };
    assert_eq!(cells.len(), 2, "a torn manifest must not change the served snapshot");
    assert_eq!(eval_row_bytes(&mut client, &specs[0]), baselines[0]);
    std::fs::write(&manifest, &good).unwrap();
    // Hammer both cells from concurrent clients while the corpus grows
    // underneath the daemon: no served row may ever differ from its baseline
    // (one snapshot generation per request — never torn, never mixed).
    let mut new_key = String::new();
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let addr = &addr;
            let specs = &specs;
            let baselines = &baselines;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for iteration in 0..40usize {
                    let which = (worker + iteration) % 2;
                    assert_eq!(
                        eval_row_bytes(&mut client, &specs[which]),
                        baselines[which],
                        "rows must stay byte-identical across the manifest swap"
                    );
                }
            });
        }
        std::thread::sleep(Duration::from_millis(30));
        let mut corpus = Corpus::open_existing(&dir).unwrap();
        let scenario = Scenario {
            code: CodeFamily::Surface,
            distance: 7,
            rounds: 4,
            p: 1e-3,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 3,
            seed: 11,
            decode: false,
            decoder: None,
        };
        let entry =
            record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "server test").unwrap();
        corpus.save().unwrap();
        new_key = entry.key;
    });
    // The next request observes the swap — without this connection ever
    // having been dropped.
    let ResponseKind::Cells(cells) = client.request(RequestKind::ListCells).unwrap() else {
        panic!("cells");
    };
    assert_eq!(cells.len(), 3, "the swapped snapshot serves the grown manifest");
    let ResponseKind::Eval(fresh) =
        client.request(RequestKind::Eval(eval_spec(&new_key, "ideal", false, false))).unwrap()
    else {
        panic!("the new cell must be servable after the swap");
    };
    assert_eq!(fresh.result.key, new_key);
    // Old cells serve the same bytes from the new snapshot.
    assert_eq!(eval_row_bytes(&mut client, &specs[0]), baselines[0]);
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert!(stats.corpus_reloads >= 1, "stats: {stats:?}");
    assert_eq!(stats.corpus_cells, 3);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_requests_serve_manifest_stat_and_verify() {
    let dir = tmp_dir("corpus-reqs");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let ResponseKind::Cells(cells) = client.request(RequestKind::ListCells).unwrap() else {
        panic!("cells");
    };
    assert_eq!(cells.iter().map(|c| c.key.clone()).collect::<Vec<_>>(), keys);
    let ResponseKind::CellStat(stat) =
        client.request(RequestKind::StatCell { key: keys[0].clone() }).unwrap()
    else {
        panic!("stat");
    };
    assert_eq!(stat.entry.key, keys[0]);
    assert!(stat.file_bytes > 0);
    assert_eq!(stat.generator, "server test");
    let ResponseKind::Verified(verified) =
        client.request(RequestKind::VerifyCell { key: keys[0].clone() }).unwrap()
    else {
        panic!("verify");
    };
    assert_eq!(verified.shots, 3);
    let ResponseKind::Version(version) = client.request(RequestKind::Version).unwrap() else {
        panic!("version");
    };
    assert_eq!(version.protocol, PROTOCOL_VERSION);
    assert_eq!(version.trace_schema, qec_trace::TRACE_SCHEMA_VERSION);
    // Corrupt the second cell's shard on disk: verify-cell must catch it
    // (it re-reads from disk and bypasses the cache).
    let corpus = Corpus::open_existing(&dir).unwrap();
    let shard = corpus.trace_path(&corpus.entries()[1].clone());
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&shard, &bytes).unwrap();
    let ResponseKind::Error(error) =
        client.request(RequestKind::VerifyCell { key: keys[1].clone() }).unwrap()
    else {
        panic!("corrupt shard must fail verification");
    };
    assert_eq!(error.code, ErrorCode::CorruptCorpus);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binding_an_empty_or_missing_corpus_fails() {
    let dir = tmp_dir("empty");
    assert!(Server::bind(&dir, &ServeConfig::default()).is_err(), "missing corpus");
    let corpus = Corpus::open(&dir).unwrap();
    corpus.save().unwrap();
    let err = Server::bind(&dir, &ServeConfig::default()).unwrap_err();
    assert!(err.contains("empty"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// full binary flow: repro serve / repro query
// ---------------------------------------------------------------------------------

fn repro(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    cmd
}

fn run_ok(args: &[&str]) -> Output {
    let output = repro(args).output().expect("spawn repro");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{args:?} stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Starts `repro serve` on an ephemeral port and parses the announced address
/// from its first stdout line.
fn spawn_daemon(corpus: &str) -> (Child, String) {
    let mut child = repro(&["serve", "--corpus", corpus, "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announce line");
    let addr = line
        .strip_prefix("qec-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line}"))
        .split_whitespace()
        .next()
        .expect("address token")
        .to_string();
    (child, addr)
}

#[test]
fn served_evals_are_byte_identical_to_repro_replay_rows() {
    let dir = tmp_dir("bin-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus");
    let corpus_str = corpus.to_str().unwrap();
    run_ok(&[
        "record",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m",
        "--shots",
        "4",
        "--rounds-per-distance",
        "2",
        "--seed",
        "7",
        "--corpus",
        corpus_str,
    ]);

    // Reference rows straight from the CLI, in both replay modes.
    let open_out = dir.join("open.json");
    run_ok(&[
        "replay",
        "--corpus",
        corpus_str,
        "--policy",
        "eraser+m,gladiator+m",
        "--out",
        open_out.to_str().unwrap(),
    ]);
    let closed_out = dir.join("closed.json");
    run_ok(&[
        "replay",
        "--corpus",
        corpus_str,
        "--policy",
        "eraser+m,gladiator+m",
        "--closed-loop",
        "--decode",
        "--out",
        closed_out.to_str().unwrap(),
    ]);
    let open: ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&open_out).unwrap()).unwrap();
    let closed: ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&closed_out).unwrap()).unwrap();

    let (mut child, addr) = spawn_daemon(corpus_str);
    let query_eval = |policy: &str, closed_loop: bool, decode: bool| -> (bool, String) {
        let key = &open.results[0].key;
        let mut args = vec!["query", "--addr", &addr, "eval", "--key", key, "--policy", policy];
        if closed_loop {
            args.push("--closed-loop");
        }
        if decode {
            args.push("--decode");
        }
        let output = run_ok(&args);
        let line = String::from_utf8_lossy(&output.stdout).into_owned();
        let response = qec_serve::parse_response(line.trim()).expect("query stdout parses");
        match response.response {
            ResponseKind::Eval(result) => {
                (result.cached, serde_json::to_string(&result.result).unwrap())
            }
            other => panic!("expected eval response, got {other:?}"),
        }
    };

    // The acceptance gate: served rows byte-identical to CLI replay rows, for
    // both modes, both policies (incl. closed-loop decoded LER).
    for (index, row) in open.results.iter().enumerate() {
        let (_, served) = query_eval(&row.policy, false, false);
        let expected = serde_json::to_string(row).unwrap();
        assert_eq!(served, expected, "open-loop row {index} must match the CLI");
    }
    for (index, row) in closed.results.iter().enumerate() {
        let (cached, served) = query_eval(&row.policy, true, true);
        assert!(cached, "the cell stayed hot across queries");
        let expected = serde_json::to_string(row).unwrap();
        assert_eq!(served, expected, "closed-loop row {index} must match the CLI");
    }

    // Repeated queries skipped the corpus reload: one miss, the rest hits.
    let stats_out = run_ok(&["query", "--addr", &addr, "stats"]);
    let stats_line = String::from_utf8_lossy(&stats_out.stdout).into_owned();
    let response = qec_serve::parse_response(stats_line.trim()).unwrap();
    let ResponseKind::Stats(stats) = response.response else { panic!("stats") };
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.cache_hits >= 3, "stats: {stats:?}");

    // query exits 1 on a server-side error but prints the typed response.
    let bad = repro(&["query", "--addr", &addr, "eval", "--key", "nope", "--policy", "ideal"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("unknown-cell"));

    // Clean shutdown: the daemon process exits 0.
    run_ok(&["query", "--addr", &addr, "shutdown"]);
    let status = child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "daemon must exit cleanly after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_under_load_delivers_in_flight_responses_and_exits_zero() {
    let dir = tmp_dir("shutdown-load");
    let keys = record_corpus(&dir);
    let (mut child, addr) = spawn_daemon(dir.to_str().unwrap());
    // Put a heavy batch in flight: sent, being computed, not yet read back.
    let evals: Vec<EvalSpec> = keys
        .iter()
        .flat_map(|key| {
            ["ideal", "gladiator+m", "eraser+m"].map(|policy| eval_spec(key, policy, true, true))
        })
        .collect();
    let batch = evals.len();
    let request =
        Request { id: Some(99), request: RequestKind::BatchEval { evals, per_item: Some(true) } };
    let mut loaded = std::net::TcpStream::connect(addr.as_str()).unwrap();
    writeln!(loaded, "{}", request_line(&request)).unwrap();
    loaded.flush().unwrap();
    // Give the parked connection worker a beat to pull the line off the
    // socket, then shut the daemon down underneath the computation.
    std::thread::sleep(Duration::from_millis(100));
    let mut controller = Client::connect(&addr).unwrap();
    assert_eq!(controller.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
    // The drain contract: the in-flight batch still gets its complete,
    // parsable response before the process exits — never a torn line.
    let mut reader = BufReader::new(loaded);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let response = qec_serve::parse_response(line.trim())
        .unwrap_or_else(|e| panic!("in-flight response must be complete: {e}: {line}"));
    assert_eq!(response.id, Some(99));
    let ResponseKind::BatchItems(items) = response.response else {
        panic!("expected batch-items, got {line}");
    };
    assert_eq!(items.len(), batch);
    assert!(items.iter().all(|item| item.as_result().is_ok()), "{line}");
    // ...and then EOF, not more data.
    line.clear();
    assert_eq!(reader.read_line(&mut line).unwrap(), 0);
    let status = child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "daemon must exit 0 under load");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_query_reject_bad_usage() {
    for args in [
        &["serve"][..],         // missing --corpus
        &["serve", "--corpus"], // missing value
        &["serve", "--corpus", "dir", "--cache-cells", "0"],
        &["serve", "--corpus", "dir", "--max-connections", "0"],
        &["serve", "--corpus", "dir", "--queue-limit", "0"],
        &["serve", "--corpus", "dir", "--frobnicate"],
        &["query"], // missing --addr
        &["query", "--addr", "127.0.0.1:1", "frobnicate"],
        &["query", "--addr", "127.0.0.1:1", "eval"], // missing key/policy
        &["query", "--addr", "127.0.0.1:1", "eval", "--key", "k"],
        &["query", "--addr", "127.0.0.1:1", "eval", "--key", "k", "--policy", "bogus"],
        &["query", "--addr", "127.0.0.1:1", "batch-eval"],
        &["query", "--addr", "127.0.0.1:1", "ping", "extra"],
        // Flags the action cannot consume are usage errors, never silently
        // ignored (strict-CLI contract).
        &["query", "--addr", "127.0.0.1:1", "ping", "--key", "k"],
        &["query", "--addr", "127.0.0.1:1", "shutdown", "--decode"],
        &["query", "--addr", "127.0.0.1:1", "stats", "--policy", "ideal"],
        &["query", "--addr", "127.0.0.1:1", "stat", "--key", "k", "--closed-loop"],
    ] {
        let output = repro(args).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("usage: repro"),
            "{args:?} must print usage"
        );
    }
    // A fine command line against a dead server is a runtime failure (1).
    let output = repro(&["query", "--addr", "127.0.0.1:1", "ping"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    // Serving a missing corpus is a runtime failure too.
    let output = repro(&["serve", "--corpus", "/nonexistent-corpus-dir"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
}
