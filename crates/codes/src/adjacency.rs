//! Per-data-qubit adjacency: which checks touch each data qubit and when.
//!
//! Leakage speculation (both ERASER's heuristic and GLADIATOR's graph model) operates
//! on the *pattern* of syndrome flips observed on the parity qubits adjacent to one
//! data qubit. The [`DataAdjacency`] structure fixes, once per code, the identity and
//! ordering of those parity qubits: neighbours are listed in the time order in which
//! their CNOT with the data qubit executes (ties broken by check id), which is the
//! "A1..A4" ordering used throughout the paper's examples.

use serde::{Deserialize, Serialize};

use crate::code::{CheckBasis, CheckId, Code, DataQubitId};

/// One adjacency record: data qubit `q` interacts with check `check` at CNOT time
/// step `time` of the extraction round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdjEntry {
    /// The adjacent check (equivalently its parity qubit).
    pub check: CheckId,
    /// Zero-based CNOT time step within the round at which the interaction happens.
    pub time: usize,
    /// Basis of the adjacent check.
    pub basis: CheckBasis,
}

/// For every data qubit of a code, the time-ordered list of adjacent checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataAdjacency {
    per_qubit: Vec<Vec<AdjEntry>>,
}

impl DataAdjacency {
    /// Builds the adjacency table for `code`.
    #[must_use]
    pub fn new(code: &Code) -> Self {
        let mut per_qubit: Vec<Vec<AdjEntry>> = vec![Vec::new(); code.num_data()];
        for check in code.checks() {
            for (time, &q) in check.support.iter().enumerate() {
                per_qubit[q].push(AdjEntry { check: check.id, time, basis: check.basis });
            }
        }
        for entries in &mut per_qubit {
            entries.sort_by_key(|e| (e.time, e.check));
        }
        DataAdjacency { per_qubit }
    }

    /// Number of data qubits covered.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.per_qubit.len()
    }

    /// The adjacent checks of data qubit `q`, in pattern-bit order.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: DataQubitId) -> &[AdjEntry] {
        &self.per_qubit[q]
    }

    /// The adjacent checks of `q` restricted to one basis, preserving pattern order.
    #[must_use]
    pub fn neighbors_of_basis(&self, q: DataQubitId, basis: CheckBasis) -> Vec<AdjEntry> {
        self.per_qubit[q].iter().copied().filter(|e| e.basis == basis).collect()
    }

    /// Degree (number of adjacent checks) of every data qubit.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.per_qubit.iter().map(Vec::len).collect()
    }

    /// Distinct degrees occurring in the code, ascending. These are the pattern widths
    /// the speculation hardware has to support (2-, 3- and 4-bit for the surface code;
    /// 1-, 2- and 3-bit per basis for the color code).
    #[must_use]
    pub fn degree_classes(&self) -> Vec<usize> {
        let mut degs: Vec<usize> = self.degrees();
        degs.sort_unstable();
        degs.dedup();
        degs
    }

    /// The data qubits having exactly `degree` adjacent checks.
    #[must_use]
    pub fn qubits_with_degree(&self, degree: usize) -> Vec<DataQubitId> {
        (0..self.per_qubit.len()).filter(|&q| self.per_qubit[q].len() == degree).collect()
    }

    /// Pattern order of the adjacent check ids of `q` (convenience wrapper used when
    /// assembling syndrome patterns).
    #[must_use]
    pub fn pattern_checks(&self, q: DataQubitId) -> Vec<CheckId> {
        self.per_qubit[q].iter().map(|e| e.check).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Code;

    #[test]
    fn surface_degrees_are_bounded_by_four() {
        let code = Code::rotated_surface(5);
        let adj = code.data_adjacency();
        assert_eq!(adj.num_data(), 25);
        assert_eq!(adj.degree_classes(), vec![2, 3, 4]);
        // Bulk should dominate at weight 4.
        let bulk = adj.qubits_with_degree(4).len();
        assert!(bulk >= 9, "expected at least (d-2)^2 bulk qubits, got {bulk}");
    }

    #[test]
    fn neighbors_are_sorted_by_time() {
        let code = Code::rotated_surface(7);
        let adj = code.data_adjacency();
        for q in 0..code.num_data() {
            let times: Vec<usize> = adj.neighbors(q).iter().map(|e| e.time).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted, "qubit {q} neighbours not time-ordered");
        }
    }

    #[test]
    fn neighbor_entries_agree_with_check_supports() {
        let code = Code::color_666(5);
        let adj = code.data_adjacency();
        for q in 0..code.num_data() {
            for entry in adj.neighbors(q) {
                let check = code.check(entry.check);
                assert_eq!(check.time_of(q), Some(entry.time));
                assert_eq!(check.basis, entry.basis);
            }
        }
    }

    #[test]
    fn basis_restricted_neighbors_partition_the_full_list() {
        let code = Code::rotated_surface(5);
        let adj = code.data_adjacency();
        for q in 0..code.num_data() {
            let x = adj.neighbors_of_basis(q, CheckBasis::X).len();
            let z = adj.neighbors_of_basis(q, CheckBasis::Z).len();
            assert_eq!(x + z, adj.neighbors(q).len());
        }
    }

    #[test]
    fn color_code_has_one_two_and_three_bit_classes_per_basis() {
        let code = Code::color_666(5);
        let adj = code.data_adjacency();
        let mut per_basis: Vec<usize> =
            (0..code.num_data()).map(|q| adj.neighbors_of_basis(q, CheckBasis::X).len()).collect();
        per_basis.sort_unstable();
        per_basis.dedup();
        assert_eq!(per_basis, vec![1, 2, 3]);
    }

    #[test]
    fn qubits_with_degree_covers_all_qubits() {
        let code = Code::rotated_surface(3);
        let adj = code.data_adjacency();
        let total: usize =
            adj.degree_classes().iter().map(|&deg| adj.qubits_with_degree(deg).len()).sum();
        assert_eq!(total, code.num_data());
    }
}
