//! Core types describing a CSS stabilizer code.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::adjacency::DataAdjacency;
use crate::graph::InteractionGraph;

/// Identifier of a data qubit within a [`Code`] (dense index `0..num_data`).
pub type DataQubitId = usize;

/// Identifier of a stabilizer check / parity (ancilla) qubit within a [`Code`]
/// (dense index `0..num_checks`).
pub type CheckId = usize;

/// The Pauli basis of a stabilizer check in a CSS code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CheckBasis {
    /// X-type check: detects Z (phase-flip) errors on its support.
    X,
    /// Z-type check: detects X (bit-flip) errors on its support.
    Z,
}

impl CheckBasis {
    /// The opposite basis.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            CheckBasis::X => CheckBasis::Z,
            CheckBasis::Z => CheckBasis::X,
        }
    }
}

impl fmt::Display for CheckBasis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckBasis::X => write!(f, "X"),
            CheckBasis::Z => write!(f, "Z"),
        }
    }
}

/// One stabilizer check of a CSS code.
///
/// The `support` lists the data qubits the check acts on **in CNOT-schedule order**:
/// the `i`-th entry is entangled with the ancilla at time step `i` of the
/// syndrome-extraction circuit. This ordering is what determines which syndrome bits a
/// mid-round fault (or a leakage event) can still influence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Dense index of the check within its code.
    pub id: CheckId,
    /// X or Z type.
    pub basis: CheckBasis,
    /// Data qubits acted on, in CNOT time order.
    pub support: Vec<DataQubitId>,
    /// Optional 2-D coordinate used for plotting / geometric tie-breaking.
    pub position: (f64, f64),
}

impl Check {
    /// Number of data qubits in the support.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.support.len()
    }

    /// Time step (0-based) at which this check's ancilla interacts with `qubit`,
    /// or `None` if the qubit is not in the support.
    #[must_use]
    pub fn time_of(&self, qubit: DataQubitId) -> Option<usize> {
        self.support.iter().position(|&q| q == qubit)
    }
}

/// The code family a [`Code`] instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeFamily {
    /// Rotated surface code (2d²−1 qubits for distance d).
    RotatedSurface,
    /// Triangular 6.6.6 color code ((3d²+1)/4 data qubits).
    Color666,
    /// Hypergraph-product code of two classical seeds.
    Hgp,
    /// Balanced-product cyclic (two-block circulant) code.
    Bpc,
}

impl fmt::Display for CodeFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeFamily::RotatedSurface => write!(f, "surface"),
            CodeFamily::Color666 => write!(f, "color"),
            CodeFamily::Hgp => write!(f, "hgp"),
            CodeFamily::Bpc => write!(f, "bpc"),
        }
    }
}

/// A CSS stabilizer code with an explicit syndrome-extraction schedule.
///
/// Instances are produced by the family constructors ([`Code::rotated_surface`],
/// [`Code::color_666`], [`Code::hgp`], [`Code::bpc`]); the struct itself is
/// family-agnostic and is what the simulator, speculation policies and decoder consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Code {
    pub(crate) family: CodeFamily,
    pub(crate) name: String,
    pub(crate) distance: usize,
    pub(crate) num_data: usize,
    pub(crate) checks: Vec<Check>,
    /// Supports of logical X operators (possibly empty for codes where we do not
    /// track logicals, e.g. the qLDPC families used only for speculation metrics).
    pub(crate) logical_x: Vec<Vec<DataQubitId>>,
    /// Supports of logical Z operators.
    pub(crate) logical_z: Vec<Vec<DataQubitId>>,
    /// Optional 2-D coordinates of data qubits (plotting / staggering heuristics).
    pub(crate) data_positions: Vec<(f64, f64)>,
}

impl Code {
    /// Family of the code.
    #[must_use]
    pub fn family(&self) -> CodeFamily {
        self.family
    }

    /// Human-readable name, e.g. `"surface-d5"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Code distance (for HGP/BPC this is the *design* distance of the construction).
    #[must_use]
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// Number of data qubits.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.num_data
    }

    /// Number of stabilizer checks (equivalently parity/ancilla qubits).
    #[must_use]
    pub fn num_checks(&self) -> usize {
        self.checks.len()
    }

    /// Total number of physical qubits (data + ancilla).
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_data + self.num_checks()
    }

    /// All stabilizer checks.
    #[must_use]
    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    /// The check with the given id.
    ///
    /// # Panics
    /// Panics if `id >= self.num_checks()`.
    #[must_use]
    pub fn check(&self, id: CheckId) -> &Check {
        &self.checks[id]
    }

    /// Iterator over the checks of one basis.
    pub fn checks_of(&self, basis: CheckBasis) -> impl Iterator<Item = &Check> {
        self.checks.iter().filter(move |c| c.basis == basis)
    }

    /// Supports of the logical X operators (may be empty).
    #[must_use]
    pub fn logical_x(&self) -> &[Vec<DataQubitId>] {
        &self.logical_x
    }

    /// Supports of the logical Z operators (may be empty).
    #[must_use]
    pub fn logical_z(&self) -> &[Vec<DataQubitId>] {
        &self.logical_z
    }

    /// 2-D coordinates of the data qubits (empty for the algebraic qLDPC families).
    #[must_use]
    pub fn data_positions(&self) -> &[(f64, f64)] {
        &self.data_positions
    }

    /// Number of logical qubits `k = n − rank(Hx) − rank(Hz)`.
    ///
    /// Computed from the stabilizer matrices; for all codes shipped with this crate the
    /// result is checked in tests (1 for surface and color codes).
    #[must_use]
    pub fn num_logical(&self) -> usize {
        let hx = self.check_matrix(CheckBasis::X);
        let hz = self.check_matrix(CheckBasis::Z);
        self.num_data - hx.rank() - hz.rank()
    }

    /// Parity-check matrix of one basis as a [`crate::BinaryMatrix`]
    /// (rows = checks of that basis, columns = data qubits).
    #[must_use]
    pub fn check_matrix(&self, basis: CheckBasis) -> crate::BinaryMatrix {
        let rows: Vec<Vec<usize>> = self.checks_of(basis).map(|c| c.support.clone()).collect();
        crate::BinaryMatrix::from_rows(self.num_data, &rows)
    }

    /// Per-data-qubit adjacency (which checks touch it, in time order).
    #[must_use]
    pub fn data_adjacency(&self) -> DataAdjacency {
        DataAdjacency::new(self)
    }

    /// Data-qubit interaction graph (qubits adjacent when they share a check),
    /// used for the staggered open-loop LRC schedule.
    #[must_use]
    pub fn interaction_graph(&self) -> InteractionGraph {
        InteractionGraph::new(self)
    }

    /// Maximum number of checks any single data qubit touches.
    #[must_use]
    pub fn max_data_degree(&self) -> usize {
        self.data_adjacency().degrees().iter().copied().max().unwrap_or(0)
    }

    /// `true` when every pair of X and Z checks overlaps on an even number of data
    /// qubits — the CSS commutation condition. Exposed for tests and for validating
    /// user-supplied HGP seeds.
    #[must_use]
    pub fn stabilizers_commute(&self) -> bool {
        let xs: Vec<&Check> = self.checks_of(CheckBasis::X).collect();
        let zs: Vec<&Check> = self.checks_of(CheckBasis::Z).collect();
        for x in &xs {
            for z in &zs {
                let overlap = x.support.iter().filter(|q| z.support.contains(q)).count();
                if overlap % 2 != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Validates structural invariants (supports in range, no duplicate qubits inside a
    /// support, commuting stabilizers). Returns a description of the first violation.
    ///
    /// # Errors
    /// Returns `Err` with a human-readable message when an invariant is violated.
    pub fn validate(&self) -> Result<(), String> {
        for check in &self.checks {
            if check.support.is_empty() {
                return Err(format!("check {} has empty support", check.id));
            }
            let mut seen = vec![false; self.num_data];
            for &q in &check.support {
                if q >= self.num_data {
                    return Err(format!(
                        "check {} references data qubit {} out of range {}",
                        check.id, q, self.num_data
                    ));
                }
                if seen[q] {
                    return Err(format!("check {} lists data qubit {} twice", check.id, q));
                }
                seen[q] = true;
            }
        }
        for (i, check) in self.checks.iter().enumerate() {
            if check.id != i {
                return Err(format!("check at position {i} has id {}", check.id));
            }
        }
        for logical in self.logical_x.iter().chain(self.logical_z.iter()) {
            for &q in logical {
                if q >= self.num_data {
                    return Err(format!("logical operator references qubit {q} out of range"));
                }
            }
        }
        if !self.stabilizers_commute() {
            return Err("X and Z stabilizers do not commute".to_string());
        }
        Ok(())
    }

    /// Construct a code directly from its parts. Intended for tests and for building
    /// custom codes; the family constructors should be preferred.
    ///
    /// # Errors
    /// Returns `Err` when [`Code::validate`] fails on the assembled code.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        family: CodeFamily,
        name: impl Into<String>,
        distance: usize,
        num_data: usize,
        checks: Vec<Check>,
        logical_x: Vec<Vec<DataQubitId>>,
        logical_z: Vec<Vec<DataQubitId>>,
        data_positions: Vec<(f64, f64)>,
    ) -> Result<Self, String> {
        let code = Code {
            family,
            name: name.into(),
            distance,
            num_data,
            checks,
            logical_x,
            logical_z,
            data_positions,
        };
        code.validate()?;
        Ok(code)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [[{}, {}, {}]] ({} checks)",
            self.name,
            self.num_data,
            self.num_logical(),
            self.distance,
            self.num_checks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_code() -> Code {
        // Four-qubit [[4,2,2]] code: X1X2X3X4 and Z1Z2Z3Z4.
        Code::from_parts(
            CodeFamily::RotatedSurface,
            "toy-422",
            2,
            4,
            vec![
                Check {
                    id: 0,
                    basis: CheckBasis::X,
                    support: vec![0, 1, 2, 3],
                    position: (0.0, 0.0),
                },
                Check {
                    id: 1,
                    basis: CheckBasis::Z,
                    support: vec![0, 1, 2, 3],
                    position: (1.0, 0.0),
                },
            ],
            vec![vec![0, 1]],
            vec![vec![0, 2]],
            vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)],
        )
        .expect("toy code is valid")
    }

    #[test]
    fn toy_code_counts() {
        let code = toy_code();
        assert_eq!(code.num_data(), 4);
        assert_eq!(code.num_checks(), 2);
        assert_eq!(code.num_qubits(), 6);
        assert_eq!(code.num_logical(), 2);
        assert_eq!(code.check(0).weight(), 4);
    }

    #[test]
    fn check_time_of_reports_schedule_position() {
        let code = toy_code();
        assert_eq!(code.check(0).time_of(2), Some(2));
        assert_eq!(code.check(0).time_of(9), None);
    }

    #[test]
    fn basis_flip_is_involutive() {
        assert_eq!(CheckBasis::X.flipped(), CheckBasis::Z);
        assert_eq!(CheckBasis::Z.flipped().flipped(), CheckBasis::Z);
    }

    #[test]
    fn validate_rejects_out_of_range_support() {
        let result = Code::from_parts(
            CodeFamily::Hgp,
            "bad",
            1,
            2,
            vec![Check { id: 0, basis: CheckBasis::X, support: vec![0, 5], position: (0.0, 0.0) }],
            vec![],
            vec![],
            vec![],
        );
        assert!(result.is_err());
    }

    #[test]
    fn validate_rejects_duplicate_support_entries() {
        let result = Code::from_parts(
            CodeFamily::Hgp,
            "bad",
            1,
            3,
            vec![Check { id: 0, basis: CheckBasis::Z, support: vec![1, 1], position: (0.0, 0.0) }],
            vec![],
            vec![],
            vec![],
        );
        assert!(result.is_err());
    }

    #[test]
    fn validate_rejects_anticommuting_checks() {
        let result = Code::from_parts(
            CodeFamily::Hgp,
            "bad",
            1,
            3,
            vec![
                Check { id: 0, basis: CheckBasis::X, support: vec![0, 1], position: (0.0, 0.0) },
                Check { id: 1, basis: CheckBasis::Z, support: vec![1, 2], position: (0.0, 0.0) },
            ],
            vec![],
            vec![],
            vec![],
        );
        assert!(result.is_err());
    }

    #[test]
    fn display_mentions_name_and_parameters() {
        let code = toy_code();
        let rendered = format!("{code}");
        assert!(rendered.contains("toy-422"));
        assert!(rendered.contains("[[4, 2, 2]]"));
    }
}
