//! Triangular 6.6.6 color code construction.
//!
//! The distance-`d` triangular color code on the hexagonal (6.6.6) lattice uses
//! `(3d²+1)/4` data qubits (37 for `d = 7`, as quoted in Section 5.1 of the paper) and
//! `(3d²+1)/4 − 1` faces, each of which hosts **both** an X-type and a Z-type check on
//! the same support (the code is self-dual CSS).
//!
//! We use the standard row-triangle coordinate system: sites `(r, c)` with
//! `0 ≤ c ≤ r ≤ 3(d−1)/2`. A site is a *face centre* when `(r + c) ≡ 2 (mod 3)` and a
//! data qubit otherwise. The face at `(r, c)` acts on the in-bounds data qubits among
//! its six lattice neighbours `(r±1, c±{0,1})` and `(r, c±1)`; interior faces have
//! weight 6 and boundary/corner faces weight 4, which is exactly the sparse-syndrome
//! regime (1–3 adjacent checks per data qubit per basis) the paper highlights.

use crate::code::{Check, CheckBasis, Code, CodeFamily, DataQubitId};
use std::collections::BTreeMap;

/// Site classification on the triangular lattice.
fn is_face(r: usize, c: usize) -> bool {
    (r + c) % 3 == 2
}

/// The six neighbour coordinates of a site on the triangular-grid embedding of the
/// hexagonal lattice.
fn neighbors(r: usize, c: usize) -> [(isize, isize); 6] {
    let (r, c) = (r as isize, c as isize);
    [(r - 1, c - 1), (r - 1, c), (r, c - 1), (r, c + 1), (r + 1, c), (r + 1, c + 1)]
}

impl Code {
    /// Builds the triangular 6.6.6 color code of odd distance `d ≥ 3`.
    ///
    /// # Panics
    /// Panics if `d` is even or smaller than 3.
    #[must_use]
    pub fn color_666(d: usize) -> Code {
        assert!(d >= 3 && d % 2 == 1, "triangular color code requires odd d >= 3, got {d}");
        let max_row = 3 * (d - 1) / 2;

        // Assign dense indices to data-qubit sites.
        let mut data_ids: BTreeMap<(usize, usize), DataQubitId> = BTreeMap::new();
        let mut data_positions = Vec::new();
        for r in 0..=max_row {
            for c in 0..=r {
                if !is_face(r, c) {
                    let id = data_ids.len();
                    data_ids.insert((r, c), id);
                    // x offset by half a row to draw the triangle
                    data_positions.push((c as f64 - r as f64 / 2.0, r as f64));
                }
            }
        }
        let num_data = data_ids.len();

        // Build faces; each face contributes an X check and a Z check on the same support.
        let mut face_supports: Vec<(Vec<DataQubitId>, (f64, f64))> = Vec::new();
        for r in 0..=max_row {
            for c in 0..=r {
                if !is_face(r, c) {
                    continue;
                }
                let mut support: Vec<DataQubitId> = neighbors(r, c)
                    .iter()
                    .filter_map(|&(nr, nc)| {
                        if nr < 0 || nc < 0 || nc > nr {
                            return None;
                        }
                        data_ids.get(&(nr as usize, nc as usize)).copied()
                    })
                    .collect();
                support.sort_unstable();
                debug_assert!(support.len() >= 4, "face ({r},{c}) has weight {}", support.len());
                face_supports.push((support, (c as f64 - r as f64 / 2.0, r as f64)));
            }
        }

        let mut checks = Vec::with_capacity(face_supports.len() * 2);
        for (support, position) in &face_supports {
            checks.push(Check {
                id: checks.len(),
                basis: CheckBasis::X,
                support: support.clone(),
                position: *position,
            });
        }
        for (support, position) in &face_supports {
            checks.push(Check {
                id: checks.len(),
                basis: CheckBasis::Z,
                support: support.clone(),
                position: *position,
            });
        }

        // Logical X and Z both run along the bottom edge of the triangle (the code is
        // self-dual); the bottom edge holds exactly d data qubits.
        let bottom: Vec<DataQubitId> =
            (0..=max_row).filter_map(|c| data_ids.get(&(max_row, c)).copied()).collect();
        debug_assert_eq!(bottom.len(), d, "bottom edge of color code must hold d qubits");

        Code::from_parts(
            CodeFamily::Color666,
            format!("color-d{d}"),
            d,
            num_data,
            checks,
            vec![bottom.clone()],
            vec![bottom],
            data_positions,
        )
        .expect("triangular color code construction is internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CheckBasis;
    use proptest::prelude::*;

    #[test]
    fn qubit_counts_match_formula() {
        for d in [3usize, 5, 7, 9, 11, 19] {
            let code = Code::color_666(d);
            let expected = (3 * d * d + 1) / 4;
            assert_eq!(code.num_data(), expected, "data qubits at d={d}");
            // one face per logical-qubit-complement: (n-1)/2 faces, two checks each
            assert_eq!(code.num_checks(), expected - 1, "checks at d={d}");
        }
    }

    #[test]
    fn distance_7_uses_37_qubits_as_quoted_in_paper() {
        assert_eq!(Code::color_666(7).num_data(), 37);
    }

    #[test]
    fn faces_have_weight_four_or_six() {
        let code = Code::color_666(9);
        for check in code.checks() {
            assert!(matches!(check.weight(), 4 | 6), "face weight {}", check.weight());
        }
    }

    #[test]
    fn steane_code_is_distance_three_instance() {
        let code = Code::color_666(3);
        assert_eq!(code.num_data(), 7);
        assert_eq!(code.num_checks(), 6);
        for check in code.checks() {
            assert_eq!(check.weight(), 4);
        }
        assert_eq!(code.num_logical(), 1);
    }

    #[test]
    fn encodes_one_logical_qubit() {
        for d in [3usize, 5, 7, 9] {
            assert_eq!(Code::color_666(d).num_logical(), 1, "d={d}");
        }
    }

    #[test]
    fn logical_operator_has_weight_d_and_commutes_with_stabilizers() {
        for d in [3usize, 5, 7] {
            let code = Code::color_666(d);
            let lx = &code.logical_x()[0];
            assert_eq!(lx.len(), d);
            for check in code.checks_of(CheckBasis::Z) {
                let overlap = check.support.iter().filter(|q| lx.contains(q)).count();
                assert_eq!(overlap % 2, 0, "logical X anticommutes with a Z face, d={d}");
            }
            let lz = &code.logical_z()[0];
            let cross = lx.iter().filter(|q| lz.contains(q)).count();
            assert_eq!(cross % 2, 1, "self-dual logicals must anticommute");
        }
    }

    #[test]
    fn data_degree_per_basis_is_at_most_three() {
        let code = Code::color_666(7);
        let adj = code.data_adjacency();
        for q in 0..code.num_data() {
            let x_deg = adj
                .neighbors(q)
                .iter()
                .filter(|e| code.check(e.check).basis == CheckBasis::X)
                .count();
            assert!((1..=3).contains(&x_deg), "qubit {q} X degree {x_deg}");
        }
    }

    #[test]
    fn corner_qubits_touch_a_single_face() {
        let code = Code::color_666(5);
        let adj = code.data_adjacency();
        let per_basis_degrees: Vec<usize> = (0..code.num_data())
            .map(|q| {
                adj.neighbors(q)
                    .iter()
                    .filter(|e| code.check(e.check).basis == CheckBasis::X)
                    .count()
            })
            .collect();
        // The paper (Fig. 8a) notes corner qubits yield 1-bit patterns and edge qubits
        // 2-bit patterns; make sure those degree classes actually occur.
        assert!(per_basis_degrees.contains(&1), "no corner (degree-1) qubits found");
        assert!(per_basis_degrees.contains(&2), "no edge (degree-2) qubits found");
        assert!(per_basis_degrees.contains(&3), "no bulk (degree-3) qubits found");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn color_code_is_valid_css_for_random_distance(k in 1usize..6) {
            let d = 2 * k + 1;
            let code = Code::color_666(d);
            prop_assert!(code.stabilizers_commute());
            prop_assert_eq!(code.num_logical(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "odd d")]
    fn even_distance_is_rejected() {
        let _ = Code::color_666(6);
    }
}
