//! Qubit interaction graph and graph coloring for the staggered open-loop LRC policy.
//!
//! Section 3.5 of the paper proposes *Staggered Always-LRC*: LRCs are scheduled as an
//! n-coloring problem on the qubit interaction graph so that no two neighbouring data
//! qubits are reset in the same round, and the colour groups are cycled round-robin.
//! This module provides the interaction graph (data qubits are adjacent when they share
//! a stabilizer check, which also covers the "diagonal" neighbours of the surface-code
//! layout) and a deterministic greedy colouring.

use serde::{Deserialize, Serialize};

use crate::code::{Code, DataQubitId};

/// Undirected interaction graph over the data qubits of a code.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionGraph {
    adjacency: Vec<Vec<DataQubitId>>,
}

impl InteractionGraph {
    /// Builds the graph for `code`: two data qubits are adjacent when at least one
    /// check contains both.
    #[must_use]
    pub fn new(code: &Code) -> Self {
        let n = code.num_data();
        let mut sets: Vec<Vec<DataQubitId>> = vec![Vec::new(); n];
        for check in code.checks() {
            for (i, &a) in check.support.iter().enumerate() {
                for &b in &check.support[i + 1..] {
                    if !sets[a].contains(&b) {
                        sets[a].push(b);
                        sets[b].push(a);
                    }
                }
            }
        }
        for list in &mut sets {
            list.sort_unstable();
        }
        InteractionGraph { adjacency: sets }
    }

    /// Number of vertices (data qubits).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Neighbours of a data qubit, ascending.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: DataQubitId) -> &[DataQubitId] {
        &self.adjacency[q]
    }

    /// Maximum vertex degree.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of undirected edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Deterministic greedy colouring (Welsh–Powell order: highest degree first).
    ///
    /// The result is a proper colouring: adjacent qubits never share a colour. The
    /// number of colours is at most `max_degree + 1`.
    #[must_use]
    pub fn greedy_coloring(&self) -> Coloring {
        let n = self.adjacency.len();
        let mut order: Vec<DataQubitId> = (0..n).collect();
        order.sort_by_key(|&q| std::cmp::Reverse((self.adjacency[q].len(), std::cmp::Reverse(q))));
        let mut colors = vec![usize::MAX; n];
        let mut num_colors = 0usize;
        for &q in &order {
            let mut used = vec![false; num_colors + 1];
            for &nb in &self.adjacency[q] {
                if colors[nb] != usize::MAX && colors[nb] <= num_colors {
                    used[colors[nb]] = true;
                }
            }
            let color = (0..).find(|&c| c >= used.len() || !used[c]).expect("unbounded search");
            colors[q] = color;
            num_colors = num_colors.max(color + 1);
        }
        Coloring { colors, num_colors }
    }
}

/// A proper colouring of the data qubits; colour groups are the round-robin LRC groups
/// of the staggered policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<usize>,
    num_colors: usize,
}

impl Coloring {
    /// Colour of data qubit `q`.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn color(&self, q: DataQubitId) -> usize {
        self.colors[q]
    }

    /// Number of colours used.
    #[must_use]
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// All data qubits with the given colour.
    #[must_use]
    pub fn group(&self, color: usize) -> Vec<DataQubitId> {
        (0..self.colors.len()).filter(|&q| self.colors[q] == color).collect()
    }

    /// The colour group scheduled in QEC round `round` under round-robin cycling.
    #[must_use]
    pub fn group_for_round(&self, round: usize) -> Vec<DataQubitId> {
        if self.num_colors == 0 {
            return Vec::new();
        }
        self.group(round % self.num_colors)
    }

    /// Colours of every qubit (indexed by data qubit id).
    #[must_use]
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }
}

#[cfg(test)]
mod tests {
    use crate::code::Code;
    use proptest::prelude::*;

    #[test]
    fn surface_interaction_graph_has_expected_size() {
        let code = Code::rotated_surface(5);
        let graph = code.interaction_graph();
        assert_eq!(graph.num_vertices(), 25);
        assert!(graph.num_edges() > 0);
        // Degree is bounded by the neighbourhood of the four adjacent plaquettes.
        assert!(graph.max_degree() <= 12);
    }

    #[test]
    fn coloring_is_proper_for_surface_code() {
        let code = Code::rotated_surface(7);
        let graph = code.interaction_graph();
        let coloring = graph.greedy_coloring();
        for q in 0..graph.num_vertices() {
            for &nb in graph.neighbors(q) {
                assert_ne!(coloring.color(q), coloring.color(nb), "{q} and {nb} share colour");
            }
        }
        assert!(coloring.num_colors() <= graph.max_degree() + 1);
    }

    #[test]
    fn coloring_is_proper_for_color_code() {
        let code = Code::color_666(7);
        let coloring = code.interaction_graph().greedy_coloring();
        let graph = code.interaction_graph();
        for q in 0..graph.num_vertices() {
            for &nb in graph.neighbors(q) {
                assert_ne!(coloring.color(q), coloring.color(nb));
            }
        }
    }

    #[test]
    fn groups_partition_the_qubits() {
        let code = Code::rotated_surface(5);
        let coloring = code.interaction_graph().greedy_coloring();
        let total: usize = (0..coloring.num_colors()).map(|c| coloring.group(c).len()).sum();
        assert_eq!(total, code.num_data());
    }

    #[test]
    fn round_robin_cycles_through_all_groups() {
        let code = Code::rotated_surface(3);
        let coloring = code.interaction_graph().greedy_coloring();
        let k = coloring.num_colors();
        assert_eq!(coloring.group_for_round(0), coloring.group_for_round(k));
        let mut covered: Vec<usize> = (0..k).flat_map(|r| coloring.group_for_round(r)).collect();
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), code.num_data());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn coloring_proper_for_random_surface_distance(k in 1usize..5) {
            let d = 2 * k + 1;
            let code = Code::rotated_surface(d);
            let graph = code.interaction_graph();
            let coloring = graph.greedy_coloring();
            for q in 0..graph.num_vertices() {
                for &nb in graph.neighbors(q) {
                    prop_assert_ne!(coloring.color(q), coloring.color(nb));
                }
            }
        }
    }
}
