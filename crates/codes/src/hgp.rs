//! Hypergraph-product (HGP) codes.
//!
//! The hypergraph product of two classical parity-check matrices `H1 (r1×n1)` and
//! `H2 (r2×n2)` is the CSS code with
//!
//! ```text
//! Hx = [ H1 ⊗ I_n2 | I_r1 ⊗ H2ᵀ ]        (r1·n2 checks)
//! Hz = [ I_n1 ⊗ H2 | H1ᵀ ⊗ I_r2 ]        (n1·r2 checks)
//! ```
//!
//! over `n1·n2 + r1·r2` data qubits. `Hx·Hzᵀ = H1⊗H2ᵀ + H1⊗H2ᵀ = 0 (mod 2)`, so the
//! stabilizers commute by construction. The paper evaluates leakage speculation on HGP
//! codes because their irregular, sparse syndrome connectivity breaks ERASER's
//! surface-code heuristic (Section 3.3, Table 5).
//!
//! As a deterministic seed we use a `(3,4)`-regular quasi-cyclic LDPC code built from a
//! `3×4` protograph of `ℓ×ℓ` circulant permutation matrices with shifts `i·j mod ℓ`;
//! `ℓ = 5` gives a `[[625, 53]]` HGP code with the same degree profile as the HGP
//! codes used in the paper's qLDPC evaluation.

use crate::code::{Check, CheckBasis, Code, CodeFamily};
use crate::linalg::BinaryMatrix;

/// A circulant permutation matrix of size `l` shifted by `s`: entry `(r, (r+s) mod l)`.
fn circulant_permutation(l: usize, s: usize) -> BinaryMatrix {
    let mut m = BinaryMatrix::zeros(l, l);
    for r in 0..l {
        m.set(r, (r + s) % l, true);
    }
    m
}

/// Builds the deterministic `(3,4)`-regular quasi-cyclic LDPC parity-check matrix with
/// circulant size `l`: a `3×4` array of circulant permutations with shift `i·j mod l`.
#[must_use]
pub fn quasi_cyclic_ldpc(l: usize) -> BinaryMatrix {
    assert!(l >= 2, "circulant size must be at least 2");
    let mut h = BinaryMatrix::zeros(3 * l, 4 * l);
    for i in 0..3 {
        for j in 0..4 {
            let block = circulant_permutation(l, (i * j) % l);
            for r in 0..l {
                for c in 0..l {
                    if block.get(r, c) {
                        h.set(i * l + r, j * l + c, true);
                    }
                }
            }
        }
    }
    h
}

/// Assemble a CSS code from explicit X and Z parity-check matrices.
///
/// Each row becomes one check whose support (in ascending column order) doubles as the
/// CNOT schedule.
fn code_from_css_matrices(
    family: CodeFamily,
    name: String,
    distance: usize,
    hx: &BinaryMatrix,
    hz: &BinaryMatrix,
) -> Code {
    assert_eq!(hx.cols(), hz.cols(), "Hx and Hz must act on the same qubits");
    let num_data = hx.cols();
    let mut checks = Vec::with_capacity(hx.rows() + hz.rows());
    for r in 0..hx.rows() {
        let support = hx.row_support(r);
        if support.is_empty() {
            continue;
        }
        checks.push(Check {
            id: checks.len(),
            basis: CheckBasis::X,
            support,
            position: (r as f64, 0.0),
        });
    }
    for r in 0..hz.rows() {
        let support = hz.row_support(r);
        if support.is_empty() {
            continue;
        }
        checks.push(Check {
            id: checks.len(),
            basis: CheckBasis::Z,
            support,
            position: (r as f64, 1.0),
        });
    }
    Code::from_parts(family, name, distance, num_data, checks, vec![], vec![], vec![])
        .expect("CSS matrices with Hx·Hzᵀ = 0 yield a valid code")
}

impl Code {
    /// Builds the hypergraph product of two explicit classical parity-check matrices.
    ///
    /// The `design_distance` is recorded as the code's nominal distance (HGP distance
    /// equals the minimum distance of the seed codes and their transposes; we do not
    /// recompute it).
    ///
    /// # Panics
    /// Panics if the resulting X and Z stabilizers do not commute, which can only
    /// happen if the inputs are malformed (e.g. inconsistent dimensions).
    #[must_use]
    pub fn hgp_from_seeds(
        h1: &BinaryMatrix,
        h2: &BinaryMatrix,
        design_distance: usize,
        name: impl Into<String>,
    ) -> Code {
        let (r1, n1) = (h1.rows(), h1.cols());
        let (r2, n2) = (h2.rows(), h2.cols());
        let i_n1 = BinaryMatrix::identity(n1);
        let i_n2 = BinaryMatrix::identity(n2);
        let i_r1 = BinaryMatrix::identity(r1);
        let i_r2 = BinaryMatrix::identity(r2);

        let hx = h1.kron(&i_n2).hstack(&i_r1.kron(&h2.transposed()));
        let hz = i_n1.kron(h2).hstack(&h1.transposed().kron(&i_r2));

        // CSS condition, asserted eagerly so malformed seeds fail fast.
        let product = hx.multiply(&hz.transposed());
        assert!(product.is_zero(), "hypergraph product violated Hx·Hzᵀ = 0");

        code_from_css_matrices(CodeFamily::Hgp, name.into(), design_distance, &hx, &hz)
    }

    /// Builds the standard HGP code used in the evaluation: the hypergraph product of
    /// the deterministic `(3,4)` quasi-cyclic LDPC code of circulant size `l` with
    /// itself. `l = 5` gives a `[[625, 53]]` code with the weight/degree profile of the
    /// HGP codes used in qLDPC studies; smaller `l` gives proportionally smaller codes
    /// for quick tests.
    ///
    /// # Panics
    /// Panics if `l < 2`.
    #[must_use]
    pub fn hgp(l: usize) -> Code {
        let h = quasi_cyclic_ldpc(l);
        Code::hgp_from_seeds(&h, &h, 4, format!("hgp-l{l}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CheckBasis;

    #[test]
    fn quasi_cyclic_seed_is_3_4_regular() {
        let h = quasi_cyclic_ldpc(5);
        assert_eq!(h.rows(), 15);
        assert_eq!(h.cols(), 20);
        for r in 0..h.rows() {
            assert_eq!(h.row_weight(r), 4, "row {r}");
        }
        let ht = h.transposed();
        for c in 0..ht.rows() {
            assert_eq!(ht.row_weight(c), 3, "column {c}");
        }
    }

    #[test]
    fn hgp_sizes_match_formula() {
        let l = 3;
        let code = Code::hgp(l);
        let (n1, r1) = (4 * l, 3 * l);
        assert_eq!(code.num_data(), n1 * n1 + r1 * r1);
        assert_eq!(code.checks_of(CheckBasis::X).count(), r1 * n1);
        assert_eq!(code.checks_of(CheckBasis::Z).count(), n1 * r1);
    }

    #[test]
    fn hgp_stabilizers_commute_and_encode_logical_qubits() {
        let code = Code::hgp(2);
        assert!(code.stabilizers_commute());
        assert!(code.num_logical() > 0, "HGP code must encode at least one logical qubit");
    }

    #[test]
    fn hgp_625_has_53_logical_qubits() {
        // HGP of the deterministic (3,4) QC-LDPC seed with itself: the seed has GF(2)
        // rank 13, so k = (20-13)^2 + (15-13)^2 = 53.
        let code = Code::hgp(5);
        assert_eq!(code.num_data(), 625);
        assert_eq!(code.num_logical(), 53);
    }

    #[test]
    fn check_weights_are_bounded_by_seven() {
        let code = Code::hgp(3);
        for check in code.checks() {
            assert!(check.weight() <= 7, "check weight {} too large", check.weight());
            assert!(check.weight() >= 2);
        }
    }

    #[test]
    fn data_degrees_are_irregular() {
        let code = Code::hgp(2);
        let adj = code.data_adjacency();
        let classes = adj.degree_classes();
        assert!(classes.len() >= 2, "HGP should expose several degree classes: {classes:?}");
        assert!(*classes.last().expect("non-empty") <= 8);
    }

    #[test]
    fn hgp_of_repetition_code_is_toric_like() {
        // Repetition code H = cyclic difference matrix; HGP of it with itself gives a
        // toric-code-like [[2L^2, 2]] code.
        let l = 3;
        let mut h = BinaryMatrix::zeros(l, l);
        for i in 0..l {
            h.set(i, i, true);
            h.set(i, (i + 1) % l, true);
        }
        let code = Code::hgp_from_seeds(&h, &h, l, "hgp-repetition");
        assert_eq!(code.num_data(), 2 * l * l);
        assert_eq!(code.num_logical(), 2);
    }
}
