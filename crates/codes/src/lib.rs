//! Quantum error-correcting code families for the GLADIATOR leakage-speculation study.
//!
//! This crate provides the *static* description of every code evaluated in the paper
//! "Accurate Leakage Speculation for Quantum Error Correction" (MICRO 2025):
//!
//! * the rotated **surface code** (`Code::rotated_surface`),
//! * the triangular **6.6.6 color code** (`Code::color_666`),
//! * **hypergraph-product (HGP)** codes built from classical LDPC seeds (`Code::hgp`),
//! * **balanced-product cyclic (BPC)** two-block circulant codes (`Code::bpc`).
//!
//! A [`Code`] is a CSS stabilizer code: a set of data qubits plus X- and Z-type
//! [`Check`]s, each with an ordered support that doubles as the CNOT schedule used by
//! the syndrome-extraction circuit. From a `Code` the crate derives the structures the
//! rest of the workspace needs:
//!
//! * [`DataAdjacency`] — for every data qubit, the time-ordered list of checks it
//!   touches (the "A1..A4" pattern bits of the paper),
//! * [`InteractionGraph`] — the qubit interaction graph with a greedy coloring used by
//!   the *Staggered Always-LRC* open-loop policy,
//! * [`MatchingGraph`] — the space–time decoding graph consumed by the union-find
//!   decoder in `qec-decoder`.
//!
//! # Example
//!
//! ```
//! use qec_codes::{Code, CheckBasis};
//!
//! let code = Code::rotated_surface(5);
//! assert_eq!(code.num_data(), 25);
//! assert_eq!(code.num_checks(), 24);
//! let adj = code.data_adjacency();
//! // every data qubit of the surface code touches between 2 and 4 checks
//! assert!(adj.degrees().iter().all(|&deg| (2..=4).contains(&deg)));
//! let x_checks = code.checks_of(CheckBasis::X).count();
//! assert_eq!(x_checks, 12);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adjacency;
pub mod bpc;
pub mod code;
pub mod color;
pub mod graph;
pub mod hgp;
pub mod linalg;
pub mod matching;
pub mod sites;
pub mod surface;

pub use adjacency::DataAdjacency;
pub use code::{Check, CheckBasis, CheckId, Code, CodeFamily, DataQubitId};
pub use graph::{Coloring, InteractionGraph};
pub use linalg::BinaryMatrix;
pub use matching::{MatchingGraph, SpaceTimeNode};
pub use sites::{ParitySites, SiteAdjEntry, SiteAdjacency, SiteId};
