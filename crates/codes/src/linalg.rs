//! Dense GF(2) linear algebra used to validate code constructions.
//!
//! The matrices involved are small (at most a few thousand columns), so a simple
//! bit-packed dense representation with Gaussian elimination is more than fast enough
//! and keeps the crate dependency-free.

use serde::{Deserialize, Serialize};

/// A dense matrix over GF(2), stored row-major with 64 columns per word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BinaryMatrix {
    /// All-zero matrix with the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64).max(1);
        BinaryMatrix { rows, cols, words_per_row, data: vec![0; rows * words_per_row] }
    }

    /// Build a matrix from sparse rows: `rows[i]` lists the column indices set in row `i`.
    ///
    /// # Panics
    /// Panics if any listed column is `>= cols`.
    #[must_use]
    pub fn from_rows(cols: usize, rows: &[Vec<usize>]) -> Self {
        let mut m = BinaryMatrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            for &c in row {
                assert!(c < cols, "column {c} out of range {cols}");
                m.set(i, c, true);
            }
        }
        m
    }

    /// Identity matrix of size `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = BinaryMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value of the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "index out of range");
        let word = self.data[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    /// Set the entry at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, value: bool) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        let idx = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        if value {
            self.data[idx] |= mask;
        } else {
            self.data[idx] &= !mask;
        }
    }

    /// XOR row `src` into row `dst` (`dst ^= src`).
    ///
    /// # Panics
    /// Panics if either row is out of range.
    pub fn xor_rows(&mut self, dst: usize, src: usize) {
        assert!(dst < self.rows && src < self.rows, "row out of range");
        assert_ne!(dst, src, "cannot xor a row into itself");
        let (dst_start, src_start) = (dst * self.words_per_row, src * self.words_per_row);
        for w in 0..self.words_per_row {
            let value = self.data[src_start + w];
            self.data[dst_start + w] ^= value;
        }
    }

    /// Rank over GF(2), computed on a copy by Gaussian elimination.
    #[must_use]
    pub fn rank(&self) -> usize {
        let mut m = self.clone();
        let mut rank = 0usize;
        for col in 0..m.cols {
            // find pivot row at or below `rank`
            let pivot = (rank..m.rows).find(|&r| m.get(r, col));
            let Some(pivot) = pivot else { continue };
            m.swap_rows(rank, pivot);
            for r in 0..m.rows {
                if r != rank && m.get(r, col) {
                    m.xor_rows(r, rank);
                }
            }
            rank += 1;
            if rank == m.rows {
                break;
            }
        }
        rank
    }

    /// Swap two rows.
    ///
    /// # Panics
    /// Panics if either row is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row out of range");
        if a == b {
            return;
        }
        let w = self.words_per_row;
        for k in 0..w {
            self.data.swap(a * w + k, b * w + k);
        }
    }

    /// Matrix product `self * other` over GF(2).
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    #[must_use]
    pub fn multiply(&self, other: &BinaryMatrix) -> BinaryMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in GF(2) product");
        let mut out = BinaryMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                if self.get(i, k) {
                    // out.row(i) ^= other.row(k)
                    let dst = i * out.words_per_row;
                    let src = k * other.words_per_row;
                    for w in 0..out.words_per_row {
                        out.data[dst + w] ^= other.data[src + w];
                    }
                }
            }
        }
        out
    }

    /// Transposed copy.
    #[must_use]
    pub fn transposed(&self) -> BinaryMatrix {
        let mut out = BinaryMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(c, r, true);
                }
            }
        }
        out
    }

    /// `true` when every entry is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&w| w == 0)
    }

    /// Parity (mod-2 sum) of the product of a row of `self` with a sparse vector given
    /// as a list of set column indices.
    #[must_use]
    pub fn row_dot_sparse(&self, row: usize, support: &[usize]) -> bool {
        support.iter().filter(|&&c| self.get(row, c)).count() % 2 == 1
    }

    /// Number of set entries in a row.
    #[must_use]
    pub fn row_weight(&self, row: usize) -> usize {
        let start = row * self.words_per_row;
        self.data[start..start + self.words_per_row].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Column indices set in a row, ascending.
    #[must_use]
    pub fn row_support(&self, row: usize) -> Vec<usize> {
        (0..self.cols).filter(|&c| self.get(row, c)).collect()
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics when the row counts disagree.
    #[must_use]
    pub fn hstack(&self, other: &BinaryMatrix) -> BinaryMatrix {
        assert_eq!(self.rows, other.rows, "row mismatch in hstack");
        let mut out = BinaryMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.get(r, c) {
                    out.set(r, c, true);
                }
            }
            for c in 0..other.cols {
                if other.get(r, c) {
                    out.set(r, self.cols + c, true);
                }
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ other` over GF(2).
    #[must_use]
    pub fn kron(&self, other: &BinaryMatrix) -> BinaryMatrix {
        let mut out = BinaryMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for r1 in 0..self.rows {
            for c1 in 0..self.cols {
                if !self.get(r1, c1) {
                    continue;
                }
                for r2 in 0..other.rows {
                    for c2 in 0..other.cols {
                        if other.get(r2, c2) {
                            out.set(r1 * other.rows + r2, c1 * other.cols + c2, true);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_has_full_rank() {
        assert_eq!(BinaryMatrix::identity(17).rank(), 17);
    }

    #[test]
    fn rank_of_dependent_rows() {
        let m = BinaryMatrix::from_rows(4, &[vec![0, 1], vec![1, 2], vec![0, 2]]);
        // third row is the sum of the first two
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn multiply_matches_manual_example() {
        let a = BinaryMatrix::from_rows(2, &[vec![0, 1], vec![1]]);
        let b = BinaryMatrix::from_rows(3, &[vec![0], vec![0, 2]]);
        let c = a.multiply(&b);
        // row0 = (1,1) * B = [1,0,0] ^ [1,0,1] = [0,0,1]
        assert_eq!(c.row_support(0), vec![2]);
        // row1 = (0,1) * B = [1,0,1]
        assert_eq!(c.row_support(1), vec![0, 2]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = BinaryMatrix::from_rows(5, &[vec![0, 4], vec![2], vec![1, 3, 4]]);
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn hstack_shapes_and_values() {
        let a = BinaryMatrix::identity(2);
        let b = BinaryMatrix::from_rows(3, &[vec![2], vec![0]]);
        let c = a.hstack(&b);
        assert_eq!(c.cols(), 5);
        assert!(c.get(0, 0) && c.get(0, 4));
        assert!(c.get(1, 1) && c.get(1, 2));
    }

    #[test]
    fn kron_with_identity_replicates_blocks() {
        let a = BinaryMatrix::from_rows(2, &[vec![0, 1]]);
        let k = a.kron(&BinaryMatrix::identity(3));
        assert_eq!(k.rows(), 3);
        assert_eq!(k.cols(), 6);
        for i in 0..3 {
            assert!(k.get(i, i));
            assert!(k.get(i, 3 + i));
        }
    }

    #[test]
    fn row_dot_sparse_counts_parity() {
        let m = BinaryMatrix::from_rows(6, &[vec![0, 2, 4]]);
        assert!(m.row_dot_sparse(0, &[0]));
        assert!(!m.row_dot_sparse(0, &[0, 2]));
        assert!(m.row_dot_sparse(0, &[0, 2, 4]));
        assert!(!m.row_dot_sparse(0, &[1, 3, 5]));
    }

    proptest! {
        #[test]
        fn rank_never_exceeds_dimensions(rows in 1usize..8, cols in 1usize..70, seed in any::<u64>()) {
            // cheap deterministic pseudo-random fill
            let mut state = seed | 1;
            let mut m = BinaryMatrix::zeros(rows, cols);
            for r in 0..rows {
                for c in 0..cols {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 == 1 {
                        m.set(r, c, true);
                    }
                }
            }
            let rank = m.rank();
            prop_assert!(rank <= rows.min(cols));
        }

        #[test]
        fn xor_rows_is_involutive(cols in 1usize..100, seed in any::<u64>()) {
            let mut state = seed | 1;
            let mut m = BinaryMatrix::zeros(2, cols);
            for c in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 63 == 1 {
                    m.set(0, c, true);
                }
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 63 == 1 {
                    m.set(1, c, true);
                }
            }
            let original = m.clone();
            m.xor_rows(0, 1);
            m.xor_rows(0, 1);
            prop_assert_eq!(m, original);
        }

        #[test]
        fn kron_rank_is_product_of_ranks(n in 1usize..5, m_dim in 1usize..5) {
            let a = BinaryMatrix::identity(n);
            let b = BinaryMatrix::identity(m_dim);
            prop_assert_eq!(a.kron(&b).rank(), n * m_dim);
        }
    }
}
