//! Space–time matching (decoding) graphs for surface-code style decoding.
//!
//! For a CSS code whose single-qubit errors each flip at most two checks of a given
//! basis (true for the surface code), the decoding problem over `R` rounds reduces to
//! minimum-weight matching / union-find clustering on a graph whose nodes are the
//! space–time detectors `(round, check)` plus one virtual boundary node.
//!
//! * **Spatial edges** connect the one or two same-basis checks adjacent to a data
//!   qubit within a round (single-check qubits connect to the boundary) and are
//!   labelled with that data qubit, so a matched edge translates into a Pauli
//!   correction.
//! * **Temporal edges** connect the same check in consecutive rounds and model
//!   measurement errors; they carry no data-qubit label.
//!
//! The union-find decoder in `qec-decoder` consumes this graph.

use serde::{Deserialize, Serialize};

use crate::code::{CheckBasis, CheckId, Code, DataQubitId};

/// A node of the space–time decoding graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpaceTimeNode {
    /// Detector for `check` in QEC round `round`.
    Detector {
        /// QEC round index (0-based).
        round: usize,
        /// Check id within the code.
        check: CheckId,
    },
    /// The virtual boundary absorbing odd excitations.
    Boundary,
}

/// An edge of the decoding graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatchingEdge {
    /// First endpoint (dense node index as used by [`MatchingGraph`]).
    pub a: usize,
    /// Second endpoint (dense node index).
    pub b: usize,
    /// The data qubit whose error this edge represents, if it is a spatial edge.
    pub data_qubit: Option<DataQubitId>,
    /// Edge weight (uniform by default; kept as a field for calibrated decoding).
    pub weight: f64,
}

/// Space–time decoding graph for one check basis of a code over a fixed number of
/// rounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchingGraph {
    basis: CheckBasis,
    rounds: usize,
    checks: Vec<CheckId>,
    check_slot: Vec<Option<usize>>,
    edges: Vec<MatchingEdge>,
    adjacency: Vec<Vec<usize>>,
    num_nodes: usize,
}

impl MatchingGraph {
    /// Builds the graph for `code`, detecting errors visible to checks of `basis`
    /// (i.e. `basis = Z` decodes X/bit-flip errors), over `rounds` QEC rounds.
    ///
    /// # Panics
    /// Panics if `rounds == 0` or if some data qubit touches more than two checks of
    /// `basis` (the code is then not matchable and must be decoded differently).
    #[must_use]
    pub fn build(code: &Code, basis: CheckBasis, rounds: usize) -> Self {
        assert!(rounds > 0, "need at least one round");
        let checks: Vec<CheckId> = code.checks_of(basis).map(|c| c.id).collect();
        let mut check_slot = vec![None; code.num_checks()];
        for (slot, &c) in checks.iter().enumerate() {
            check_slot[c] = Some(slot);
        }
        let per_round = checks.len();
        let num_nodes = per_round * rounds + 1; // + boundary
        let boundary = num_nodes - 1;

        let node = |round: usize, slot: usize| round * per_round + slot;

        let mut edges = Vec::new();
        // Spatial edges, one copy per round.
        let adjacency_per_qubit: Vec<Vec<usize>> = (0..code.num_data())
            .map(|q| {
                code.checks_of(basis)
                    .filter(|c| c.support.contains(&q))
                    .map(|c| check_slot[c.id].expect("slot exists"))
                    .collect()
            })
            .collect();
        for (q, slots) in adjacency_per_qubit.iter().enumerate() {
            assert!(
                slots.len() <= 2,
                "data qubit {q} touches {} checks of basis {basis}; not matchable",
                slots.len()
            );
        }
        for round in 0..rounds {
            for (q, slots) in adjacency_per_qubit.iter().enumerate() {
                match slots.as_slice() {
                    [a, b] => edges.push(MatchingEdge {
                        a: node(round, *a),
                        b: node(round, *b),
                        data_qubit: Some(q),
                        weight: 1.0,
                    }),
                    [a] => edges.push(MatchingEdge {
                        a: node(round, *a),
                        b: boundary,
                        data_qubit: Some(q),
                        weight: 1.0,
                    }),
                    _ => {}
                }
            }
            // Temporal edges to the next round.
            if round + 1 < rounds {
                for slot in 0..per_round {
                    edges.push(MatchingEdge {
                        a: node(round, slot),
                        b: node(round + 1, slot),
                        data_qubit: None,
                        weight: 1.0,
                    });
                }
            }
        }

        let mut adjacency = vec![Vec::new(); num_nodes];
        for (idx, e) in edges.iter().enumerate() {
            adjacency[e.a].push(idx);
            adjacency[e.b].push(idx);
        }

        MatchingGraph { basis, rounds, checks, check_slot, edges, adjacency, num_nodes }
    }

    /// The check basis this graph decodes.
    #[must_use]
    pub fn basis(&self) -> CheckBasis {
        self.basis
    }

    /// Number of QEC rounds covered.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of detector nodes per round.
    #[must_use]
    pub fn detectors_per_round(&self) -> usize {
        self.checks.len()
    }

    /// Total number of nodes including the boundary.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Dense index of the boundary node.
    #[must_use]
    pub fn boundary(&self) -> usize {
        self.num_nodes - 1
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[MatchingEdge] {
        &self.edges
    }

    /// Indices of the edges incident to `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn incident_edges(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Dense node index of the detector for `check` in `round`, or `None` when the
    /// check does not belong to this graph's basis.
    #[must_use]
    pub fn detector_index(&self, round: usize, check: CheckId) -> Option<usize> {
        if round >= self.rounds {
            return None;
        }
        self.check_slot.get(check).copied().flatten().map(|slot| round * self.checks.len() + slot)
    }

    /// Inverse of [`MatchingGraph::detector_index`] for non-boundary nodes.
    #[must_use]
    pub fn node_info(&self, node: usize) -> SpaceTimeNode {
        if node == self.boundary() {
            SpaceTimeNode::Boundary
        } else {
            let per_round = self.checks.len();
            SpaceTimeNode::Detector {
                round: node / per_round,
                check: self.checks[node % per_round],
            }
        }
    }

    /// Checks of this basis, in slot order.
    #[must_use]
    pub fn checks(&self) -> &[CheckId] {
        &self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Code;

    #[test]
    fn node_and_edge_counts_for_surface_code() {
        let code = Code::rotated_surface(3);
        let rounds = 4;
        let graph = MatchingGraph::build(&code, CheckBasis::Z, rounds);
        assert_eq!(graph.detectors_per_round(), 4);
        assert_eq!(graph.num_nodes(), 4 * rounds + 1);
        // Per round: one spatial edge per data qubit (9), plus 4 temporal edges per
        // round transition.
        let expected_edges = 9 * rounds + 4 * (rounds - 1);
        assert_eq!(graph.edges().len(), expected_edges);
    }

    #[test]
    fn every_spatial_edge_maps_back_to_a_data_qubit_in_the_check_support() {
        let code = Code::rotated_surface(5);
        let graph = MatchingGraph::build(&code, CheckBasis::X, 2);
        for edge in graph.edges() {
            let Some(q) = edge.data_qubit else { continue };
            for &node in &[edge.a, edge.b] {
                if let SpaceTimeNode::Detector { check, .. } = graph.node_info(node) {
                    assert!(
                        code.check(check).support.contains(&q),
                        "edge qubit {q} not in support of check {check}"
                    );
                }
            }
        }
    }

    #[test]
    fn detector_index_round_trips_with_node_info() {
        let code = Code::rotated_surface(3);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 3);
        for round in 0..3 {
            for &check in graph.checks() {
                let node = graph.detector_index(round, check).expect("detector exists");
                assert_eq!(graph.node_info(node), SpaceTimeNode::Detector { round, check });
            }
        }
        assert_eq!(graph.node_info(graph.boundary()), SpaceTimeNode::Boundary);
    }

    #[test]
    fn boundary_edges_exist_for_boundary_qubits() {
        let code = Code::rotated_surface(3);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 1);
        let boundary_edges = graph
            .edges()
            .iter()
            .filter(|e| e.a == graph.boundary() || e.b == graph.boundary())
            .count();
        assert!(boundary_edges > 0, "surface code must have boundary edges");
    }

    #[test]
    fn wrong_basis_checks_have_no_detector_index() {
        let code = Code::rotated_surface(3);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 2);
        let x_check = code.checks_of(CheckBasis::X).next().expect("has X checks").id;
        assert_eq!(graph.detector_index(0, x_check), None);
    }

    #[test]
    #[should_panic(expected = "not matchable")]
    fn color_code_is_rejected_as_unmatchable() {
        let code = Code::color_666(5);
        let _ = MatchingGraph::build(&code, CheckBasis::Z, 1);
    }
}
