//! Parity sites: grouping checks that share one physical parity qubit.
//!
//! Leakage speculation reasons about *parity qubits* (the hardware ancillas adjacent to
//! a data qubit), not about abstract stabilizer rows. For the surface code the two
//! coincide, but for self-dual codes such as the 6.6.6 color code the X-type and Z-type
//! checks of one face are measured by the same ancilla — the paper's 1-, 2- and 3-bit
//! color-code patterns count *faces*, not matrix rows. This module groups checks with
//! identical supports into [`ParitySites`] and exposes the per-data-qubit site
//! adjacency that pattern extraction and the GLADIATOR offline model operate on.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::code::{CheckId, Code, DataQubitId};

/// Identifier of a parity site (dense index).
pub type SiteId = usize;

/// The partition of a code's checks into physical parity sites.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParitySites {
    site_of_check: Vec<SiteId>,
    checks_of_site: Vec<Vec<CheckId>>,
}

impl ParitySites {
    /// Groups the checks of `code`: checks with identical supports (as a set) share a
    /// parity site.
    #[must_use]
    pub fn new(code: &Code) -> Self {
        let mut by_support: BTreeMap<Vec<DataQubitId>, SiteId> = BTreeMap::new();
        let mut site_of_check = vec![0; code.num_checks()];
        let mut checks_of_site: Vec<Vec<CheckId>> = Vec::new();
        for check in code.checks() {
            let mut key = check.support.clone();
            key.sort_unstable();
            let site = *by_support.entry(key).or_insert_with(|| {
                checks_of_site.push(Vec::new());
                checks_of_site.len() - 1
            });
            site_of_check[check.id] = site;
            checks_of_site[site].push(check.id);
        }
        ParitySites { site_of_check, checks_of_site }
    }

    /// Number of parity sites.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.checks_of_site.len()
    }

    /// The site hosting `check`.
    ///
    /// # Panics
    /// Panics if the check id is out of range.
    #[must_use]
    pub fn site_of(&self, check: CheckId) -> SiteId {
        self.site_of_check[check]
    }

    /// The checks measured by `site`.
    ///
    /// # Panics
    /// Panics if the site id is out of range.
    #[must_use]
    pub fn checks_of(&self, site: SiteId) -> &[CheckId] {
        &self.checks_of_site[site]
    }
}

/// One adjacency record of the site adjacency: data qubit interacts with `site` first
/// at CNOT time step `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SiteAdjEntry {
    /// The adjacent parity site.
    pub site: SiteId,
    /// Earliest CNOT time step (over the site's checks) at which the interaction occurs.
    pub time: usize,
}

/// For every data qubit, its adjacent parity sites in time order — the pattern-bit
/// layout used by the speculation policies and the GLADIATOR offline model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteAdjacency {
    per_qubit: Vec<Vec<SiteAdjEntry>>,
}

impl SiteAdjacency {
    /// Builds the site adjacency of `code` under the given site partition.
    #[must_use]
    pub fn new(code: &Code, sites: &ParitySites) -> Self {
        let mut per_qubit: Vec<BTreeMap<SiteId, usize>> = vec![BTreeMap::new(); code.num_data()];
        for check in code.checks() {
            let site = sites.site_of(check.id);
            for (time, &q) in check.support.iter().enumerate() {
                let entry = per_qubit[q].entry(site).or_insert(time);
                *entry = (*entry).min(time);
            }
        }
        let per_qubit = per_qubit
            .into_iter()
            .map(|map| {
                let mut entries: Vec<SiteAdjEntry> =
                    map.into_iter().map(|(site, time)| SiteAdjEntry { site, time }).collect();
                entries.sort_by_key(|e| (e.time, e.site));
                entries
            })
            .collect();
        SiteAdjacency { per_qubit }
    }

    /// Number of data qubits covered.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.per_qubit.len()
    }

    /// Adjacent sites of data qubit `q` in pattern-bit order.
    ///
    /// # Panics
    /// Panics if `q` is out of range.
    #[must_use]
    pub fn neighbors(&self, q: DataQubitId) -> &[SiteAdjEntry] {
        &self.per_qubit[q]
    }

    /// Number of adjacent sites of every data qubit.
    #[must_use]
    pub fn degrees(&self) -> Vec<usize> {
        self.per_qubit.iter().map(Vec::len).collect()
    }

    /// Distinct site degrees occurring in the code, ascending — the pattern widths the
    /// speculation hardware must support.
    #[must_use]
    pub fn degree_classes(&self) -> Vec<usize> {
        let mut degs = self.degrees();
        degs.sort_unstable();
        degs.dedup();
        degs
    }
}

impl Code {
    /// The partition of this code's checks into physical parity sites.
    #[must_use]
    pub fn parity_sites(&self) -> ParitySites {
        ParitySites::new(self)
    }

    /// Per-data-qubit adjacency over parity sites (pattern-bit layout).
    #[must_use]
    pub fn site_adjacency(&self) -> SiteAdjacency {
        let sites = self.parity_sites();
        SiteAdjacency::new(self, &sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_code_sites_are_one_per_check() {
        let code = Code::rotated_surface(5);
        let sites = code.parity_sites();
        assert_eq!(sites.num_sites(), code.num_checks());
        for check in code.checks() {
            assert_eq!(sites.checks_of(sites.site_of(check.id)), &[check.id]);
        }
    }

    #[test]
    fn color_code_sites_pair_x_and_z_faces() {
        let code = Code::color_666(5);
        let sites = code.parity_sites();
        assert_eq!(sites.num_sites(), code.num_checks() / 2);
        for site in 0..sites.num_sites() {
            let checks = sites.checks_of(site);
            assert_eq!(checks.len(), 2, "each face hosts an X and a Z check");
            let (a, b) = (code.check(checks[0]), code.check(checks[1]));
            assert_ne!(a.basis, b.basis);
            let mut sa = a.support.clone();
            let mut sb = b.support.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn surface_site_degrees_match_check_degrees() {
        let code = Code::rotated_surface(5);
        assert_eq!(code.site_adjacency().degree_classes(), vec![2, 3, 4]);
    }

    #[test]
    fn color_code_site_degrees_are_one_to_three() {
        // The paper (Section 5.1): color-code data qubits produce 3-bit patterns in the
        // bulk and 2-/1-bit patterns on edges and corners.
        let code = Code::color_666(7);
        assert_eq!(code.site_adjacency().degree_classes(), vec![1, 2, 3]);
    }

    #[test]
    fn hgp_and_bpc_sites_are_one_per_check() {
        let hgp = Code::hgp(2);
        assert_eq!(hgp.parity_sites().num_sites(), hgp.num_checks());
        let bpc = Code::bpc(14);
        assert_eq!(bpc.parity_sites().num_sites(), bpc.num_checks());
        assert_eq!(bpc.site_adjacency().degree_classes(), vec![6]);
    }

    #[test]
    fn site_neighbors_are_time_ordered_and_unique() {
        let code = Code::color_666(5);
        let adjacency = code.site_adjacency();
        for q in 0..code.num_data() {
            let entries = adjacency.neighbors(q);
            let times: Vec<usize> = entries.iter().map(|e| e.time).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
            let mut sites: Vec<usize> = entries.iter().map(|e| e.site).collect();
            sites.dedup();
            assert_eq!(sites.len(), entries.len(), "duplicate sites for qubit {q}");
        }
    }
}
