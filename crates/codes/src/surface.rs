//! Rotated surface code construction.
//!
//! The distance-`d` rotated surface code uses `d²` data qubits and `d²−1` parity
//! qubits (one per stabilizer check), i.e. `2d²−1` physical qubits in total, matching
//! Section 2.2 of the paper. Data qubits live on a `d×d` grid; weight-4 checks sit on
//! the plaquettes between them and weight-2 checks on alternating boundary positions.
//!
//! The CNOT schedule follows the usual two-pattern ordering (a "Z" sweep for X-type
//! checks and an "N" sweep for Z-type checks) so that hook errors do not reduce the
//! effective distance.

use crate::code::{Check, CheckBasis, Code, CodeFamily, DataQubitId};

/// Index of the data qubit at grid position `(row, col)` for distance `d`.
#[must_use]
fn data_index(d: usize, row: usize, col: usize) -> DataQubitId {
    row * d + col
}

/// Returns the data qubits touched by the plaquette whose upper-left corner sits at
/// ancilla coordinate `(ar, ac)` (each in `0..=d`), in the order
/// NW, NE, SW, SE. Out-of-bounds corners are returned as `None`.
fn plaquette_corners(d: usize, ar: usize, ac: usize) -> [Option<DataQubitId>; 4] {
    let corner = |r: isize, c: isize| -> Option<DataQubitId> {
        if r >= 0 && c >= 0 && (r as usize) < d && (c as usize) < d {
            Some(data_index(d, r as usize, c as usize))
        } else {
            None
        }
    };
    let (ar, ac) = (ar as isize, ac as isize);
    [
        corner(ar - 1, ac - 1), // NW
        corner(ar - 1, ac),     // NE
        corner(ar, ac - 1),     // SW
        corner(ar, ac),         // SE
    ]
}

impl Code {
    /// Builds the rotated surface code of odd distance `d ≥ 3`.
    ///
    /// # Panics
    /// Panics if `d` is even or smaller than 3.
    #[must_use]
    pub fn rotated_surface(d: usize) -> Code {
        assert!(d >= 3 && d % 2 == 1, "rotated surface code requires odd d >= 3, got {d}");

        let mut checks = Vec::new();
        for ar in 0..=d {
            for ac in 0..=d {
                let basis = if (ar + ac) % 2 == 0 { CheckBasis::Z } else { CheckBasis::X };
                let corners = plaquette_corners(d, ar, ac);
                let present: Vec<DataQubitId> = corners.iter().flatten().copied().collect();
                if present.len() < 2 {
                    continue; // corner stumps
                }
                let keep = if present.len() == 4 {
                    true
                } else {
                    // Boundary plaquettes: top/bottom rows keep X checks,
                    // left/right columns keep Z checks.
                    let on_top_or_bottom = ar == 0 || ar == d;
                    let on_left_or_right = ac == 0 || ac == d;
                    (on_top_or_bottom && basis == CheckBasis::X)
                        || (on_left_or_right && basis == CheckBasis::Z)
                };
                if !keep {
                    continue;
                }
                // CNOT schedule: X checks sweep NW, NE, SW, SE ("Z" pattern);
                // Z checks sweep NW, SW, NE, SE ("N" pattern).
                let order: [usize; 4] = match basis {
                    CheckBasis::X => [0, 1, 2, 3],
                    CheckBasis::Z => [0, 2, 1, 3],
                };
                let support: Vec<DataQubitId> = order.iter().filter_map(|&i| corners[i]).collect();
                checks.push(Check {
                    id: checks.len(),
                    basis,
                    support,
                    position: (ac as f64 - 0.5, ar as f64 - 0.5),
                });
            }
        }

        // Logical operators: a horizontal row of Z operators stretches between the two
        // Z-type boundaries and a vertical column of X operators between the X-type
        // boundaries; they overlap on exactly one qubit.
        let logical_z = vec![(0..d).map(|c| data_index(d, 0, c)).collect::<Vec<_>>()];
        let logical_x = vec![(0..d).map(|r| data_index(d, r, 0)).collect::<Vec<_>>()];

        let data_positions = (0..d * d).map(|q| ((q % d) as f64, (q / d) as f64)).collect();

        Code::from_parts(
            CodeFamily::RotatedSurface,
            format!("surface-d{d}"),
            d,
            d * d,
            checks,
            logical_x,
            logical_z,
            data_positions,
        )
        .expect("rotated surface construction is internally consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CheckBasis;
    use proptest::prelude::*;

    #[test]
    fn qubit_counts_match_2d2_minus_1() {
        for d in [3usize, 5, 7, 9, 11] {
            let code = Code::rotated_surface(d);
            assert_eq!(code.num_data(), d * d, "data qubits at d={d}");
            assert_eq!(code.num_checks(), d * d - 1, "checks at d={d}");
            assert_eq!(code.num_qubits(), 2 * d * d - 1, "total qubits at d={d}");
        }
    }

    #[test]
    fn equal_number_of_x_and_z_checks() {
        for d in [3usize, 5, 7] {
            let code = Code::rotated_surface(d);
            let x = code.checks_of(CheckBasis::X).count();
            let z = code.checks_of(CheckBasis::Z).count();
            assert_eq!(x, z);
            assert_eq!(x + z, d * d - 1);
        }
    }

    #[test]
    fn check_weights_are_two_or_four() {
        let code = Code::rotated_surface(7);
        for check in code.checks() {
            assert!(matches!(check.weight(), 2 | 4), "weight {}", check.weight());
        }
    }

    #[test]
    fn encodes_exactly_one_logical_qubit() {
        for d in [3usize, 5, 7] {
            assert_eq!(Code::rotated_surface(d).num_logical(), 1, "d={d}");
        }
    }

    #[test]
    fn logical_operators_commute_with_stabilizers_and_anticommute_with_each_other() {
        for d in [3usize, 5, 7] {
            let code = Code::rotated_surface(d);
            let lx = &code.logical_x()[0];
            let lz = &code.logical_z()[0];
            // Logical X (X ops) must overlap every Z check evenly; logical Z every X check.
            for check in code.checks_of(CheckBasis::Z) {
                let overlap = check.support.iter().filter(|q| lx.contains(q)).count();
                assert_eq!(overlap % 2, 0, "logical X anticommutes with Z check {}", check.id);
            }
            for check in code.checks_of(CheckBasis::X) {
                let overlap = check.support.iter().filter(|q| lz.contains(q)).count();
                assert_eq!(overlap % 2, 0, "logical Z anticommutes with X check {}", check.id);
            }
            let cross = lx.iter().filter(|q| lz.contains(q)).count();
            assert_eq!(cross % 2, 1, "logical X and Z must anticommute");
            assert_eq!(lx.len(), d);
            assert_eq!(lz.len(), d);
        }
    }

    #[test]
    fn every_data_qubit_touches_between_two_and_four_checks() {
        let code = Code::rotated_surface(5);
        let adj = code.data_adjacency();
        for q in 0..code.num_data() {
            let deg = adj.neighbors(q).len();
            assert!((2..=4).contains(&deg), "qubit {q} degree {deg}");
        }
        assert_eq!(code.max_data_degree(), 4);
    }

    #[test]
    fn bulk_data_qubits_touch_two_checks_of_each_basis() {
        let d = 7;
        let code = Code::rotated_surface(d);
        let adj = code.data_adjacency();
        // interior qubit away from all boundaries
        let q = data_index(d, 3, 3);
        let mut x = 0;
        let mut z = 0;
        for entry in adj.neighbors(q) {
            match code.check(entry.check).basis {
                CheckBasis::X => x += 1,
                CheckBasis::Z => z += 1,
            }
        }
        assert_eq!((x, z), (2, 2));
    }

    #[test]
    fn validates_structurally() {
        for d in [3usize, 5, 9] {
            Code::rotated_surface(d).validate().expect("valid code");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn stabilizers_commute_for_random_odd_distance(k in 1usize..6) {
            let d = 2 * k + 1;
            let code = Code::rotated_surface(d);
            prop_assert!(code.stabilizers_commute());
            prop_assert_eq!(code.num_logical(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "odd d")]
    fn even_distance_is_rejected() {
        let _ = Code::rotated_surface(4);
    }
}
