//! The decoder-backend seam: one trait, many decoders, one corpus.
//!
//! Every consumer of decoding — live batch engines, corpus replay, the serve
//! daemon — works against [`DecoderBackend`] instead of a concrete decoder
//! type. A backend owns its *entire* pipeline: how a simulated
//! [`leaky_sim::RunRecord`] is turned into detection events (backends are free
//! to index events however they like; the indices are private to the backend)
//! and how those events become a [`Correction`]. This matters because the
//! union–find decoder needs a [`qec_codes::MatchingGraph`] that only exists
//! for matchable codes, while the exact lookup table works directly on check
//! parities and therefore also covers the d=3 color code.
//!
//! [`DecoderKind`] is the serializable selector threaded through sweep specs,
//! replay options, the serve protocol and the CLI. Its wire labels (`uf`,
//! `lookup`) are frozen: reports and serve requests spell decoders with these
//! strings.

use std::sync::Arc;

use leaky_sim::RunRecord;
use qec_codes::{CheckBasis, Code, CodeFamily, MatchingGraph};

use crate::decoder::{Correction, UnionFindDecoder};
use crate::lookup::LookupDecoder;
use crate::syndrome;

/// A space–time decoder for a Z-basis memory experiment.
///
/// Implementations are immutable once built and shared across worker threads,
/// hence the `Send + Sync` bound. The detection-event indices returned by
/// [`DecoderBackend::detection_events`] use a backend-private convention and
/// must only be fed back into the same backend's
/// [`decode`](DecoderBackend::decode).
pub trait DecoderBackend: Send + Sync + std::fmt::Debug {
    /// The frozen wire label of this backend (`"uf"`, `"lookup"`).
    fn label(&self) -> &'static str;

    /// Number of detector layers covered: the noisy rounds plus the final
    /// perfect-measurement layer (`rounds + 1`).
    fn layers(&self) -> usize;

    /// Extracts this backend's detection events from a simulated run.
    ///
    /// # Panics
    /// Panics if `run.num_rounds() + 1` differs from [`layers`](Self::layers).
    fn detection_events(&self, run: &RunRecord) -> Vec<usize>;

    /// Decodes a set of detection events into a data-qubit correction.
    fn decode(&self, detection_events: &[usize]) -> Correction;

    /// Convenience: extract events from `run` and decode them in one step.
    fn decode_run(&self, run: &RunRecord) -> Correction {
        self.decode(&self.detection_events(run))
    }
}

impl DecoderBackend for UnionFindDecoder {
    fn label(&self) -> &'static str {
        "uf"
    }

    fn layers(&self) -> usize {
        self.graph().rounds()
    }

    fn detection_events(&self, run: &RunRecord) -> Vec<usize> {
        syndrome::detection_events(run, self.graph())
    }

    fn decode(&self, detection_events: &[usize]) -> Correction {
        UnionFindDecoder::decode(self, detection_events)
    }
}

impl DecoderBackend for LookupDecoder {
    fn label(&self) -> &'static str {
        "lookup"
    }

    fn layers(&self) -> usize {
        LookupDecoder::layers(self)
    }

    fn detection_events(&self, run: &RunRecord) -> Vec<usize> {
        LookupDecoder::detection_events(self, run)
    }

    fn decode(&self, detection_events: &[usize]) -> Correction {
        LookupDecoder::decode(self, detection_events)
    }
}

/// Selector for a [`DecoderBackend`], as it travels through specs, reports,
/// serve requests and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DecoderKind {
    /// Weighted-growth union–find on the space–time matching graph.
    UnionFind,
    /// Exact maximum-likelihood lookup table (d=3 surface/color only).
    Lookup,
}

impl DecoderKind {
    /// Every known backend, in wire-label order.
    pub const ALL: [DecoderKind; 2] = [DecoderKind::UnionFind, DecoderKind::Lookup];

    /// The frozen wire label (`uf`, `lookup`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DecoderKind::UnionFind => "uf",
            DecoderKind::Lookup => "lookup",
        }
    }

    /// Parses a wire label; `None` for anything unknown.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|kind| kind.label() == label)
    }

    /// Comma-separated list of every known label, for error messages.
    #[must_use]
    pub fn known_labels() -> String {
        Self::ALL.map(DecoderKind::label).join(", ")
    }

    /// Checks that this backend can decode the given code at all, without
    /// building anything.
    ///
    /// # Errors
    /// Returns an actionable message when the combination is unsupported:
    /// union–find needs a matchable code (every data qubit on at most two
    /// same-basis checks — surface yes, color/hgp/bpc no), the lookup table
    /// is enumerated only for d=3 surface/color.
    pub fn supports(self, family: CodeFamily, distance: usize) -> Result<(), String> {
        match self {
            DecoderKind::UnionFind => match family {
                CodeFamily::RotatedSurface => Ok(()),
                other => Err(format!(
                    "decoder `uf` needs a matchable code and `{other}` is not \
                     (data qubits touch more than two same-basis checks); \
                     at d=3 use `lookup` instead"
                )),
            },
            DecoderKind::Lookup => match family {
                CodeFamily::RotatedSurface | CodeFamily::Color666 if distance == 3 => Ok(()),
                CodeFamily::RotatedSurface | CodeFamily::Color666 => Err(format!(
                    "decoder `lookup` is exact only at distance 3 \
                     (got {family} d={distance}); use `uf` for larger distances"
                )),
                other => Err(format!(
                    "decoder `lookup` supports only the surface and color families \
                     at d=3 (got `{other}`); qLDPC families have no lookup table"
                )),
            },
        }
    }

    /// Builds the backend for `code` covering `layers` detector layers
    /// (`rounds + 1`, counting the final perfect-measurement layer).
    ///
    /// # Errors
    /// Returns the [`supports`](Self::supports) error when the combination is
    /// invalid, so callers never hit the matching-graph panic path.
    pub fn build(self, code: &Code, layers: usize) -> Result<Arc<dyn DecoderBackend>, String> {
        self.supports(code.family(), code.distance())?;
        match self {
            DecoderKind::UnionFind => {
                let graph = MatchingGraph::build(code, CheckBasis::Z, layers);
                Ok(Arc::new(UnionFindDecoder::new(graph)))
            }
            DecoderKind::Lookup => Ok(Arc::new(LookupDecoder::build(code, layers)?)),
        }
    }
}

impl std::fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in DecoderKind::ALL {
            assert_eq!(DecoderKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(DecoderKind::from_label("mwpm"), None);
        assert_eq!(DecoderKind::known_labels(), "uf, lookup");
    }

    #[test]
    fn supports_matrix() {
        use CodeFamily::*;
        assert!(DecoderKind::UnionFind.supports(RotatedSurface, 5).is_ok());
        assert!(DecoderKind::UnionFind.supports(Color666, 3).is_err());
        assert!(DecoderKind::UnionFind.supports(Hgp, 4).is_err());
        assert!(DecoderKind::Lookup.supports(RotatedSurface, 3).is_ok());
        assert!(DecoderKind::Lookup.supports(Color666, 3).is_ok());
        let err = DecoderKind::Lookup.supports(RotatedSurface, 5).unwrap_err();
        assert!(err.contains("distance 3"), "unhelpful error: {err}");
        let err = DecoderKind::Lookup.supports(Bpc, 7).unwrap_err();
        assert!(err.contains("surface and color"), "unhelpful error: {err}");
    }

    #[test]
    fn build_rejects_unsupported_without_panicking() {
        let color = Code::color_666(5);
        assert!(DecoderKind::UnionFind.build(&color, 4).is_err());
        assert!(DecoderKind::Lookup.build(&color, 4).is_err());
    }

    #[test]
    fn build_produces_labelled_backends() {
        let code = Code::rotated_surface(3);
        let uf = DecoderKind::UnionFind.build(&code, 3).unwrap();
        assert_eq!(uf.label(), "uf");
        assert_eq!(uf.layers(), 3);
        let lookup = DecoderKind::Lookup.build(&code, 3).unwrap();
        assert_eq!(lookup.label(), "lookup");
        assert_eq!(lookup.layers(), 3);
    }
}
