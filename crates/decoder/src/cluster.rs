//! Union–find cluster bookkeeping used by the decoder.

/// Disjoint-set forest tracking, per cluster root: defect parity, whether the cluster
/// has absorbed the boundary node, and the cluster's member list (needed for growth and
//  peeling).
#[derive(Debug, Clone)]
pub struct ClusterSet {
    parent: Vec<usize>,
    rank: Vec<u32>,
    /// Number of defects in the cluster rooted here (valid at roots only).
    defects: Vec<usize>,
    /// Whether the cluster touches the virtual boundary (valid at roots only).
    touches_boundary: Vec<bool>,
}

impl ClusterSet {
    /// Creates `n` singleton clusters. `defect[i]` marks detection events and
    /// `boundary[i]` marks the virtual boundary node(s).
    #[must_use]
    pub fn new(defect: &[bool], boundary: &[bool]) -> Self {
        let n = defect.len();
        assert_eq!(boundary.len(), n, "defect and boundary vectors must match");
        ClusterSet {
            parent: (0..n).collect(),
            rank: vec![0; n],
            defects: defect.iter().map(|&d| usize::from(d)).collect(),
            touches_boundary: boundary.to_vec(),
        }
    }

    /// Number of nodes managed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when no nodes are managed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the cluster root of `v` with path compression.
    pub fn find(&mut self, v: usize) -> usize {
        let mut root = v;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut current = v;
        while self.parent[current] != root {
            let next = self.parent[current];
            self.parent[current] = root;
            current = next;
        }
        root
    }

    /// Unions the clusters containing `a` and `b`; returns the new root.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.defects[big] += self.defects[small];
        self.touches_boundary[big] = self.touches_boundary[big] || self.touches_boundary[small];
        big
    }

    /// Number of defects in the cluster containing `v`.
    pub fn defect_count(&mut self, v: usize) -> usize {
        let root = self.find(v);
        self.defects[root]
    }

    /// Whether the cluster containing `v` has absorbed a boundary node.
    pub fn has_boundary(&mut self, v: usize) -> bool {
        let root = self.find(v);
        self.touches_boundary[root]
    }

    /// A cluster is *active* (must keep growing) while it holds an odd number of
    /// defects and has not reached the boundary.
    pub fn is_active(&mut self, v: usize) -> bool {
        let root = self.find(v);
        self.defects[root] % 2 == 1 && !self.touches_boundary[root]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_isolated() {
        let mut set = ClusterSet::new(&[true, false, false], &[false, false, true]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.find(0), 0);
        assert_eq!(set.defect_count(0), 1);
        assert!(!set.has_boundary(0));
        assert!(set.has_boundary(2));
        assert!(set.is_active(0));
        assert!(!set.is_active(1));
    }

    #[test]
    fn union_merges_defect_counts_and_boundary_flags() {
        let mut set = ClusterSet::new(&[true, true, false], &[false, false, true]);
        set.union(0, 1);
        assert_eq!(set.defect_count(0), 2);
        assert!(!set.is_active(0), "even cluster is inactive");
        set.union(1, 2);
        assert!(set.has_boundary(0));
        assert_eq!(set.find(0), set.find(2));
    }

    #[test]
    fn union_is_idempotent() {
        let mut set = ClusterSet::new(&[true, true], &[false, false]);
        let r1 = set.union(0, 1);
        let r2 = set.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(set.defect_count(0), 2);
    }

    #[test]
    fn odd_cluster_with_boundary_is_inactive() {
        let mut set = ClusterSet::new(&[true, false], &[false, true]);
        set.union(0, 1);
        assert!(!set.is_active(0));
    }

    #[test]
    fn path_compression_preserves_roots() {
        let mut set = ClusterSet::new(&[false; 6], &[false; 6]);
        for i in 0..5 {
            set.union(i, i + 1);
        }
        let root = set.find(0);
        for i in 0..6 {
            assert_eq!(set.find(i), root);
        }
    }
}
