//! Weighted-growth union–find decoder (Delfosse–Nickerson style) over a
//! [`MatchingGraph`].

use std::collections::VecDeque;

use qec_codes::{DataQubitId, MatchingGraph};

use crate::cluster::ClusterSet;

/// The decoder's output: which data qubits to flip (Pauli correction) and which
/// space–time edges were matched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correction {
    /// Data qubits whose error frame should be toggled (each listed once).
    pub data_qubits: Vec<DataQubitId>,
    /// Indices (into [`MatchingGraph::edges`]) of the matched edges.
    pub matched_edges: Vec<usize>,
}

impl Correction {
    /// Total number of matched edges.
    #[must_use]
    pub fn weight(&self) -> usize {
        self.matched_edges.len()
    }
}

/// Union–find decoder bound to one space–time matching graph.
#[derive(Debug, Clone)]
pub struct UnionFindDecoder {
    graph: MatchingGraph,
}

impl UnionFindDecoder {
    /// Wraps a matching graph for decoding. The graph can be reused across shots.
    #[must_use]
    pub fn new(graph: MatchingGraph) -> Self {
        UnionFindDecoder { graph }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &MatchingGraph {
        &self.graph
    }

    /// Decodes a set of detection events (node indices of the matching graph) into a
    /// Pauli correction.
    ///
    /// # Panics
    /// Panics if a detection event references a node outside the graph.
    #[must_use]
    pub fn decode(&self, detection_events: &[usize]) -> Correction {
        let n = self.graph.num_nodes();
        for &d in detection_events {
            assert!(d < n, "detection event {d} outside graph of {n} nodes");
        }
        if detection_events.is_empty() {
            return Correction::default();
        }

        let mut defect = vec![false; n];
        for &d in detection_events {
            defect[d] ^= true; // duplicated events cancel
        }
        let mut boundary = vec![false; n];
        boundary[self.graph.boundary()] = true;

        let mut clusters = ClusterSet::new(&defect, &boundary);
        let edges = self.graph.edges();
        // Integer growth: each edge needs 2 units of growth (one from each side or two
        // steps from one side) before it is added to the cluster support.
        let mut growth = vec![0u32; edges.len()];
        let mut grown = vec![false; edges.len()];
        let defect_nodes: Vec<usize> = (0..n).filter(|&v| defect[v]).collect();

        let mut any_active = defect_nodes.iter().any(|&v| clusters.is_active(v));
        // Each iteration grows every active cluster by half an edge; the number of
        // iterations is bounded by the graph diameter.
        let mut safety = 0usize;
        while any_active {
            safety += 1;
            assert!(
                safety <= 4 * n + 4,
                "union-find growth failed to terminate (graph disconnected from boundary?)"
            );
            let mut newly_grown: Vec<usize> = Vec::new();
            for (idx, edge) in edges.iter().enumerate() {
                if grown[idx] {
                    continue;
                }
                let root_a = clusters.find(edge.a);
                let root_b = clusters.find(edge.b);
                let active_a = clusters.is_active(edge.a);
                let active_b = clusters.is_active(edge.b);
                let increment =
                    if root_a == root_b { 0 } else { u32::from(active_a) + u32::from(active_b) };
                if increment == 0 {
                    continue;
                }
                growth[idx] += increment;
                if growth[idx] >= 2 {
                    grown[idx] = true;
                    newly_grown.push(idx);
                }
            }
            for idx in newly_grown {
                clusters.union(edges[idx].a, edges[idx].b);
            }
            any_active = defect_nodes.iter().any(|&v| clusters.is_active(v));
        }

        self.peel(&mut clusters, &defect, &grown)
    }

    /// Peeling phase: inside every cluster, build a spanning forest of the grown edges
    /// and peel leaves so that every defect is paired up (or routed to the boundary).
    fn peel(&self, clusters: &mut ClusterSet, defect: &[bool], grown: &[bool]) -> Correction {
        let n = self.graph.num_nodes();
        let edges = self.graph.edges();
        let boundary = self.graph.boundary();

        // Adjacency restricted to grown edges.
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (idx, edge) in edges.iter().enumerate() {
            if grown[idx] {
                adjacency[edge.a].push(idx);
                adjacency[edge.b].push(idx);
            }
        }

        let mut visited = vec![false; n];
        let mut parity: Vec<bool> = defect.to_vec();
        let mut matched_edges = Vec::new();

        // Roots: the boundary first (so boundary-touching clusters are rooted there and
        // can dump an odd defect onto it), then any unvisited defect node.
        let mut roots: Vec<usize> = vec![boundary];
        roots.extend((0..n).filter(|&v| defect[v]));

        for &root in &roots {
            if visited[root] {
                continue;
            }
            // BFS spanning tree of the cluster containing `root`.
            visited[root] = true;
            let mut order: Vec<usize> = vec![root];
            let mut parent_edge: Vec<Option<usize>> = vec![None; n];
            let mut parent_node: Vec<usize> = vec![usize::MAX; n];
            let mut queue = VecDeque::from([root]);
            while let Some(v) = queue.pop_front() {
                for &eidx in &adjacency[v] {
                    let edge = &edges[eidx];
                    let other = if edge.a == v { edge.b } else { edge.a };
                    if !visited[other] {
                        visited[other] = true;
                        parent_edge[other] = Some(eidx);
                        parent_node[other] = v;
                        order.push(other);
                        queue.push_back(other);
                    }
                }
            }
            // Peel from the leaves (reverse BFS order): a node carrying a defect sends
            // it to its parent through the tree edge, which becomes part of the
            // correction.
            for &v in order.iter().rev() {
                if v == root {
                    continue;
                }
                if parity[v] {
                    let eidx = parent_edge[v].expect("non-root nodes have a parent edge");
                    matched_edges.push(eidx);
                    parity[v] = false;
                    let p = parent_node[v];
                    parity[p] ^= true;
                }
            }
            // Any parity left on the root must be on the boundary (odd clusters always
            // absorb the boundary by construction); parity on the boundary is harmless.
            debug_assert!(
                !parity[root] || root == boundary,
                "peeling left an unpaired defect inside a cluster"
            );
        }
        let _ = clusters;

        // Project matched space-time edges onto data-qubit flips (temporal edges have
        // no data qubit and only explain measurement errors).
        let mut qubit_parity = std::collections::HashMap::new();
        for &eidx in &matched_edges {
            if let Some(q) = edges[eidx].data_qubit {
                *qubit_parity.entry(q).or_insert(0usize) += 1;
            }
        }
        let mut data_qubits: Vec<DataQubitId> =
            qubit_parity.into_iter().filter(|&(_, count)| count % 2 == 1).map(|(q, _)| q).collect();
        data_qubits.sort_unstable();
        matched_edges.sort_unstable();

        Correction { data_qubits, matched_edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_codes::{CheckBasis, Code, MatchingGraph};

    fn decoder(d: usize, rounds: usize) -> (Code, UnionFindDecoder) {
        let code = Code::rotated_surface(d);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, rounds);
        (code, UnionFindDecoder::new(graph))
    }

    /// Ideal (single perfect round) syndrome of an X-error set.
    fn syndrome_nodes(code: &Code, graph: &MatchingGraph, error: &[usize]) -> Vec<usize> {
        code.checks_of(CheckBasis::Z)
            .filter(|c| c.support.iter().filter(|q| error.contains(q)).count() % 2 == 1)
            .filter_map(|c| graph.detector_index(0, c.id))
            .collect()
    }

    /// `true` when `error ⊕ correction` commutes with every Z check (trivial syndrome).
    fn correction_clears_syndrome(code: &Code, error: &[usize], correction: &[usize]) -> bool {
        code.checks_of(CheckBasis::Z).all(|c| {
            let parity = c
                .support
                .iter()
                .filter(|q| {
                    let in_err = error.contains(q);
                    let in_corr = correction.contains(q);
                    in_err ^ in_corr
                })
                .count();
            parity % 2 == 0
        })
    }

    #[test]
    fn empty_syndrome_gives_empty_correction() {
        let (_, dec) = decoder(3, 3);
        let correction = dec.decode(&[]);
        assert!(correction.data_qubits.is_empty());
        assert_eq!(correction.weight(), 0);
    }

    #[test]
    fn single_bulk_error_is_corrected_exactly() {
        let (code, dec) = decoder(3, 1);
        let error = vec![4usize]; // centre qubit, two adjacent Z checks
        let events = syndrome_nodes(&code, dec.graph(), &error);
        assert_eq!(events.len(), 2);
        let correction = dec.decode(&events);
        assert!(correction_clears_syndrome(&code, &error, &correction.data_qubits));
    }

    #[test]
    fn boundary_error_is_routed_to_the_boundary() {
        let (code, dec) = decoder(3, 1);
        // A corner qubit touching a single Z check: one detection event, matched to the
        // boundary.
        let q = code
            .checks_of(CheckBasis::Z)
            .find(|c| c.weight() == 2)
            .map(|c| c.support[0])
            .expect("surface code has weight-2 Z checks");
        let error = vec![q];
        let events = syndrome_nodes(&code, dec.graph(), &error);
        let correction = dec.decode(&events);
        assert!(correction_clears_syndrome(&code, &error, &correction.data_qubits));
    }

    #[test]
    fn two_errors_far_apart_are_both_corrected() {
        let (code, dec) = decoder(5, 1);
        let error = vec![0usize, 24usize];
        let events = syndrome_nodes(&code, dec.graph(), &error);
        let correction = dec.decode(&events);
        assert!(correction_clears_syndrome(&code, &error, &correction.data_qubits));
    }

    #[test]
    fn measurement_error_pair_needs_no_data_correction() {
        let (code, dec) = decoder(3, 3);
        // The same check fires in consecutive rounds: classic measurement-error
        // signature, optimally explained by a temporal edge (no data flip).
        let check = code.checks_of(CheckBasis::Z).next().expect("has Z checks").id;
        let events = vec![
            dec.graph().detector_index(0, check).expect("node"),
            dec.graph().detector_index(1, check).expect("node"),
        ];
        let correction = dec.decode(&events);
        assert!(correction.data_qubits.is_empty(), "got {:?}", correction.data_qubits);
        assert_eq!(correction.weight(), 1);
    }

    #[test]
    fn random_low_weight_errors_always_clear_the_syndrome() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (code, dec) = decoder(5, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        for trial in 0..200 {
            let mut qubits: Vec<usize> = (0..code.num_data()).collect();
            qubits.shuffle(&mut rng);
            let weight = 1 + trial % 3;
            let error: Vec<usize> = qubits.into_iter().take(weight).collect();
            let events = syndrome_nodes(&code, dec.graph(), &error);
            let correction = dec.decode(&events);
            assert!(
                correction_clears_syndrome(&code, &error, &correction.data_qubits),
                "trial {trial}: error {error:?} corrected by {:?} leaves a syndrome",
                correction.data_qubits
            );
        }
    }

    #[test]
    fn duplicate_detection_events_cancel() {
        let (_, dec) = decoder(3, 1);
        let correction = dec.decode(&[0, 0]);
        assert!(correction.data_qubits.is_empty());
    }
}
