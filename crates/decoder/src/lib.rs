//! Space–time syndrome decoding for the surface code via union–find.
//!
//! The GLADIATOR paper reports logical error rates (LER) for the rotated surface code
//! under several leakage-mitigation policies (Figures 4b, 12 and 13). The authors use a
//! matching decoder on Stim detector graphs; this crate provides the equivalent
//! substrate built from scratch:
//!
//! * [`DecoderBackend`] — the backend seam every consumer decodes through, with
//!   [`DecoderKind`] as the serializable selector (`uf`, `lookup`),
//! * [`UnionFindDecoder`] — the weighted-growth union–find decoder of Delfosse &
//!   Nickerson, operating on the [`qec_codes::MatchingGraph`] space–time graph,
//! * [`LookupDecoder`] — an exact maximum-likelihood lookup table for d=3
//!   surface/color codes, enumerated offline over every error pattern,
//! * [`syndrome`] — helpers that turn a simulated [`leaky_sim::RunRecord`] into
//!   detection events (including the final perfect measurement layer) and evaluate
//!   whether the decoded correction leaves a logical error.
//!
//! Union–find belongs to the same threshold class as minimum-weight matching; the
//! paper's comparisons are *relative* across policies, which this decoder preserves.
//!
//! # Example
//!
//! ```
//! use qec_codes::{Code, CheckBasis, MatchingGraph};
//! use qec_decoder::UnionFindDecoder;
//!
//! let code = Code::rotated_surface(3);
//! let graph = MatchingGraph::build(&code, CheckBasis::Z, 1);
//! let decoder = UnionFindDecoder::new(graph);
//! // no detection events -> empty correction
//! let correction = decoder.decode(&[]);
//! assert!(correction.data_qubits.is_empty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod cluster;
pub mod decoder;
pub mod lookup;
pub mod syndrome;

pub use backend::{DecoderBackend, DecoderKind};
pub use decoder::{Correction, UnionFindDecoder};
pub use lookup::LookupDecoder;
pub use syndrome::{detection_events, logical_failure, MemoryBasis};
