//! Exact maximum-likelihood lookup-table decoder for d=3 codes.
//!
//! At distance 3 the whole decoding problem fits in a table: the rotated
//! surface code has 9 data qubits and the 6.6.6 color code 7, so *every*
//! X-error pattern (2⁹ = 512 / 2⁷ = 128 of them) can be enumerated offline
//! and bucketed by its Z-check syndrome. For each syndrome the decoder stores
//! the correction from the most likely logical coset — minimum weight, ties
//! broken towards the coset with more minimum-weight representatives, then
//! deterministically towards the trivial coset — which is exact maximum
//! likelihood under i.i.d. bit-flip noise at low physical error rate.
//!
//! The space–time part telescopes away. The simulator defines detector `r` of
//! check `c` as `measurement[r][c] ^ measurement[r-1][c]` and the final layer
//! as `perfect[c] ^ measurement[last][c]`, so XOR-folding all detection events
//! of one check across rounds yields exactly `perfect[c]`: the noiseless
//! syndrome of the final data frame. Measurement and leakage-readout noise
//! cancel in the fold, which is why this backend needs no matching graph and
//! also covers the color code that [`qec_codes::MatchingGraph`] rejects.
//!
//! Against union–find this is the exactness reference, with one caveat: the
//! table is exact ML *given the folded syndrome*, while union–find sees the
//! full space–time syndrome. Neither strictly dominates on every run, but
//! wherever union–find's edge weights mis-model the noise (leakage above
//! all) the fold is the more faithful statistic, and across the pinned
//! operating points the table's logical error rate sits at or below
//! union–find's.

use leaky_sim::RunRecord;
use qec_codes::{CheckBasis, Code, CodeFamily, DataQubitId};

use crate::decoder::Correction;

/// Exact lookup-table decoder for a d=3 surface or color code memory in the
/// Z basis. Build once with [`LookupDecoder::build`], then decode any number
/// of runs; the table is immutable and shared freely across threads.
#[derive(Debug)]
pub struct LookupDecoder {
    /// Z-check ids in id order; slot `s` of a layer is `checks[s]`.
    checks: Vec<usize>,
    /// Detector layers covered (noisy rounds + the final perfect layer).
    layers: usize,
    /// Canonical correction for each of the `2^checks.len()` syndromes.
    table: Vec<Correction>,
}

impl LookupDecoder {
    /// Enumerates the full error model of `code` and builds the syndrome
    /// table. `layers` is the detector depth this decoder expects from runs
    /// (`rounds + 1`, matching [`qec_codes::MatchingGraph::build`]).
    ///
    /// # Errors
    /// Returns an actionable message unless `code` is a distance-3 surface or
    /// color code — the only families/sizes the table is enumerated for.
    pub fn build(code: &Code, layers: usize) -> Result<Self, String> {
        match code.family() {
            CodeFamily::RotatedSurface | CodeFamily::Color666 if code.distance() == 3 => {}
            family => {
                return Err(format!(
                    "lookup decoder supports only surface/color at d=3, \
                     got {family} d={}",
                    code.distance()
                ))
            }
        }
        if layers == 0 {
            return Err("lookup decoder needs at least one detector layer".to_string());
        }
        let checks: Vec<usize> = code.checks_of(CheckBasis::Z).map(|c| c.id).collect();
        let supports: Vec<&[DataQubitId]> =
            code.checks_of(CheckBasis::Z).map(|c| c.support.as_slice()).collect();
        let logical: &[DataQubitId] = code
            .logical_z()
            .first()
            .map(Vec::as_slice)
            .ok_or_else(|| "lookup decoder needs a logical-Z operator".to_string())?;
        let n = code.num_data();
        assert!(n <= 16, "enumeration is only meant for tiny d=3 codes");

        // Per (syndrome, logical coset): minimum weight, multiplicity at that
        // weight, and the first (lexicographically smallest) representative.
        #[derive(Clone, Copy)]
        struct Coset {
            weight: u32,
            count: u32,
            representative: u32,
        }
        let num_syndromes = 1usize << checks.len();
        let mut cosets: Vec<[Option<Coset>; 2]> = vec![[None; 2]; num_syndromes];
        for pattern in 0u32..(1u32 << n) {
            let mut syndrome = 0usize;
            for (slot, support) in supports.iter().enumerate() {
                let parity = support.iter().filter(|&&q| pattern & (1 << q) != 0).count() % 2;
                syndrome |= parity << slot;
            }
            let class = logical.iter().filter(|&&q| pattern & (1 << q) != 0).count() % 2;
            let weight = pattern.count_ones();
            let slot = &mut cosets[syndrome][class];
            match slot {
                Some(best) if weight < best.weight => {
                    *slot = Some(Coset { weight, count: 1, representative: pattern });
                }
                Some(best) if weight == best.weight => best.count += 1,
                Some(_) => {}
                None => *slot = Some(Coset { weight, count: 1, representative: pattern }),
            }
        }

        let table = cosets
            .iter()
            .map(|classes| {
                // Both cosets are always populated for these codes (the Z
                // checks are independent, so every syndrome is reachable).
                let trivial = classes[0].expect("trivial coset reachable");
                let flipped = classes[1].expect("flipped coset reachable");
                let pick = if flipped.weight < trivial.weight
                    || (flipped.weight == trivial.weight && flipped.count > trivial.count)
                {
                    flipped
                } else {
                    trivial
                };
                let data_qubits = (0..n).filter(|&q| pick.representative & (1 << q) != 0).collect();
                Correction { data_qubits, matched_edges: Vec::new() }
            })
            .collect();

        Ok(LookupDecoder { checks, layers, table })
    }

    /// Detector layers covered (noisy rounds + 1).
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Z-check ids in slot order; event index `r * num_slots + s` is layer
    /// `r` of check `checks()[s]`.
    #[must_use]
    pub fn checks(&self) -> &[usize] {
        &self.checks
    }

    /// Extracts this decoder's detection events from a simulated run, using
    /// the `layer * num_slots + slot` indexing convention.
    ///
    /// # Panics
    /// Panics if `run.num_rounds() + 1` differs from [`layers`](Self::layers).
    #[must_use]
    pub fn detection_events(&self, run: &RunRecord) -> Vec<usize> {
        assert_eq!(
            self.layers,
            run.num_rounds() + 1,
            "lookup decoder must cover one more layer than the noisy rounds"
        );
        let per_layer = self.checks.len();
        let mut events = Vec::new();
        for (r, round) in run.rounds.iter().enumerate() {
            for (slot, &check) in self.checks.iter().enumerate() {
                if round.detectors[check] {
                    events.push(r * per_layer + slot);
                }
            }
        }
        if let Some(last) = run.rounds.last() {
            for (slot, &check) in self.checks.iter().enumerate() {
                if run.final_perfect_measurements[check] ^ last.measurements[check] {
                    events.push(run.num_rounds() * per_layer + slot);
                }
            }
        }
        events
    }

    /// Folds the detection events into the final-frame syndrome and returns
    /// the table's correction for it.
    ///
    /// # Panics
    /// Panics if an event index is out of range for this decoder's layer
    /// count (indices must come from [`detection_events`](Self::detection_events)).
    #[must_use]
    pub fn decode(&self, detection_events: &[usize]) -> Correction {
        let per_layer = self.checks.len();
        let mut syndrome = 0usize;
        for &event in detection_events {
            assert!(
                event < per_layer * self.layers,
                "detection event {event} out of range for {} layers of {per_layer} checks",
                self.layers
            );
            syndrome ^= 1 << (event % per_layer);
        }
        self.table[syndrome].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::DecoderBackend;
    use crate::decoder::UnionFindDecoder;
    use crate::syndrome::{logical_failure, MemoryBasis};
    use leaky_sim::{policy::NeverLrc, NoiseParams, Simulator};
    use qec_codes::MatchingGraph;

    /// Syndrome slots (single layer) of an X-error pattern, shared event
    /// indexing for both lookup (layers=1) and union–find (rounds=1 graph).
    fn syndrome_slots(code: &Code, pattern: &[DataQubitId]) -> Vec<usize> {
        code.checks_of(CheckBasis::Z)
            .enumerate()
            .filter(|(_, check)| {
                check.support.iter().filter(|q| pattern.contains(q)).count() % 2 == 1
            })
            .map(|(slot, _)| slot)
            .collect()
    }

    fn residual_is_benign(code: &Code, pattern: &[DataQubitId], correction: &Correction) {
        let mut frames = vec![false; code.num_data()];
        for &q in pattern {
            frames[q] ^= true;
        }
        for &q in &correction.data_qubits {
            frames[q] ^= true;
        }
        for check in code.checks_of(CheckBasis::Z) {
            let parity = check.support.iter().filter(|&&q| frames[q]).count() % 2;
            assert_eq!(parity, 0, "correction does not clear the syndrome");
        }
        let logical = &code.logical_z()[0];
        let class = logical.iter().filter(|&&q| frames[q]).count() % 2;
        assert_eq!(class, 0, "correction left a logical error for {pattern:?}");
    }

    #[test]
    fn rejects_unsupported_codes_with_actionable_errors() {
        for code in [Code::rotated_surface(5), Code::color_666(5), Code::hgp(2), Code::bpc(7)] {
            let err = LookupDecoder::build(&code, 2).unwrap_err();
            assert!(err.contains("surface/color at d=3"), "unhelpful error: {err}");
        }
        assert!(LookupDecoder::build(&Code::rotated_surface(3), 0).is_err());
    }

    #[test]
    fn corrects_every_single_error_surface_and_color() {
        for code in [Code::rotated_surface(3), Code::color_666(3)] {
            let decoder = LookupDecoder::build(&code, 1).unwrap();
            residual_is_benign(&code, &[], &decoder.decode(&[]));
            for q in 0..code.num_data() {
                let events = syndrome_slots(&code, &[q]);
                residual_is_benign(&code, &[q], &decoder.decode(&events));
            }
        }
    }

    #[test]
    fn agrees_with_union_find_on_every_correctable_pattern() {
        // Property pinned by the issue: at d=3 both backends correct every
        // weight ≤ ⌊(d−1)/2⌋ = 1 pattern with no logical failure. One layer,
        // shared slot indexing (union–find's graph nodes for round 0 are the
        // Z-check slots in the same order; the extra boundary node is never
        // an event).
        let code = Code::rotated_surface(3);
        let lookup = LookupDecoder::build(&code, 1).unwrap();
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 1);
        let uf = UnionFindDecoder::new(graph);
        let mut patterns: Vec<Vec<DataQubitId>> = vec![vec![]];
        patterns.extend((0..code.num_data()).map(|q| vec![q]));
        for pattern in patterns {
            let events = syndrome_slots(&code, &pattern);
            residual_is_benign(&code, &pattern, &lookup.decode(&events));
            residual_is_benign(&code, &pattern, &UnionFindDecoder::decode(&uf, &events));
        }
    }

    #[test]
    fn folded_events_equal_perfect_final_syndrome() {
        // The telescoping identity the decoder relies on: XOR-folding all
        // detection events of a check equals its perfect final measurement.
        let code = Code::rotated_surface(3);
        let noise = NoiseParams::builder().physical_error_rate(2e-2).leakage_ratio(0.3).build();
        let decoder = LookupDecoder::build(&code, 6).unwrap();
        for seed in 0..8 {
            let mut sim = Simulator::new(&code, noise, seed);
            let run = sim.run_with_policy(&mut NeverLrc, 5);
            let events = decoder.detection_events(&run);
            let per_layer = decoder.checks().len();
            let mut folded = vec![false; per_layer];
            for event in events {
                folded[event % per_layer] ^= true;
            }
            for (slot, &check) in decoder.checks().iter().enumerate() {
                assert_eq!(folded[slot], run.final_perfect_measurements[check]);
            }
        }
    }

    #[test]
    fn never_fails_on_noiseless_runs_and_rarely_under_noise() {
        for code in [Code::rotated_surface(3), Code::color_666(3)] {
            let decoder = LookupDecoder::build(&code, 4).unwrap();
            let noise = NoiseParams::builder()
                .physical_error_rate(0.0)
                .leakage_ratio(0.0)
                .mlr_false_flag(0.0)
                .build();
            for seed in 0..4 {
                let mut sim = Simulator::new(&code, noise, seed);
                let run = sim.run_with_policy(&mut NeverLrc, 3);
                let correction = decoder.decode_run(&run);
                assert!(!logical_failure(&code, &run, &correction, MemoryBasis::Z));
            }
        }
        // Under mild noise the exact table should fail at most as often as
        // union–find on identical runs (it is exact ML at d=3).
        let code = Code::rotated_surface(3);
        let lookup = LookupDecoder::build(&code, 4).unwrap();
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 4);
        let uf = UnionFindDecoder::new(graph);
        let noise = NoiseParams::builder().physical_error_rate(8e-3).leakage_ratio(0.1).build();
        let (mut lookup_failures, mut uf_failures) = (0usize, 0usize);
        for seed in 0..200 {
            let mut sim = Simulator::new(&code, noise, 9000 + seed);
            let run = sim.run_with_policy(&mut NeverLrc, 3);
            let lc = DecoderBackend::decode_run(&lookup, &run);
            let uc = DecoderBackend::decode_run(&uf, &run);
            lookup_failures += usize::from(logical_failure(&code, &run, &lc, MemoryBasis::Z));
            uf_failures += usize::from(logical_failure(&code, &run, &uc, MemoryBasis::Z));
        }
        assert!(
            lookup_failures <= uf_failures,
            "exact table failed {lookup_failures} vs union-find {uf_failures}"
        );
    }
}
