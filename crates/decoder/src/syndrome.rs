//! Converting simulated runs into detection events and judging logical failure.

use qec_codes::{CheckBasis, Code, MatchingGraph};

use crate::decoder::Correction;
use leaky_sim::RunRecord;

/// Which logical memory experiment is being decoded.
///
/// A `Z`-basis memory stores the logical qubit in the Z basis, is corrupted by X
/// (bit-flip) errors, and is therefore decoded on the **Z-check** matching graph;
/// conversely for `X`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryBasis {
    /// Logical Z memory (decode X errors using Z-type checks).
    Z,
    /// Logical X memory (decode Z errors using X-type checks).
    X,
}

impl MemoryBasis {
    /// The check basis whose detectors are decoded for this memory experiment.
    #[must_use]
    pub fn check_basis(self) -> CheckBasis {
        match self {
            MemoryBasis::Z => CheckBasis::Z,
            MemoryBasis::X => CheckBasis::X,
        }
    }
}

/// Extracts the detection events of `run` for the matching graph `graph`.
///
/// The graph must cover `run.num_rounds() + 1` rounds: the extra, final layer compares
/// the last noisy measurement with a round of perfect measurements (the standard
/// trick that closes open time-like error strings before readout).
///
/// # Panics
/// Panics if the graph's round count is not `run.num_rounds() + 1`.
#[must_use]
pub fn detection_events(run: &RunRecord, graph: &MatchingGraph) -> Vec<usize> {
    assert_eq!(
        graph.rounds(),
        run.num_rounds() + 1,
        "matching graph must have one more layer than the noisy rounds"
    );
    let mut events = Vec::new();
    for (r, round) in run.rounds.iter().enumerate() {
        for &check in graph.checks() {
            if round.detectors[check] {
                events.push(graph.detector_index(r, check).expect("detector in range"));
            }
        }
    }
    // Final perfect layer.
    if let Some(last) = run.rounds.last() {
        for &check in graph.checks() {
            let flip = run.final_perfect_measurements[check] ^ last.measurements[check];
            if flip {
                events.push(
                    graph.detector_index(run.num_rounds(), check).expect("final layer in range"),
                );
            }
        }
    }
    events
}

/// Returns `true` when, after applying `correction`, the run still carries a logical
/// error in the given memory basis.
#[must_use]
pub fn logical_failure(
    code: &Code,
    run: &RunRecord,
    correction: &Correction,
    basis: MemoryBasis,
) -> bool {
    match basis {
        MemoryBasis::Z => {
            // Residual X errors flip the logical-Z readout.
            let mut frames = run.final_data_x.clone();
            for &q in &correction.data_qubits {
                frames[q] = !frames[q];
            }
            code.logical_z()
                .first()
                .map(|support| support.iter().filter(|&&q| frames[q]).count() % 2 == 1)
                .unwrap_or(false)
        }
        MemoryBasis::X => {
            let mut frames = run.final_data_z.clone();
            for &q in &correction.data_qubits {
                frames[q] = !frames[q];
            }
            code.logical_x()
                .first()
                .map(|support| support.iter().filter(|&&q| frames[q]).count() % 2 == 1)
                .unwrap_or(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::UnionFindDecoder;
    use leaky_sim::{policy::NeverLrc, NoiseParams, Simulator};

    fn run_and_decode(d: usize, rounds: usize, p: f64, seed: u64) -> (Code, RunRecord, bool) {
        let code = Code::rotated_surface(d);
        let noise = NoiseParams::builder()
            .physical_error_rate(p)
            .leakage_ratio(0.0)
            .mlr_false_flag(0.0)
            .build();
        let mut sim = Simulator::new(&code, noise, seed);
        let run = sim.run_with_policy(&mut NeverLrc, rounds);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, rounds + 1);
        let decoder = UnionFindDecoder::new(graph);
        let events = detection_events(&run, decoder.graph());
        let correction = decoder.decode(&events);
        let failed = logical_failure(&code, &run, &correction, MemoryBasis::Z);
        (code, run, failed)
    }

    #[test]
    fn noiseless_runs_never_fail() {
        for seed in 0..5 {
            let (_, run, failed) = run_and_decode(3, 5, 0.0, seed);
            assert!(!failed);
            assert!(run.final_data_x.iter().all(|&b| !b));
        }
    }

    #[test]
    fn low_noise_runs_rarely_fail() {
        let mut failures = 0usize;
        let shots = 60;
        for seed in 0..shots {
            let (_, _, failed) = run_and_decode(3, 3, 5e-4, 1000 + seed);
            if failed {
                failures += 1;
            }
        }
        assert!(
            failures <= 2,
            "decoder failed {failures}/{shots} shots at p=5e-4, which is far too many"
        );
    }

    #[test]
    fn detection_events_requires_matching_round_count() {
        let code = Code::rotated_surface(3);
        let noise = NoiseParams::default();
        let mut sim = Simulator::new(&code, noise, 3);
        let run = sim.run_with_policy(&mut NeverLrc, 4);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 5);
        // correct round count works
        let _ = detection_events(&run, &graph);
    }

    #[test]
    #[should_panic(expected = "one more layer")]
    fn detection_events_rejects_wrong_round_count() {
        let code = Code::rotated_surface(3);
        let noise = NoiseParams::default();
        let mut sim = Simulator::new(&code, noise, 3);
        let run = sim.run_with_policy(&mut NeverLrc, 4);
        let graph = MatchingGraph::build(&code, CheckBasis::Z, 4);
        let _ = detection_events(&run, &graph);
    }

    #[test]
    fn logical_failure_detects_uncorrected_logical_string() {
        let code = Code::rotated_surface(3);
        let noise = NoiseParams::builder().physical_error_rate(0.0).leakage_ratio(0.0).build();
        let mut sim = Simulator::new(&code, noise, 3);
        let mut run = sim.run_with_policy(&mut NeverLrc, 2);
        // Manually plant a logical X string in the final frames.
        for &q in &code.logical_z()[0] {
            run.final_data_x[q] = true;
        }
        let failed = logical_failure(&code, &run, &Correction::default(), MemoryBasis::Z);
        assert!(failed);
        // Correcting the same string removes the failure.
        let correction =
            Correction { data_qubits: code.logical_z()[0].clone(), matched_edges: vec![] };
        assert!(!logical_failure(&code, &run, &correction, MemoryBasis::Z));
    }

    #[test]
    fn x_basis_memory_uses_z_frames() {
        let code = Code::rotated_surface(3);
        let noise = NoiseParams::builder().physical_error_rate(0.0).leakage_ratio(0.0).build();
        let mut sim = Simulator::new(&code, noise, 3);
        let mut run = sim.run_with_policy(&mut NeverLrc, 2);
        for &q in &code.logical_x()[0] {
            run.final_data_z[q] = true;
        }
        assert!(logical_failure(&code, &run, &Correction::default(), MemoryBasis::X));
        assert!(!logical_failure(&code, &run, &Correction::default(), MemoryBasis::Z));
    }
}
