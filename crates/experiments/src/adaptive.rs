//! Adaptive shot allocation: confidence-targeted sweeps with deterministic,
//! resumable checkpoints.
//!
//! Fixed-shot sweeps are statistically dishonest at the paper's headline
//! regime (logical error rates around 1e-6): easy cells waste millions of
//! shots, hard cells report meaningless zeros. This module converts
//! [`SweepSpec::shots`] into a per-cell **ceiling** and allocates shots
//! sequentially, in *rounds*, until each cell's Wilson score interval on its
//! Bernoulli failure rate (logical errors when decoding, non-zero final DLP
//! otherwise) reaches a target relative half-width — or the ceiling.
//!
//! # Determinism and the resume oracle
//!
//! Everything the driver does is a pure function of the spec:
//!
//! * **Batch sizes** come from [`round_batch`]`(seed, cell, round)` — a
//!   doubling schedule with splitmix-style jitter, never wall clock.
//! * **Shot results** come from [`BatchEngine::score_range`]: shot `i` runs
//!   under `seed + i`, so batching cannot change a bit.
//! * **Aggregation** folds runs into a [`MetricsAccumulator`] in shot order —
//!   plain left-fold partial sums whose state is checkpointed bit-exactly
//!   (raw IEEE-754 bits) at every round boundary.
//! * **Stopping** ([`stop_decision`]) is a pure function of the cell's tally.
//!
//! A run stopped at *any* round boundary and resumed from its checkpoint
//! therefore replays the exact addition sequence of the uninterrupted run and
//! renders a byte-identical report; `crates/experiments/tests/adaptive.rs`
//! pins that oracle (and the CI `adaptive-smoke` job `kill -9`s a live run).
//!
//! # Checkpoint layout
//!
//! The checkpoint directory holds two files:
//!
//! * [`ADAPTIVE_FILE`] (`adaptive.json`) — written once at start: schema
//!   version, generator, and the full [`SweepSpec`] including its
//!   [`AdaptiveSpec`] block. Immutable for the life of the run.
//! * [`STATE_FILE`] (`state.qad`) — atomically replaced (write-temp + rename)
//!   at every round boundary: magic, then CRC-32-framed blocks exactly like
//!   `.qtr` (tag + varint length + payload + CRC trailer) carrying the round
//!   counter, a spec fingerprint, and one [`MetricsAccumulator`] per cell.
//!   Single-byte flips and truncations are loud, typed
//!   [`TraceError`]s — a torn checkpoint can never silently restart a cell
//!   from zero (`crates/experiments/tests/adaptive.rs` mirrors the `.qtr`
//!   corruption suite against it).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use leakage_speculation::PolicyFactory;
use qec_decoder::DecoderBackend;
use qec_trace::wire::{read_block, write_block, Decoder, Encoder};
use qec_trace::{Corpus, TraceError};

use crate::engine::{build_backend, BatchEngine};
use crate::metrics::MetricsAccumulator;
use crate::report::BenchLine;
use crate::scenario::Scenario;
use crate::sweep::{git_describe, SweepCell, SweepReport, SweepSpec, SWEEP_SCHEMA_VERSION};

/// Version of the adaptive checkpoint schema (`adaptive.json` **and** the
/// binary `state.qad` blocks); bump when either shape changes.
pub const ADAPTIVE_SCHEMA_VERSION: u32 = 1;

/// File name of the immutable run descriptor inside a checkpoint directory.
pub const ADAPTIVE_FILE: &str = "adaptive.json";

/// File name of the per-round mutable tally state inside a checkpoint
/// directory.
pub const STATE_FILE: &str = "state.qad";

/// Magic bytes opening a `state.qad` file.
pub const STATE_MAGIC: [u8; 4] = *b"QAD1";

/// `state.qad` block tag: run header (schema, spec fingerprint, round, cells).
const BLOCK_STATE: u8 = 0x01;
/// `state.qad` block tag: one cell's tally (scenario id + accumulator).
const BLOCK_CELL: u8 = 0x02;
/// `state.qad` block tag: end marker (cell count cross-check).
const BLOCK_DONE: u8 = 0x03;

// ---------------------------------------------------------------------------------
// The adaptive block of a SweepSpec
// ---------------------------------------------------------------------------------

/// The adaptive-allocation block of a [`SweepSpec`]: when present, the spec's
/// `shots` is a per-cell ceiling and cells stop early once their Wilson
/// interval is tight enough.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveSpec {
    /// Stop a cell when the Wilson interval's half-width divided by its
    /// center is at or below this value (e.g. `0.1` = ±10% relative).
    pub target_rel_halfwidth: f64,
    /// Confidence level of the interval (e.g. `0.95`).
    pub confidence: f64,
    /// Shots of the first round's batch; later rounds double (plus
    /// deterministic jitter, see [`round_batch`]).
    pub initial_batch: usize,
}

impl Default for AdaptiveSpec {
    fn default() -> Self {
        AdaptiveSpec { target_rel_halfwidth: 0.1, confidence: 0.95, initial_batch: 64 }
    }
}

impl AdaptiveSpec {
    /// Validates the block's parameters.
    ///
    /// # Errors
    /// Returns a message naming the first out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.target_rel_halfwidth.is_finite() && self.target_rel_halfwidth > 0.0) {
            return Err(format!(
                "adaptive target_rel_halfwidth must be positive and finite, got {}",
                self.target_rel_halfwidth
            ));
        }
        if !(self.confidence >= 0.5 && self.confidence < 1.0) {
            return Err(format!(
                "adaptive confidence must be in [0.5, 1), got {}",
                self.confidence
            ));
        }
        if self.initial_batch == 0 {
            return Err("adaptive initial_batch must be at least 1".to_string());
        }
        Ok(())
    }

    /// The normal quantile `z` matching the block's confidence level.
    #[must_use]
    pub fn z(&self) -> f64 {
        z_for_confidence(self.confidence)
    }
}

// ---------------------------------------------------------------------------------
// Estimator core: probit, Wilson interval, stopping rule
// ---------------------------------------------------------------------------------

/// The standard-normal quantile function Φ⁻¹ (Acklam's rational
/// approximation, |relative error| < 1.15e-9 over the open unit interval).
/// Pure f64 arithmetic — no tables, no global state — so the stopping rule
/// built on it is a deterministic function of its inputs.
///
/// # Panics
/// Panics outside the open interval `(0, 1)`.
#[must_use]
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1), got {p}");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// The two-sided normal quantile for a confidence level: `z` such that a
/// standard normal lands in `[-z, z]` with probability `confidence`
/// (`z_for_confidence(0.95) ≈ 1.96`).
///
/// # Panics
/// Panics when `confidence` is outside `[0, 1)`.
#[must_use]
pub fn z_for_confidence(confidence: f64) -> f64 {
    probit(0.5 + confidence / 2.0)
}

/// A Wilson score interval on a Bernoulli rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WilsonInterval {
    /// The interval's center (the shrunk point estimate).
    pub center: f64,
    /// Half the interval's width.
    pub halfwidth: f64,
}

impl WilsonInterval {
    /// The interval's relative half-width `halfwidth / center`
    /// (`f64::INFINITY` when the center is zero).
    #[must_use]
    pub fn relative_halfwidth(&self) -> f64 {
        if self.center > 0.0 {
            self.halfwidth / self.center
        } else {
            f64::INFINITY
        }
    }
}

/// The Wilson score interval for `failures` successes out of `trials`
/// Bernoulli trials at normal quantile `z`:
///
/// ```text
/// center    = (p̂ + z²/2n) / (1 + z²/n)
/// halfwidth = z·√(p̂(1−p̂)/n + z²/4n²) / (1 + z²/n)
/// ```
///
/// Unlike the Wald interval it never collapses to zero width at `p̂ = 0`, so
/// a cell that has seen no failures keeps an honest upper bound and keeps
/// allocating.
///
/// # Panics
/// Panics when `trials` is zero or `failures > trials`.
#[must_use]
pub fn wilson_interval(failures: u64, trials: u64, z: f64) -> WilsonInterval {
    assert!(trials > 0, "Wilson interval needs at least one trial");
    assert!(failures <= trials, "failures {failures} > trials {trials}");
    let n = trials as f64;
    let p = failures as f64 / n;
    let zz = z * z;
    let denom = 1.0 + zz / n;
    let center = (p + zz / (2.0 * n)) / denom;
    let halfwidth = z * (p * (1.0 - p) / n + zz / (4.0 * n * n)).sqrt() / denom;
    WilsonInterval { center, halfwidth }
}

/// Why a cell stopped allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The Wilson interval reached the target relative half-width.
    Converged,
    /// The cell hit the shot ceiling first.
    Ceiling,
}

/// The stopping rule: a **pure function of the tally** — same
/// `(failures, trials, shots_done)` always yields the same decision,
/// independent of every other cell, of wall clock, and of how the tally was
/// batched. `None` means keep allocating.
///
/// A cell converges once it has at least one failure and its Wilson interval
/// at the block's confidence is relatively tight enough; a zero-failure cell
/// can only stop at the ceiling (its rate estimate has no meaningful relative
/// width yet).
#[must_use]
pub fn stop_decision(
    failures: u64,
    trials: u64,
    shots_done: usize,
    ceiling: usize,
    adaptive: &AdaptiveSpec,
) -> Option<StopReason> {
    if failures > 0 && trials > 0 {
        let interval = wilson_interval(failures, trials, adaptive.z());
        if interval.relative_halfwidth() <= adaptive.target_rel_halfwidth {
            return Some(StopReason::Converged);
        }
    }
    if shots_done >= ceiling {
        return Some(StopReason::Ceiling);
    }
    None
}

/// The stopping decision for one cell's accumulated state.
#[must_use]
pub fn cell_decision(
    acc: &MetricsAccumulator,
    ceiling: usize,
    adaptive: &AdaptiveSpec,
) -> Option<StopReason> {
    let (failures, trials) = acc.bernoulli_tally();
    stop_decision(failures, trials, acc.shots, ceiling, adaptive)
}

// ---------------------------------------------------------------------------------
// The round schedule
// ---------------------------------------------------------------------------------

/// The batch size cell `cell_hash` receives in allocation round `round`
/// (before clamping to the cell's remaining ceiling): `initial_batch`
/// doubling per round, plus a deterministic splitmix-style jitter of up to
/// 1/8 of the base derived from `(seed, cell_hash, round)` — **never** wall
/// clock, thread count, or any other ambient state. The jitter keeps cells
/// from marching in lockstep (distinct cells hit their stopping checks at
/// staggered shot counts) while staying a pure function of the run identity,
/// which is what makes the resume oracle possible at all.
#[must_use]
pub fn round_batch(seed: u64, cell_hash: u64, round: u64, initial_batch: u64) -> u64 {
    let base = initial_batch.max(1).saturating_mul(1u64 << round.min(20));
    let mut x = seed ^ cell_hash.rotate_left(17) ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    base.saturating_add(x % (base / 8 + 1))
}

/// The 64-bit hash a cell's jitter (and its checkpoint identity) keys on:
/// the FNV-1a hash of the scenario id, which names the cell uniquely within
/// one expansion (axes + policy + decoder).
#[must_use]
pub fn cell_hash(scenario: &Scenario) -> u64 {
    Corpus::cell_hash(&scenario.id())
}

// ---------------------------------------------------------------------------------
// Checkpoint files
// ---------------------------------------------------------------------------------

/// The immutable run descriptor serialized to [`ADAPTIVE_FILE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveCheckpoint {
    /// [`ADAPTIVE_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Tool and version that started the run.
    pub generator: String,
    /// The full sweep spec, including its `adaptive` block.
    pub spec: SweepSpec,
}

/// One cell's persisted tally: the scenario id it belongs to plus the
/// bit-exact accumulator state.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTally {
    /// [`Scenario::id`] of the cell, cross-checked against the expansion on
    /// resume (guards against a state file from a different spec or ordering).
    pub id: String,
    /// The cell's accumulated partial sums after the checkpointed round.
    pub acc: MetricsAccumulator,
}

/// The mutable state loaded from a [`STATE_FILE`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// FNV-1a hash of the canonical spec JSON the state belongs to.
    pub spec_fingerprint: u64,
    /// Completed allocation rounds.
    pub rounds: u64,
    /// One tally per cell, in expansion order.
    pub cells: Vec<CellTally>,
}

/// The fingerprint stored in (and demanded of) a state file: the FNV-1a hash
/// of the spec's canonical JSON rendering.
#[must_use]
pub fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    Corpus::cell_hash(&serde_json::to_string(spec).expect("specs always serialize"))
}

fn encode_accumulator(enc: &mut Encoder, acc: &MetricsAccumulator) {
    enc.put_usize(acc.shots);
    enc.put_f64(acc.false_positives);
    enc.put_f64(acc.false_negatives);
    enc.put_f64(acc.data_lrcs);
    enc.put_f64(acc.ancilla_lrcs);
    enc.put_f64(acc.rounds);
    enc.put_f64(acc.average_dlp);
    enc.put_f64(acc.final_dlp);
    enc.put_usize(acc.dlp_series.len());
    for &sum in &acc.dlp_series {
        enc.put_f64(sum);
    }
    enc.put_f64(acc.inaccuracy_per_round);
    enc.put_f64(acc.total_time_ns);
    enc.put_f64(acc.lrc_time_ns);
    enc.put_usize(acc.decoded);
    enc.put_usize(acc.errors);
    enc.put_usize(acc.dlp_events);
}

fn decode_accumulator(dec: &mut Decoder<'_>) -> Result<MetricsAccumulator, TraceError> {
    let shots = dec.take_usize()?;
    let false_positives = dec.take_f64()?;
    let false_negatives = dec.take_f64()?;
    let data_lrcs = dec.take_f64()?;
    let ancilla_lrcs = dec.take_f64()?;
    let rounds = dec.take_f64()?;
    let average_dlp = dec.take_f64()?;
    let final_dlp = dec.take_f64()?;
    let dlp_len = dec.take_usize()?;
    let mut dlp_series = Vec::with_capacity(dlp_len.min(1 << 20));
    for _ in 0..dlp_len {
        dlp_series.push(dec.take_f64()?);
    }
    Ok(MetricsAccumulator {
        shots,
        false_positives,
        false_negatives,
        data_lrcs,
        ancilla_lrcs,
        rounds,
        average_dlp,
        final_dlp,
        dlp_series,
        inaccuracy_per_round: dec.take_f64()?,
        total_time_ns: dec.take_f64()?,
        lrc_time_ns: dec.take_f64()?,
        decoded: dec.take_usize()?,
        errors: dec.take_usize()?,
        dlp_events: dec.take_usize()?,
    })
}

/// Atomically writes `state` to `dir/`[`STATE_FILE`]: the bytes are staged in
/// full, written to a temporary sibling and renamed over the old state, so a
/// crash at any instant leaves either the previous round's checkpoint or the
/// new one — never a torn file passing its CRCs.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_checkpoint_state(dir: &Path, state: &CheckpointState) -> Result<(), TraceError> {
    let mut bytes: Vec<u8> = Vec::new();
    bytes.extend_from_slice(&STATE_MAGIC);
    let mut header = Encoder::new();
    header.put_varint(u64::from(ADAPTIVE_SCHEMA_VERSION));
    header.put_varint(state.spec_fingerprint);
    header.put_varint(state.rounds);
    header.put_usize(state.cells.len());
    write_block(&mut bytes, BLOCK_STATE, &header.into_bytes())?;
    for cell in &state.cells {
        let mut payload = Encoder::new();
        payload.put_str(&cell.id);
        encode_accumulator(&mut payload, &cell.acc);
        write_block(&mut bytes, BLOCK_CELL, &payload.into_bytes())?;
    }
    let mut end = Encoder::new();
    end.put_usize(state.cells.len());
    write_block(&mut bytes, BLOCK_DONE, &end.into_bytes())?;
    let tmp = dir.join(format!("{STATE_FILE}.tmp"));
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, dir.join(STATE_FILE))?;
    Ok(())
}

/// Reads and validates `dir/`[`STATE_FILE`]. Every block's CRC-32 is checked
/// (exactly like `.qtr` blocks), the header and end block cross-check the
/// cell count, and trailing garbage is rejected — a flipped byte or a
/// truncation anywhere yields a typed [`TraceError`], never a silently
/// shortened tally.
///
/// # Errors
/// [`TraceError::Io`] when the file is missing/unreadable, otherwise
/// [`TraceError::Corrupt`] naming the first structural violation.
pub fn read_checkpoint_state(dir: &Path) -> Result<CheckpointState, TraceError> {
    let bytes = std::fs::read(dir.join(STATE_FILE))?;
    let mut reader: &[u8] = &bytes;
    let mut magic = [0u8; 4];
    std::io::Read::read_exact(&mut reader, &mut magic)?;
    if magic != STATE_MAGIC {
        return Err(TraceError::Corrupt(format!("bad checkpoint magic {magic:02x?}")));
    }
    let (tag, payload) = read_block(&mut reader)?;
    if tag != BLOCK_STATE {
        return Err(TraceError::Corrupt(format!(
            "expected checkpoint header block, got tag {tag:#04x}"
        )));
    }
    let mut dec = Decoder::new(&payload);
    let schema = dec.take_varint()?;
    if schema != u64::from(ADAPTIVE_SCHEMA_VERSION) {
        return Err(TraceError::Corrupt(format!(
            "checkpoint state schema {schema} unsupported (this build reads \
             {ADAPTIVE_SCHEMA_VERSION})"
        )));
    }
    let spec_fingerprint = dec.take_varint()?;
    let rounds = dec.take_varint()?;
    let cell_count = dec.take_usize()?;
    dec.expect_finished()?;
    let mut cells = Vec::with_capacity(cell_count.min(1 << 16));
    for _ in 0..cell_count {
        let (tag, payload) = read_block(&mut reader)?;
        if tag != BLOCK_CELL {
            return Err(TraceError::Corrupt(format!("expected cell block, got tag {tag:#04x}")));
        }
        let mut dec = Decoder::new(&payload);
        let id = dec.take_str()?;
        let acc = decode_accumulator(&mut dec)?;
        dec.expect_finished()?;
        cells.push(CellTally { id, acc });
    }
    let (tag, payload) = read_block(&mut reader)?;
    if tag != BLOCK_DONE {
        return Err(TraceError::Corrupt(format!("expected end block, got tag {tag:#04x}")));
    }
    let mut dec = Decoder::new(&payload);
    let end_count = dec.take_usize()?;
    dec.expect_finished()?;
    if end_count != cells.len() {
        return Err(TraceError::Corrupt(format!(
            "end block says {end_count} cells, read {}",
            cells.len()
        )));
    }
    if !reader.is_empty() {
        return Err(TraceError::Corrupt(format!(
            "{} trailing bytes after checkpoint end block",
            reader.len()
        )));
    }
    Ok(CheckpointState { spec_fingerprint, rounds, cells })
}

// ---------------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------------

/// A completed adaptive sweep: the report plus allocation provenance (which
/// deliberately lives *outside* the report — an adaptive run at its ceiling
/// must render byte-identically to the legacy fixed-shot report).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// The sweep report, with `spec.adaptive` stripped and per-cell
    /// `scenario.shots` reporting the shots actually allocated.
    pub report: SweepReport,
    /// Allocation rounds the run took (across every session of the run).
    pub rounds: u64,
    /// Total shots allocated across all cells.
    pub shots_allocated: u64,
    /// Cells stopped by reaching the target confidence interval.
    pub converged: usize,
    /// Cells stopped by the shot ceiling.
    pub ceilinged: usize,
}

/// Starts a fresh adaptive sweep in `dir`, writing [`ADAPTIVE_FILE`] first
/// and a [`STATE_FILE`] checkpoint at every round boundary.
///
/// `max_rounds` bounds the rounds executed in **this call**: `Ok(None)` means
/// the run was paused at a round boundary (checkpointed, resumable with
/// [`resume_adaptive`]); `Ok(Some(outcome))` is the completed run. Pass
/// `None` to run to completion.
///
/// # Errors
/// Returns a message when the spec has no (valid) adaptive block, fails to
/// expand, `dir` already holds a checkpoint, or I/O fails.
pub fn run_adaptive(
    spec: &SweepSpec,
    dir: &Path,
    max_rounds: Option<u64>,
) -> Result<Option<AdaptiveOutcome>, String> {
    let adaptive = spec.adaptive.ok_or("spec has no adaptive block")?;
    adaptive.validate()?;
    let scenarios = spec.expand()?;
    if dir.join(ADAPTIVE_FILE).exists() {
        return Err(format!(
            "{} already holds an adaptive checkpoint — resume it with `repro sweep --resume \
             {}` or use a fresh directory",
            dir.display(),
            dir.display()
        ));
    }
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let checkpoint = AdaptiveCheckpoint {
        schema_version: ADAPTIVE_SCHEMA_VERSION,
        generator: generator(),
        spec: spec.clone(),
    };
    let json = serde_json::to_string_pretty(&checkpoint).expect("checkpoint serializes");
    std::fs::write(dir.join(ADAPTIVE_FILE), json)
        .map_err(|e| format!("{}: {e}", dir.join(ADAPTIVE_FILE).display()))?;
    let states = vec![MetricsAccumulator::new(); scenarios.len()];
    drive(dir, spec, &scenarios, states, 0, max_rounds)
}

/// Resumes (or re-renders) the adaptive sweep checkpointed in `dir`. With no
/// [`STATE_FILE`] yet (the run died before its first round boundary) the run
/// restarts from round zero — nothing had been reported, so nothing is lost.
/// A *present but damaged* state file is a hard error: resuming must never
/// silently restart a cell from zero.
///
/// `max_rounds` behaves exactly as in [`run_adaptive`]. Resuming an already
/// completed run re-renders the same report (the finalize step is a pure
/// function of the checkpointed state).
///
/// # Errors
/// Returns a message when `dir` holds no checkpoint, the descriptor or state
/// file is corrupt, the state belongs to a different spec, or I/O fails.
pub fn resume_adaptive(
    dir: &Path,
    max_rounds: Option<u64>,
) -> Result<Option<AdaptiveOutcome>, String> {
    let descriptor = dir.join(ADAPTIVE_FILE);
    let text = std::fs::read_to_string(&descriptor).map_err(|e| {
        format!("{}: {e} (not an adaptive checkpoint directory?)", descriptor.display())
    })?;
    let checkpoint: AdaptiveCheckpoint =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", descriptor.display()))?;
    if checkpoint.schema_version != ADAPTIVE_SCHEMA_VERSION {
        return Err(format!(
            "{}: checkpoint schema {} unsupported (this build reads {ADAPTIVE_SCHEMA_VERSION})",
            descriptor.display(),
            checkpoint.schema_version
        ));
    }
    let spec = checkpoint.spec;
    if spec.adaptive.is_none() {
        return Err(format!("{}: checkpointed spec has no adaptive block", descriptor.display()));
    }
    let scenarios = spec.expand()?;
    let (rounds, states) = if dir.join(STATE_FILE).exists() {
        let state = read_checkpoint_state(dir)
            .map_err(|e| format!("{}: {e}", dir.join(STATE_FILE).display()))?;
        if state.spec_fingerprint != spec_fingerprint(&spec) {
            return Err(format!(
                "{}: state fingerprint {:#018x} does not match the checkpointed spec — the \
                 state file belongs to a different run",
                dir.join(STATE_FILE).display(),
                state.spec_fingerprint
            ));
        }
        if state.cells.len() != scenarios.len() {
            return Err(format!(
                "{}: state holds {} cells, the spec expands to {}",
                dir.join(STATE_FILE).display(),
                state.cells.len(),
                scenarios.len()
            ));
        }
        let mut states = Vec::with_capacity(state.cells.len());
        for (tally, scenario) in state.cells.into_iter().zip(&scenarios) {
            if tally.id != scenario.id() {
                return Err(format!(
                    "{}: state cell `{}` does not match expanded cell `{}`",
                    dir.join(STATE_FILE).display(),
                    tally.id,
                    scenario.id()
                ));
            }
            if tally.acc.shots > spec.shots {
                return Err(format!(
                    "{}: cell `{}` claims {} shots, above the ceiling {}",
                    dir.join(STATE_FILE).display(),
                    tally.id,
                    tally.acc.shots,
                    spec.shots
                ));
            }
            states.push(tally.acc);
        }
        (state.rounds, states)
    } else {
        (0, vec![MetricsAccumulator::new(); scenarios.len()])
    };
    drive(dir, &spec, &scenarios, states, rounds, max_rounds)
}

fn generator() -> String {
    format!("repro sweep {}", env!("CARGO_PKG_VERSION"))
}

/// Builds one engine per scenario, sharing the code, the (recalibrated)
/// policy factory and the decoder backends across consecutive scenarios with
/// the same `(family, distance)` — the exact artifact-sharing discipline of
/// [`crate::sweep::run_scenarios`], except the engines outlive the call so
/// every allocation round reuses them.
fn build_engines(scenarios: &[Scenario]) -> Result<Vec<BatchEngine>, String> {
    let mut engines = Vec::with_capacity(scenarios.len());
    let mut start = 0usize;
    while start < scenarios.len() {
        let group_key = (scenarios[start].code, scenarios[start].distance);
        let end = start
            + scenarios[start..].iter().take_while(|s| (s.code, s.distance) == group_key).count();
        let code = scenarios[start].build_code();
        let mut factory: Option<Arc<PolicyFactory>> = None;
        let mut decoders: BTreeMap<_, Arc<dyn DecoderBackend>> = BTreeMap::new();
        for scenario in &scenarios[start..end] {
            let spec = scenario.to_spec();
            let shared_factory = match factory.take() {
                Some(f) if f.config() == &spec.gladiator => f,
                Some(f) => Arc::new(f.recalibrated(&spec.gladiator)),
                None => Arc::new(PolicyFactory::new(&code, &spec.gladiator)),
            };
            factory = Some(Arc::clone(&shared_factory));
            let decoder = if spec.decode {
                let slot = (spec.rounds, scenario.decoder);
                let backend = match decoders.get(&slot) {
                    Some(backend) => Arc::clone(backend),
                    None => {
                        let built = build_backend(scenario.decoder, &code, spec.rounds)
                            .map_err(|e| format!("cell {}: {e}", scenario.id()))?;
                        decoders.insert(slot, Arc::clone(&built));
                        built
                    }
                };
                Some(backend)
            } else {
                None
            };
            engines.push(BatchEngine::with_shared(&spec, shared_factory, decoder));
        }
        start = end;
    }
    Ok(engines)
}

/// The round loop shared by [`run_adaptive`] and [`resume_adaptive`]. Before
/// each round it recomputes every cell's stopping decision from its tally
/// (the decision is a pure function, so nothing about it needs persisting),
/// allocates one deterministic batch to every still-active cell, and
/// checkpoints the full state at the round boundary.
fn drive(
    dir: &Path,
    spec: &SweepSpec,
    scenarios: &[Scenario],
    mut states: Vec<MetricsAccumulator>,
    mut rounds: u64,
    max_rounds: Option<u64>,
) -> Result<Option<AdaptiveOutcome>, String> {
    let adaptive = spec.adaptive.expect("callers validated the adaptive block");
    let ceiling = spec.shots;
    let fingerprint = spec_fingerprint(spec);
    let hashes: Vec<u64> = scenarios.iter().map(cell_hash).collect();
    let mut engines: Option<Vec<BatchEngine>> = None;
    let mut rounds_this_call = 0u64;
    loop {
        let active: Vec<usize> = (0..scenarios.len())
            .filter(|&i| cell_decision(&states[i], ceiling, &adaptive).is_none())
            .collect();
        if active.is_empty() {
            break;
        }
        if let Some(limit) = max_rounds {
            if rounds_this_call >= limit {
                save_state(dir, fingerprint, rounds, scenarios, &states)?;
                return Ok(None);
            }
        }
        // Engines are built lazily so a resume of an already-finished run
        // never pays for artifact construction.
        if engines.is_none() {
            engines = Some(build_engines(scenarios)?);
        }
        let engines = engines.as_ref().expect("just built");
        for &i in &active {
            let done = states[i].shots as u64;
            let batch = round_batch(spec.seed, hashes[i], rounds, adaptive.initial_batch as u64)
                .min(ceiling as u64 - done);
            for run in engines[i].score_range(done, done + batch) {
                states[i].push(&run);
            }
        }
        rounds += 1;
        rounds_this_call += 1;
        save_state(dir, fingerprint, rounds, scenarios, &states)?;
    }
    // Finalize: a pure function of the checkpointed tallies, so an
    // interrupted run's resumed report and the uninterrupted report are the
    // same bytes.
    let codes: Vec<String> = scenarios.iter().map(|s| s.build_code().name().to_string()).collect();
    let mut converged = 0usize;
    let mut ceilinged = 0usize;
    let mut shots_allocated = 0u64;
    let cells: Vec<SweepCell> = scenarios
        .iter()
        .zip(&states)
        .zip(&codes)
        .map(|((scenario, acc), code)| {
            match cell_decision(acc, ceiling, &adaptive) {
                Some(StopReason::Converged) => converged += 1,
                Some(StopReason::Ceiling) => ceilinged += 1,
                None => unreachable!("the loop only exits with every cell stopped"),
            }
            shots_allocated += acc.shots as u64;
            SweepCell {
                scenario: Scenario { shots: acc.shots, ..*scenario },
                code: code.clone(),
                metrics: acc.finalize(),
                divergence_profile: None,
                wall_time_ms: 0.0,
            }
        })
        .collect();
    let mut report_spec = spec.clone();
    report_spec.adaptive = None;
    let report = SweepReport {
        schema_version: SWEEP_SCHEMA_VERSION,
        generator: generator(),
        git_describe: git_describe(),
        timing: false,
        recorded_policy: None,
        replay_mode: None,
        spec: report_spec,
        cells,
    };
    Ok(Some(AdaptiveOutcome { report, rounds, shots_allocated, converged, ceilinged }))
}

fn save_state(
    dir: &Path,
    fingerprint: u64,
    rounds: u64,
    scenarios: &[Scenario],
    states: &[MetricsAccumulator],
) -> Result<(), String> {
    let state = CheckpointState {
        spec_fingerprint: fingerprint,
        rounds,
        cells: scenarios
            .iter()
            .zip(states)
            .map(|(scenario, acc)| CellTally { id: scenario.id(), acc: acc.clone() })
            .collect(),
    };
    write_checkpoint_state(dir, &state)
        .map_err(|e| format!("{}: {e}", dir.join(STATE_FILE).display()))
}

// ---------------------------------------------------------------------------------
// Perf snapshot
// ---------------------------------------------------------------------------------

/// The pinned spec behind the `sweep/adaptive-resume` benchmark: one d=3
/// cell, decode on, ceiling 32, an unreachable interval target so the cell
/// runs to its ceiling across several rounds.
#[must_use]
pub fn adaptive_snapshot_spec() -> SweepSpec {
    use crate::scenario::CodeFamily;
    use leakage_speculation::PolicyKind;
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![1e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::GladiatorM],
        shots: 32,
        rounds_per_distance: 10,
        seed: 11,
        decode: true,
        decoders: None,
        adaptive: Some(AdaptiveSpec {
            target_rel_halfwidth: 1e-6,
            confidence: 0.95,
            initial_batch: 4,
        }),
    }
}

/// Runs the pinned adaptive spec through a full pause/resume cycle
/// [`crate::sweep::SNAPSHOT_SAMPLES`] times and reports per-allocated-shot
/// wall time as the `sweep/adaptive-resume` [`BenchLine`] — the perf-gate
/// guard on checkpoint + resume overhead.
#[must_use]
pub fn adaptive_snapshot() -> Vec<BenchLine> {
    use crate::sweep::SNAPSHOT_SAMPLES;
    let spec = adaptive_snapshot_spec();
    let samples: Vec<u64> = (0..SNAPSHOT_SAMPLES)
        .map(|sample| {
            let dir = snapshot_dir(sample);
            let _ = std::fs::remove_dir_all(&dir);
            let start = std::time::Instant::now();
            let paused = run_adaptive(&spec, &dir, Some(1)).expect("pinned adaptive spec runs");
            assert!(paused.is_none(), "one round cannot finish the pinned spec");
            let outcome = resume_adaptive(&dir, None)
                .expect("pinned adaptive spec resumes")
                .expect("unbounded resume completes");
            let elapsed = start.elapsed().as_nanos() as u64;
            let _ = std::fs::remove_dir_all(&dir);
            elapsed / outcome.shots_allocated.max(1)
        })
        .collect();
    vec![BenchLine {
        benchmark: "sweep/adaptive-resume".to_string(),
        samples: samples.len(),
        mean_ns: samples.iter().sum::<u64>() / samples.len() as u64,
        min_ns: samples.iter().copied().min().unwrap_or(0),
        max_ns: samples.iter().copied().max().unwrap_or(0),
    }]
}

fn snapshot_dir(sample: usize) -> PathBuf {
    std::env::temp_dir().join(format!("qec-adaptive-snapshot-{}-{sample}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_matches_known_quantiles() {
        // Reference values of Φ⁻¹ to ~1e-6.
        for (p, want) in [
            (0.5, 0.0),
            (0.975, 1.959_964),
            (0.995, 2.575_829),
            (0.841_344_75, 1.0),
            (0.025, -1.959_964),
            (1e-6, -4.753_424),
        ] {
            let got = probit(p);
            assert!((got - want).abs() < 1e-5, "probit({p}) = {got}, want {want}");
        }
        assert!((z_for_confidence(0.95) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn wilson_interval_matches_the_textbook_example() {
        // k=10, n=100, z=1.96: interval ≈ (0.0552, 0.1744), center ≈ 0.1148.
        let interval = wilson_interval(10, 100, 1.96);
        assert!((interval.center - 0.114_80).abs() < 1e-4, "{interval:?}");
        assert!((interval.halfwidth - 0.059_57).abs() < 1e-4, "{interval:?}");
        // Zero failures still keeps a non-degenerate upper bound.
        let zero = wilson_interval(0, 100, 1.96);
        assert!(zero.center > 0.0 && zero.halfwidth > 0.0);
        assert!(zero.relative_halfwidth() <= 1.0 + 1e-12);
    }

    #[test]
    fn stopping_rule_needs_failures_and_respects_the_ceiling() {
        let adaptive = AdaptiveSpec::default();
        // No failures: only the ceiling stops the cell.
        assert_eq!(stop_decision(0, 1000, 1000, 2000, &adaptive), None);
        assert_eq!(stop_decision(0, 2000, 2000, 2000, &adaptive), Some(StopReason::Ceiling));
        // Plenty of failures at a huge sample: converged.
        assert_eq!(
            stop_decision(5000, 10_000, 10_000, 1 << 30, &adaptive),
            Some(StopReason::Converged)
        );
        // A loose tally keeps allocating.
        assert_eq!(stop_decision(1, 10, 10, 1 << 30, &adaptive), None);
    }

    #[test]
    fn round_batches_double_and_jitter_deterministically() {
        let (seed, cell) = (11, 0xDEAD_BEEF);
        let r0 = round_batch(seed, cell, 0, 64);
        let r1 = round_batch(seed, cell, 1, 64);
        let r5 = round_batch(seed, cell, 5, 64);
        assert!((64..=72).contains(&r0), "{r0}");
        assert!((128..=144).contains(&r1), "{r1}");
        assert!((2048..=2304).contains(&r5), "{r5}");
        // Pure function: same inputs, same batch; different cells differ
        // somewhere in the schedule.
        assert_eq!(r0, round_batch(seed, cell, 0, 64));
        assert!(
            (0..8).any(|r| round_batch(seed, cell, r, 64) != round_batch(seed, cell + 1, r, 64))
        );
        assert_eq!(round_batch(0, 0, 0, 0), round_batch(0, 0, 0, 1), "zero batch is clamped to 1");
    }

    #[test]
    fn checkpoint_state_round_trips() {
        let dir = std::env::temp_dir().join(format!("qad-roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut acc = MetricsAccumulator::new();
        acc.push(&crate::metrics::RunMetrics {
            rounds: 4,
            false_positives: 1,
            false_negatives: 2,
            data_lrcs: 3,
            ancilla_lrcs: 4,
            average_dlp: 0.125,
            final_dlp: 0.5,
            dlp_series: vec![0.0, 0.25, 0.125, 0.5],
            total_time_ns: 1234.5,
            lrc_time_ns: 200.0,
            logical_error: Some(true),
        });
        let state = CheckpointState {
            spec_fingerprint: 0xFEED_F00D,
            rounds: 3,
            cells: vec![
                CellTally { id: "surface_d3/x".to_string(), acc: acc.clone() },
                CellTally { id: "surface_d3/y".to_string(), acc: MetricsAccumulator::new() },
            ],
        };
        write_checkpoint_state(&dir, &state).unwrap();
        assert_eq!(read_checkpoint_state(&dir).unwrap(), state);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_spec_validation_rejects_bad_parameters() {
        assert!(AdaptiveSpec::default().validate().is_ok());
        let bad = |f: fn(&mut AdaptiveSpec)| {
            let mut spec = AdaptiveSpec::default();
            f(&mut spec);
            spec.validate()
        };
        assert!(bad(|s| s.target_rel_halfwidth = 0.0).is_err());
        assert!(bad(|s| s.target_rel_halfwidth = f64::NAN).is_err());
        assert!(bad(|s| s.confidence = 1.0).is_err());
        assert!(bad(|s| s.confidence = 0.2).is_err());
        assert!(bad(|s| s.initial_batch = 0).is_err());
    }
}
