//! `repro` — regenerate the paper's tables and figures from the command line.
//!
//! ```text
//! repro [--scale smoke|quick|paper] [--out DIR] [EXPERIMENT ...]
//! ```
//!
//! Without explicit experiment names every experiment is run. Results are printed as
//! text tables and written as JSON files under the output directory (default
//! `repro-results/`).

use std::fs;
use std::path::PathBuf;

use qec_experiments::report::{fmt_float, text_table, to_json};
use qec_experiments::runners::{self, Scale};

const EXPERIMENTS: &[&str] = &[
    "fig1", "fig3", "fig4b", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "table2", "table3", "table4", "table5", "table6",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut out_dir = PathBuf::from("repro-results");
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().as_deref() {
                Some("smoke") => scale = Scale::smoke(),
                Some("quick") => scale = Scale::quick(),
                Some("paper") => scale = Scale::paper(),
                other => {
                    eprintln!("unknown scale {other:?} (expected smoke|quick|paper)");
                    std::process::exit(2);
                }
            },
            "--out" => {
                if let Some(dir) = iter.next() {
                    out_dir = PathBuf::from(dir);
                }
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale smoke|quick|paper] [--out DIR] [EXPERIMENT ...]");
                println!("experiments: {}", EXPERIMENTS.join(", "));
                return;
            }
            name => selected.push(name.to_string()),
        }
    }
    if selected.is_empty() {
        selected = EXPERIMENTS.iter().map(|s| (*s).to_string()).collect();
    }
    fs::create_dir_all(&out_dir).expect("create output directory");

    for name in &selected {
        println!("=== {name} ===");
        let json = run_one(name, &scale);
        match json {
            Some(payload) => {
                let path = out_dir.join(format!("{name}.json"));
                fs::write(&path, payload).expect("write result file");
                println!("(saved {})\n", path.display());
            }
            None => println!("unknown experiment {name}; known: {}\n", EXPERIMENTS.join(", ")),
        }
    }
}

fn policy_table(results: &[qec_experiments::PolicyExperimentResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fmt_float(r.metrics.false_negatives),
                fmt_float(r.metrics.false_positives),
                fmt_float(r.metrics.data_lrcs),
                fmt_float(r.metrics.lrcs_per_round),
                fmt_float(r.metrics.average_dlp),
                fmt_float(r.metrics.final_dlp),
                r.metrics.logical_error_rate.map_or("-".to_string(), fmt_float),
            ]
        })
        .collect();
    text_table(
        &["policy", "FN", "FP", "data LRCs", "LRC/round", "avg DLP", "final DLP", "LER"],
        &rows,
    )
}

fn run_one(name: &str, scale: &Scale) -> Option<String> {
    match name {
        "fig1" => {
            let results = runners::fig1_headline(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "fig3" => {
            let result = runners::fig3_device_characterization(scale);
            println!("leaked-CNOT bit-flip probability: {}", fmt_float(result.leaked_cnot_bitflip));
            println!(
                "leakage population after 40 CNOTs: with injection {}, without {}",
                fmt_float(*result.accumulation_with_injection.last().unwrap_or(&0.0)),
                fmt_float(*result.accumulation_without_injection.last().unwrap_or(&0.0)),
            );
            Some(to_json(&result))
        }
        "fig4b" => {
            let rows = runners::fig4b_open_loop_ler(scale);
            print_ler(&rows);
            Some(to_json(&rows))
        }
        "fig5" => {
            let rows = runners::fig5_surface_pattern_usage(scale);
            print_patterns(&rows);
            Some(to_json(&rows))
        }
        "fig8" => {
            let (counts, usage) = runners::fig8_color_code(scale);
            let rows: Vec<Vec<String>> = counts
                .iter()
                .map(|c| {
                    vec![
                        c.policy.clone(),
                        c.width.to_string(),
                        format!("{}/{}", c.flagged, c.space),
                    ]
                })
                .collect();
            println!("{}", text_table(&["policy", "width", "flagged"], &rows));
            print_patterns(&usage);
            Some(to_json(&(counts, usage)))
        }
        "fig9" => {
            let results = runners::fig9_speculation_accuracy(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "fig10" => {
            let rows = runners::fig10_surface_dlp(scale);
            print_dlp(&rows);
            Some(to_json(&rows))
        }
        "fig11" => {
            let rows = runners::fig11_color_dlp(scale);
            print_dlp(&rows);
            Some(to_json(&rows))
        }
        "fig12" => {
            let rows = runners::fig12_ler_vs_distance(scale);
            print_ler(&rows);
            for policy in ["eraser+m", "gladiator+m"] {
                let lambda = runners::suppression_factor(&rows, policy);
                println!("suppression factor {policy}: {lambda:?}");
            }
            Some(to_json(&rows))
        }
        "fig13" => {
            let rows = runners::fig13_error_rate_sensitivity(scale);
            print_ler(&rows);
            Some(to_json(&rows))
        }
        "fig14" => {
            let rows = runners::fig14_distance_scaling(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.distance.to_string(),
                        r.policy.clone(),
                        fmt_float(r.average_dlp),
                        fmt_float(r.data_lrcs),
                    ]
                })
                .collect();
            println!("{}", text_table(&["d", "policy", "avg DLP", "data LRCs"], &table));
            Some(to_json(&rows))
        }
        "table2" => {
            let results = runners::table2_efficacy(scale);
            println!("{}", policy_table(&results));
            Some(to_json(&results))
        }
        "table3" => {
            let reports = runners::table3_lut_usage();
            let rows: Vec<Vec<String>> = reports
                .iter()
                .map(|r| {
                    vec![
                        r.distance.to_string(),
                        r.gladiator.to_string(),
                        r.eraser.to_string(),
                        format!("{:.1}x", r.reduction_factor()),
                    ]
                })
                .collect();
            println!("{}", text_table(&["d", "GLADIATOR LUTs", "ERASER LUTs", "reduction"], &rows));
            Some(to_json(&reports))
        }
        "table4" => {
            let rows = runners::table4_equilibrium(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.policy.clone(),
                        fmt_float(r.leakage_ratio),
                        fmt_float(r.p),
                        fmt_float(r.leakage_equilibrium),
                        fmt_float(r.inaccuracy_per_round),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["policy", "lr", "p", "equilibrium DLP", "inaccuracy/round"], &table)
            );
            Some(to_json(&rows))
        }
        "table5" => {
            let rows = runners::table5_code_families(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        r.code.clone(),
                        format!("{:.2}x", r.lrc_reduction),
                        format!("{:.2}x", r.dlp_reduction),
                        format!("{:.2}x", r.cycle_time_reduction),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["code", "LRC red.", "DLP red.", "cycle-time red."], &table)
            );
            Some(to_json(&rows))
        }
        "table6" => {
            let rows = runners::table6_mobility(scale);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    vec![
                        format!("{:.1}%", r.mobility_percent),
                        r.true_regime.clone(),
                        format!("{:.0}%", r.accuracy * 100.0),
                        fmt_float(r.estimated_conditional),
                    ]
                })
                .collect();
            println!(
                "{}",
                text_table(&["mobility", "true regime", "accuracy", "estimate"], &table)
            );
            Some(to_json(&rows))
        }
        _ => None,
    }
}

fn print_ler(rows: &[runners::LerRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.distance.to_string(),
                fmt_float(r.p),
                fmt_float(r.logical_error_rate),
                fmt_float(r.lrcs_per_round),
            ]
        })
        .collect();
    println!("{}", text_table(&["policy", "d", "p", "LER", "LRC/round"], &table));
}

fn print_dlp(rows: &[runners::DlpSeriesRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let final_dlp = r.dlp_series.last().copied().unwrap_or(0.0);
            vec![
                r.code.clone(),
                r.policy.clone(),
                fmt_float(r.leakage_ratio),
                fmt_float(final_dlp),
                fmt_float(r.lrcs_per_round),
            ]
        })
        .collect();
    println!("{}", text_table(&["code", "policy", "lr", "final DLP", "LRC/round"], &table));
}

fn print_patterns(rows: &[runners::PatternUsageRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .filter(|r| r.lrcs_with_leak + r.lrcs_without_leak > 0)
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:0width$b}", r.pattern, width = r.width),
                r.lrcs_with_leak.to_string(),
                r.lrcs_without_leak.to_string(),
            ]
        })
        .collect();
    println!("{}", text_table(&["policy", "pattern", "LRCs (leaked)", "LRCs (healthy)"], &table));
}
