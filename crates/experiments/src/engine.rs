//! The Monte-Carlo batch engine: prebuilt artifacts + per-thread contexts.
//!
//! [`BatchEngine`] is the throughput-oriented execution path for
//! [`ExperimentSpec`]s. Where the legacy per-shot path
//! ([`crate::harness::simulate_shot`]) rebuilds the offline GLADIATOR model, the
//! policy and a fresh [`Simulator`] for *every shot*, the engine builds each
//! code-derived artifact exactly once per experiment:
//!
//! * the [`PolicyFactory`] lazily builds the offline model / extractor / colouring
//!   once and shares them behind `Arc` with every policy instance,
//! * the union-find decoder and its space–time [`MatchingGraph`] are built once
//!   when decoding is requested,
//! * each rayon worker thread gets one long-lived [`Simulator`] + policy pair
//!   (a `ShotContext`), re-used across all shots the thread executes,
//! * across a *set* of policies ([`run_policy_set`]), one factory and one decoder
//!   serve every engine, so e.g. GLADIATOR+M and GLADIATOR-D+M share a single
//!   offline model build.
//!
//! # Seeding contract
//!
//! Shot `i` is simulated with RNG seed `spec.seed + i` (wrapping), exactly like
//! the legacy path: the worker calls [`Simulator::reseed`] (bit-identical to a
//! fresh construction) and [`LeakagePolicy::reset`] before every shot, so results
//! are **independent of thread count and scheduling** and bit-for-bit equal to
//! `simulate_shot` for every shot index. The determinism tests in
//! `crates/experiments/tests/batch_engine.rs` enforce this equivalence for every
//! [`PolicyKind`].

use std::sync::Arc;

use rayon::prelude::*;

use leakage_speculation::{PolicyFactory, PolicyKind};
use leaky_sim::{LeakagePolicy, RunRecord, Simulator};
use qec_codes::{CheckBasis, Code, MatchingGraph};
use qec_decoder::{logical_failure, DecoderBackend, DecoderKind, MemoryBasis, UnionFindDecoder};

use crate::harness::{ExperimentSpec, PolicyExperimentResult};
use crate::metrics::{AggregateMetrics, RunMetrics};

/// Reusable Monte-Carlo executor for one `(code, spec)` pair.
///
/// Construction cost is paid once; [`BatchEngine::run`], [`BatchEngine::map_records`]
/// and [`BatchEngine::run_records`] can then be called repeatedly (results are
/// deterministic functions of the spec). See the module docs for the seeding
/// contract.
#[derive(Debug)]
pub struct BatchEngine {
    spec: ExperimentSpec,
    factory: Arc<PolicyFactory>,
    decoder: Option<Arc<dyn DecoderBackend>>,
}

/// Per-worker-thread simulation state: one simulator and one policy instance,
/// reseeded/reset for every shot the thread picks up.
struct ShotContext {
    sim: Simulator,
    policy: Box<dyn LeakagePolicy + Send>,
}

/// Builds the shared union-find decoder for `rounds` noisy rounds plus the
/// final perfect measurement layer (`rounds + 1` graph layers).
#[must_use]
pub fn build_decoder(code: &Code, rounds: usize) -> Arc<UnionFindDecoder> {
    let graph = MatchingGraph::build(code, CheckBasis::Z, rounds + 1);
    Arc::new(UnionFindDecoder::new(graph))
}

/// Builds the selected decoder backend for `rounds` noisy rounds plus the
/// final perfect measurement layer. `None` selects union-find, the legacy
/// default of every path that predates backend selection.
///
/// # Errors
/// Returns the backend's validation error (unknown-family / d≠3 for the
/// lookup table, unmatchable code for union-find) instead of panicking.
pub fn build_backend(
    kind: Option<DecoderKind>,
    code: &Code,
    rounds: usize,
) -> Result<Arc<dyn DecoderBackend>, String> {
    match kind {
        None => Ok(build_decoder(code, rounds)),
        Some(kind) => kind.build(code, rounds + 1),
    }
}

impl BatchEngine {
    /// Builds the engine, eagerly constructing the decoder (when `spec.decode`)
    /// and the policy factory's shared artifacts for `spec.policy`.
    #[must_use]
    pub fn new(code: &Code, spec: &ExperimentSpec) -> Self {
        let decoder =
            spec.decode.then(|| -> Arc<dyn DecoderBackend> { build_decoder(code, spec.rounds) });
        let factory = Arc::new(PolicyFactory::new(code, &spec.gladiator));
        Self::with_shared(spec, factory, decoder)
    }

    /// Builds the engine around an existing factory (and decoder), so several
    /// engines — e.g. one per policy in a comparison — share one set of offline
    /// artifacts. The factory's code and calibration must match the spec.
    #[must_use]
    pub fn with_shared(
        spec: &ExperimentSpec,
        factory: Arc<PolicyFactory>,
        decoder: Option<Arc<dyn DecoderBackend>>,
    ) -> Self {
        assert_eq!(
            factory.config(),
            &spec.gladiator,
            "shared factory calibration must match the spec"
        );
        assert_eq!(decoder.is_some(), spec.decode, "decoder presence must match spec.decode");
        if let Some(decoder) = &decoder {
            assert_eq!(
                decoder.layers(),
                spec.rounds + 1,
                "shared decoder must cover spec.rounds + 1 measurement layers"
            );
        }
        // Force the shared artifacts now so the parallel phase starts hot and the
        // "built exactly once" property is trivially independent of thread timing.
        drop(factory.build(spec.policy));
        BatchEngine { spec: spec.clone(), factory, decoder }
    }

    /// The experiment specification driving this engine.
    #[must_use]
    pub fn spec(&self) -> &ExperimentSpec {
        &self.spec
    }

    /// The code under test.
    #[must_use]
    pub fn code(&self) -> &Code {
        self.factory.code()
    }

    /// The shared policy factory (exposed for artifact-sharing assertions).
    #[must_use]
    pub fn policy_factory(&self) -> &PolicyFactory {
        &self.factory
    }

    /// The prebuilt decoder backend, when decoding was requested.
    #[must_use]
    pub fn decoder(&self) -> Option<&dyn DecoderBackend> {
        self.decoder.as_deref()
    }

    fn context(&self) -> ShotContext {
        ShotContext {
            sim: Simulator::new(self.code(), self.spec.noise, self.spec.seed),
            policy: self.factory.build(self.spec.policy),
        }
    }

    /// Simulates shot `shot` in `ctx`, leaving the context ready for the next
    /// shot. The simulator side of the ritual is
    /// [`Simulator::reseed_for_shot`] (`seed + shot`, optional leakage
    /// sampling) — the same entry point closed-loop replay uses for divergence
    /// repair — plus the policy reset, so every execution path, traced, live
    /// or replayed, prepares shots identically and recorded traces can never
    /// drift from live runs.
    fn simulate_observed<S: leaky_sim::TraceSink>(
        &self,
        ctx: &mut ShotContext,
        shot: u64,
        sink: &mut S,
    ) -> RunRecord {
        ctx.sim.reseed_for_shot(self.spec.seed, shot, self.spec.leakage_sampling);
        ctx.policy.reset();
        ctx.sim.run_with_policy_observed(ctx.policy.as_mut(), self.spec.rounds, sink)
    }

    /// Simulates shot `shot` in `ctx` without observation.
    fn simulate_into(&self, ctx: &mut ShotContext, shot: u64) -> RunRecord {
        self.simulate_observed(ctx, shot, &mut leaky_sim::NullTraceSink)
    }

    fn score(&self, ctx: &mut ShotContext, shot: u64) -> RunMetrics {
        let run = self.simulate_into(ctx, shot);
        let mut metrics = RunMetrics::score(&run, self.spec.noise.lrc_time_ns);
        if let Some(decoder) = &self.decoder {
            let correction = decoder.decode_run(&run);
            metrics.logical_error =
                Some(logical_failure(self.code(), &run, &correction, MemoryBasis::Z));
        }
        metrics
    }

    /// Runs all shots in parallel and aggregates the metrics.
    #[must_use]
    pub fn run(&self) -> PolicyExperimentResult {
        let runs = self.score_range(0, self.spec.shots as u64);
        PolicyExperimentResult {
            policy: self.spec.policy.label().to_string(),
            code: self.code().name().to_string(),
            shots: self.spec.shots,
            rounds: self.spec.rounds,
            metrics: AggregateMetrics::from_runs(&runs),
        }
    }

    /// Scores the shots `start..end` (bounded by the spec's shot count) in
    /// parallel, returned in shot order — the chunked building block behind
    /// adaptive shot allocation. Exactly like
    /// [`BatchEngine::trace_records_range`], chunking cannot change a single
    /// bit: shot `i` is a pure function of `seed + i`, whatever range it
    /// lands in, so concatenating the results of consecutive ranges equals
    /// one big range and [`BatchEngine::run`] is itself implemented as
    /// `score_range(0, shots)`.
    #[must_use]
    pub fn score_range(&self, start: u64, end: u64) -> Vec<RunMetrics> {
        let end = end.min(self.spec.shots as u64);
        (start..end)
            .into_par_iter()
            .map_init(|| self.context(), |ctx, shot| self.score(ctx, shot))
            .collect()
    }

    /// Runs all shots in parallel, mapping each raw [`RunRecord`] through
    /// `extract` on the worker thread and returning the per-shot results in shot
    /// order. The record is dropped right after extraction, so peak memory is
    /// `O(shots · |R|)` rather than `O(shots · rounds · qubits)` — use this (not
    /// [`BatchEngine::run_records`]) for paper-scale shot counts.
    #[must_use]
    pub fn map_records<R, F>(&self, extract: F) -> Vec<R>
    where
        R: Send,
        F: Fn(u64, &RunRecord) -> R + Sync,
    {
        (0..self.spec.shots as u64)
            .into_par_iter()
            .map_init(
                || self.context(),
                |ctx, shot| {
                    let run = self.simulate_into(ctx, shot);
                    extract(shot, &run)
                },
            )
            .collect()
    }

    /// Runs all shots in parallel, recording each one into a
    /// [`qec_trace::ShotTrace`], returned in shot order.
    ///
    /// The traced runs follow the exact seeding contract of [`BatchEngine::run`]
    /// (observation never touches the RNG stream), and the shot-ordered return
    /// is what makes serialized trace bytes **independent of worker-thread
    /// count**: the writer consumes this vector sequentially.
    ///
    /// Materializes every shot of the run; at paper-scale shot counts use
    /// [`BatchEngine::trace_records_range`] to record in bounded chunks (as
    /// `record_into_corpus` does when streaming to disk).
    #[must_use]
    pub fn trace_records(&self) -> Vec<qec_trace::ShotTrace> {
        self.trace_records_range(0, self.spec.shots as u64)
    }

    /// Records the shots `start..end` (bounded by the spec's shot count), in
    /// shot order — the chunked building block behind flat-memory corpus
    /// recording. Chunking cannot change the bytes: shot `i` is a pure
    /// function of `seed + i`, whatever chunk it lands in.
    #[must_use]
    pub fn trace_records_range(&self, start: u64, end: u64) -> Vec<qec_trace::ShotTrace> {
        let end = end.min(self.spec.shots as u64);
        (start..end)
            .into_par_iter()
            .map_init(
                || self.context(),
                |ctx, shot| {
                    let mut recorder = qec_trace::ShotRecorder::new();
                    let _ = self.simulate_observed(ctx, shot, &mut recorder);
                    recorder.into_trace(shot)
                },
            )
            .collect()
    }

    /// Runs all shots in parallel and returns the raw run records in shot order.
    ///
    /// Every record is kept alive until the call returns; at large shot counts
    /// prefer [`BatchEngine::map_records`], which streams per-shot extraction.
    #[must_use]
    pub fn run_records(&self) -> Vec<RunRecord> {
        (0..self.spec.shots as u64)
            .into_par_iter()
            .map_init(|| self.context(), |ctx, shot| self.simulate_into(ctx, shot))
            .collect()
    }

    /// Simulates a single shot with a throw-away context. Prefer
    /// [`BatchEngine::map_records`] for many shots; this exists for spot checks and
    /// the equivalence tests against the legacy path.
    #[must_use]
    pub fn shot_record(&self, shot: u64) -> RunRecord {
        let mut ctx = self.context();
        self.simulate_into(&mut ctx, shot)
    }
}

/// Runs the same spec for several policies, preserving input order, with **one**
/// policy factory and **one** decoder shared by every engine in the set (the
/// engine-backed replacement driving `compare_policies`).
#[must_use]
pub fn run_policy_set(
    code: &Code,
    base: &ExperimentSpec,
    policies: &[PolicyKind],
) -> Vec<PolicyExperimentResult> {
    let factory = Arc::new(PolicyFactory::new(code, &base.gladiator));
    let decoder =
        base.decode.then(|| -> Arc<dyn DecoderBackend> { build_decoder(code, base.rounds) });
    policies
        .iter()
        .map(|&kind| {
            let spec = ExperimentSpec { policy: kind, ..base.clone() };
            BatchEngine::with_shared(&spec, Arc::clone(&factory), decoder.clone()).run()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn engine_matches_legacy_single_shot_path() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::GladiatorM).with_shots(4).with_rounds(8);
        let engine = BatchEngine::new(&code, &spec);
        for shot in 0..4u64 {
            assert_eq!(
                engine.shot_record(shot),
                crate::harness::simulate_shot(&code, &spec, shot),
                "shot {shot}"
            );
        }
    }

    #[test]
    fn context_reuse_across_shots_is_bit_identical_to_fresh_contexts() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::EraserM).with_shots(6).with_rounds(10);
        let engine = BatchEngine::new(&code, &spec);
        // One context serving all shots sequentially ...
        let mut ctx = engine.context();
        let reused: Vec<RunRecord> =
            (0..6u64).map(|shot| engine.simulate_into(&mut ctx, shot)).collect();
        // ... must equal a fresh context per shot.
        let fresh: Vec<RunRecord> = (0..6u64).map(|shot| engine.shot_record(shot)).collect();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn run_records_are_ordered_by_shot() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::NoLrc).with_shots(8).with_rounds(5);
        let engine = BatchEngine::new(&code, &spec);
        let parallel = engine.run_records();
        let sequential: Vec<RunRecord> = (0..8u64).map(|s| engine.shot_record(s)).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn score_range_chunks_concatenate_to_the_full_run() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::EraserM).with_shots(9).with_rounds(6);
        let engine = BatchEngine::new(&code, &spec);
        let whole = engine.score_range(0, 9);
        assert_eq!(whole.len(), 9);
        let mut chunked = engine.score_range(0, 4);
        chunked.extend(engine.score_range(4, 7));
        chunked.extend(engine.score_range(7, 99)); // end clamps to spec.shots
        assert_eq!(chunked, whole);
    }

    #[test]
    fn map_records_streams_the_same_data_as_run_records() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::EraserM).with_shots(5).with_rounds(6);
        let engine = BatchEngine::new(&code, &spec);
        let mapped: Vec<(u64, usize)> =
            engine.map_records(|shot, run| (shot, run.total_data_lrcs()));
        let full: Vec<usize> =
            engine.run_records().iter().map(RunRecord::total_data_lrcs).collect();
        assert_eq!(mapped.iter().map(|&(_, l)| l).collect::<Vec<_>>(), full);
        assert_eq!(mapped.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn engine_reuses_one_model_across_worker_policies() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::GladiatorDM).with_shots(12).with_rounds(4);
        let engine = BatchEngine::new(&code, &spec);
        let model = Arc::clone(engine.policy_factory().model());
        let baseline = Arc::strong_count(&model);
        let _ = engine.run();
        // After the run every worker context is dropped again: no model copies leak,
        // and no worker built its own (the factory's OnceLock can only fill once).
        assert_eq!(Arc::strong_count(&model), baseline);
        assert!(Arc::ptr_eq(&model, engine.policy_factory().model()));
    }

    #[test]
    fn decoding_engine_produces_logical_error_rate() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::AlwaysLrc)
            .with_shots(6)
            .with_rounds(6)
            .with_decode(true);
        let engine = BatchEngine::new(&code, &spec);
        assert!(engine.decoder().is_some());
        let result = engine.run();
        let ler = result.metrics.logical_error_rate.expect("decoded");
        assert!((0.0..=1.0).contains(&ler));
    }

    #[test]
    fn run_policy_set_preserves_order() {
        let code = Code::rotated_surface(3);
        let base = ExperimentSpec::quick(PolicyKind::NoLrc).with_shots(2).with_rounds(4);
        let results = run_policy_set(&code, &base, &[PolicyKind::Ideal, PolicyKind::MlrOnly]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].policy, "ideal");
        assert_eq!(results[1].policy, "mlr-only");
    }

    #[test]
    fn policy_set_shares_one_factory_and_matches_independent_engines() {
        let code = Code::rotated_surface(3);
        let base = ExperimentSpec::quick(PolicyKind::Gladiator).with_shots(3).with_rounds(6);
        let kinds = [PolicyKind::Gladiator, PolicyKind::GladiatorDM, PolicyKind::EraserM];
        let shared = run_policy_set(&code, &base, &kinds);
        // The shared-artifact path must reproduce per-policy engines bit for bit.
        for (result, &kind) in shared.iter().zip(&kinds) {
            let spec = ExperimentSpec { policy: kind, ..base.clone() };
            assert_eq!(result, &BatchEngine::new(&code, &spec).run(), "{kind:?}");
        }
    }
}
