//! Monte-Carlo experiment driver.
//!
//! [`run_policy_experiment`] and [`compare_policies`] are thin wrappers over the
//! [`crate::engine::BatchEngine`], which owns every code-derived artifact for the
//! duration of an experiment (offline GLADIATOR model, pattern extractor, decoder
//! and matching graph) and reuses one `Simulator` + policy pair per worker thread.
//!
//! # Seeding contract
//!
//! Shot `i` of a spec runs under RNG seed `spec.seed + i` (wrapping add). This
//! holds identically on the engine path and on the legacy reference path
//! ([`simulate_shot`], which rebuilds everything per shot), so the two are
//! interchangeable bit for bit; results never depend on thread count, scheduling
//! or whether shots are executed in order. Re-running any spec reproduces the
//! exact same [`PolicyExperimentResult`].
//!
//! [`simulate_shot`] is kept as the *reference semantics* of one shot — the
//! determinism tests pin the engine against it — and for callers that genuinely
//! want a single run without amortizable setup.

use serde::{Deserialize, Serialize};

use gladiator::GladiatorConfig;
use leakage_speculation::{build_policy, PolicyKind};
use leaky_sim::{NoiseParams, RunRecord, Simulator};
use qec_codes::Code;

use crate::engine::{run_policy_set, BatchEngine};
use crate::metrics::AggregateMetrics;

/// Full specification of one policy experiment (code is passed separately so specs can
/// be reused across codes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Which leakage-mitigation policy to drive.
    pub policy: PolicyKind,
    /// Circuit-level noise parameters.
    pub noise: NoiseParams,
    /// Calibration of the GLADIATOR offline model.
    pub gladiator: GladiatorConfig,
    /// QEC rounds per shot.
    pub rounds: usize,
    /// Number of Monte-Carlo shots.
    pub shots: usize,
    /// Base RNG seed (shot `i` uses `seed + i`).
    pub seed: u64,
    /// Leakage sampling (Section 6): start every shot with one leaked data qubit.
    pub leakage_sampling: bool,
    /// Decode each shot with the union-find decoder and report a logical error rate.
    pub decode: bool,
}

impl ExperimentSpec {
    /// A small, fast configuration used by tests and quick benchmark runs.
    #[must_use]
    pub fn quick(policy: PolicyKind) -> Self {
        ExperimentSpec {
            policy,
            noise: NoiseParams::default(),
            gladiator: GladiatorConfig::default(),
            rounds: 20,
            shots: 16,
            seed: 2025,
            leakage_sampling: true,
            decode: false,
        }
    }

    /// Replaces the shot count.
    #[must_use]
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Replaces the round count.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Replaces the noise model.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseParams) -> Self {
        self.noise = noise;
        self
    }

    /// Enables or disables decoding.
    #[must_use]
    pub fn with_decode(mut self, decode: bool) -> Self {
        self.decode = decode;
        self
    }

    /// Enables or disables leakage sampling.
    #[must_use]
    pub fn with_leakage_sampling(mut self, sampling: bool) -> Self {
        self.leakage_sampling = sampling;
        self
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the GLADIATOR calibration and keeps it consistent with the noise model.
    #[must_use]
    pub fn with_gladiator(mut self, config: GladiatorConfig) -> Self {
        self.gladiator = config;
        self
    }

    /// Derives the GLADIATOR calibration from the current noise parameters (same `p`
    /// and leakage ratio), which is how the paper recalibrates the offline model.
    #[must_use]
    pub fn calibrated(mut self) -> Self {
        self.gladiator = self
            .gladiator
            .with_error_rate(self.noise.p)
            .with_leakage_ratio(self.noise.leakage_ratio);
        self
    }
}

/// Result of running one [`ExperimentSpec`] against one code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyExperimentResult {
    /// Label of the policy that produced the result.
    pub policy: String,
    /// Name of the code.
    pub code: String,
    /// Number of shots executed.
    pub shots: usize,
    /// Rounds per shot.
    pub rounds: usize,
    /// Aggregated metrics.
    pub metrics: AggregateMetrics,
}

/// Runs one policy experiment, parallelizing shots across threads.
///
/// Delegates to a fresh [`BatchEngine`]: all code-derived artifacts are built once
/// and per-thread simulator/policy contexts are reused across shots. Callers that
/// run several experiments against the same `(code, spec-shape)` can hold a
/// [`BatchEngine`] themselves to amortize construction further.
#[must_use]
pub fn run_policy_experiment(code: &Code, spec: &ExperimentSpec) -> PolicyExperimentResult {
    BatchEngine::new(code, spec).run()
}

/// Runs a single shot and returns the raw run record.
///
/// This is the **legacy reference path**: it deliberately rebuilds the policy (and
/// with it the offline model) and a fresh [`Simulator`] on every call, defining the
/// semantics one shot must have. The batch engine is tested to be bit-for-bit
/// identical to this function under the `seed + shot` contract; use
/// [`BatchEngine::run_records`] when simulating many shots.
#[must_use]
pub fn simulate_shot(code: &Code, spec: &ExperimentSpec, shot: u64) -> RunRecord {
    let mut policy = build_policy(spec.policy, code, &spec.gladiator);
    let mut sim = Simulator::new(code, spec.noise, spec.seed.wrapping_add(shot));
    if spec.leakage_sampling {
        sim.seed_random_data_leakage(1);
    }
    sim.run_with_policy(policy.as_mut(), spec.rounds)
}

/// Runs the same spec for several policies and returns the results in order.
#[must_use]
pub fn compare_policies(
    code: &Code,
    base: &ExperimentSpec,
    policies: &[PolicyKind],
) -> Vec<PolicyExperimentResult> {
    run_policy_set(code, base, policies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_runs_and_aggregates() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::EraserM).with_shots(6).with_rounds(12);
        let result = run_policy_experiment(&code, &spec);
        assert_eq!(result.shots, 6);
        assert_eq!(result.rounds, 12);
        assert_eq!(result.metrics.dlp_series.len(), 12);
        assert_eq!(result.policy, "eraser+m");
    }

    #[test]
    fn leakage_sampling_starts_with_nonzero_dlp() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::NoLrc)
            .with_shots(4)
            .with_rounds(3)
            .with_leakage_sampling(true);
        let result = run_policy_experiment(&code, &spec);
        assert!(
            result.metrics.dlp_series[0] > 0.0,
            "leakage sampling must seed at least one leaked qubit"
        );
    }

    #[test]
    fn decoding_produces_a_logical_error_rate() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::GladiatorM)
            .with_shots(8)
            .with_rounds(6)
            .with_decode(true);
        let result = run_policy_experiment(&code, &spec);
        let ler = result.metrics.logical_error_rate.expect("decoded");
        assert!((0.0..=1.0).contains(&ler));
    }

    #[test]
    fn results_are_deterministic_for_a_fixed_seed() {
        let code = Code::rotated_surface(3);
        let spec = ExperimentSpec::quick(PolicyKind::GladiatorDM).with_shots(5).with_rounds(8);
        let a = run_policy_experiment(&code, &spec);
        let b = run_policy_experiment(&code, &spec);
        assert_eq!(a, b);
    }

    #[test]
    fn compare_policies_preserves_order() {
        let code = Code::rotated_surface(3);
        let base = ExperimentSpec::quick(PolicyKind::NoLrc).with_shots(2).with_rounds(4);
        let results = compare_policies(&code, &base, &[PolicyKind::AlwaysLrc, PolicyKind::Ideal]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].policy, "always-lrc");
        assert_eq!(results[1].policy, "ideal");
    }

    #[test]
    fn calibrated_spec_copies_noise_into_the_gladiator_model() {
        let noise = NoiseParams::builder().physical_error_rate(1e-4).leakage_ratio(1.0).build();
        let spec = ExperimentSpec::quick(PolicyKind::Gladiator).with_noise(noise).calibrated();
        assert!((spec.gladiator.p - 1e-4).abs() < 1e-15);
        assert!((spec.gladiator.leakage_ratio - 1.0).abs() < 1e-12);
    }
}
