//! Experiment harness reproducing the evaluation of the GLADIATOR paper.
//!
//! The crate glues the whole workspace together: it runs the leakage-aware simulator
//! (`leaky-sim`) closed-loop with every speculation policy (`leakage-speculation`),
//! scores the runs with the paper's metrics, optionally decodes them (`qec-decoder`),
//! and exposes one *runner* per table and figure of the paper (see [`runners`]).
//!
//! * [`metrics`] — Data Leakage Population (DLP), LRC usage, false positives /
//!   negatives, speculation inaccuracy, cycle-time overhead.
//! * [`engine`] — the [`engine::BatchEngine`]: the throughput execution path. It
//!   owns every code-derived artifact for an experiment (offline GLADIATOR model,
//!   pattern extractor, union-find decoder + matching graph) and drives a
//!   rayon-parallel pool of per-thread `Simulator` + policy contexts. Shot `i`
//!   always runs under seed `spec.seed + i`, so results are bit-for-bit
//!   reproducible and independent of thread count (the *seeding contract*); worker
//!   threads reuse their context across shots via `Simulator::reseed` +
//!   `LeakagePolicy::reset` (the *thread-reuse model*).
//! * [`harness`] — [`ExperimentSpec`] plus thin engine-backed drivers
//!   ([`run_policy_experiment`], [`harness::compare_policies`]) and the legacy
//!   single-shot reference path ([`harness::simulate_shot`]) the engine is tested
//!   against.
//! * [`runners`] — one function per experiment (Figure 1(b,c), 3, 4(b), 5, 8–14 and
//!   Tables 2–6), each returning serializable rows and printable summaries.
//! * [`scenario`] — the declarative workload unit: a [`scenario::Scenario`] names one
//!   `(code family, distance, rounds, p, lr, policy, shots, seed)` cell as plain
//!   serializable data.
//! * [`sweep`] — grid orchestration: [`sweep::SweepSpec`] expands a parameter grid to
//!   scenarios, [`sweep::run_sweep`] executes them with shared artifacts across cells
//!   and returns a schema-versioned [`sweep::SweepReport`]; [`sweep::snapshot`] is the
//!   pinned perf snapshot behind the CI regression gate.
//! * [`replay`] — corpus-backed evaluation over `qec-trace`: record each policy-free
//!   scenario cell once ([`replay::record_into_corpus`]), replay any policy against
//!   the recorded observables ([`replay::replay_cell`], [`replay::replay_corpus`])
//!   with bit-for-bit fidelity for the recording policy — or **closed-loop**
//!   ([`replay::replay_cell_closed_loop`], [`replay::ReplayMode::ClosedLoop`]),
//!   which repairs each shot's first schedule divergence by re-simulating from
//!   that round under the recorded seed contract and makes *every* policy's
//!   metrics (DLP and LER included) bit-for-bit a from-scratch live run, with
//!   per-round divergence profiles; [`sweep::run_sweep_with_corpus`] for whole
//!   grids in either mode; [`replay::trace_snapshot`] is the trace perf
//!   snapshot (record/encode/decode/replay-vs-resim/closed-loop).
//! * [`report`] — table formatting, JSON export, and the line-per-benchmark snapshot
//!   format ([`report::BenchLine`]) shared with `crates/bench/BENCH_baseline.json`,
//!   including the baseline comparison the CI perf gate runs.
//!
//! # Example
//!
//! ```
//! use qec_experiments::harness::{ExperimentSpec, run_policy_experiment};
//! use leakage_speculation::PolicyKind;
//! use qec_codes::Code;
//!
//! let code = Code::rotated_surface(3);
//! let spec = ExperimentSpec::quick(PolicyKind::GladiatorM).with_shots(4).with_rounds(10);
//! let result = run_policy_experiment(&code, &spec);
//! assert_eq!(result.shots, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod engine;
pub mod harness;
pub mod metrics;
pub mod replay;
pub mod report;
pub mod runners;
pub mod scenario;
pub mod sweep;

pub use adaptive::{
    read_checkpoint_state, resume_adaptive, run_adaptive, AdaptiveOutcome, AdaptiveSpec,
    CheckpointState, StopReason,
};
pub use engine::BatchEngine;
pub use harness::{run_policy_experiment, ExperimentSpec, PolicyExperimentResult};
pub use metrics::{AggregateMetrics, MetricsAccumulator, RunMetrics};
pub use replay::{
    evaluate_cell, evaluate_cell_set, evaluation_row, replay_cell_closed_loop_shared,
    replay_corpus, replay_corpus_with_stats, CellCheckpointStats, CellReplay, CheckpointStats,
    LoadedCell, ReplayCellResult, ReplayMode, ReplayOptions, ReplayReport,
};
pub use scenario::{CodeFamily, Scenario};
pub use sweep::{
    run_scenarios, run_sweep, run_sweep_with_corpus, SweepCell, SweepReport, SweepSpec,
};
