//! Experiment harness reproducing the evaluation of the GLADIATOR paper.
//!
//! The crate glues the whole workspace together: it runs the leakage-aware simulator
//! (`leaky-sim`) closed-loop with every speculation policy (`leakage-speculation`),
//! scores the runs with the paper's metrics, optionally decodes them (`qec-decoder`),
//! and exposes one *runner* per table and figure of the paper (see [`runners`]).
//!
//! * [`metrics`] — Data Leakage Population (DLP), LRC usage, false positives /
//!   negatives, speculation inaccuracy, cycle-time overhead.
//! * [`harness`] — Monte-Carlo driver: shots are parallelized with rayon and seeded
//!   deterministically, with optional *leakage sampling* (each shot starts with at
//!   least one leaked data qubit, Section 6 of the paper).
//! * [`runners`] — one function per experiment (Figure 1(b,c), 3, 4(b), 5, 8–14 and
//!   Tables 2–6), each returning serializable rows and printable summaries.
//! * [`report`] — lightweight table formatting and JSON export used by the `repro`
//!   binary and the Criterion benches.
//!
//! # Example
//!
//! ```
//! use qec_experiments::harness::{ExperimentSpec, run_policy_experiment};
//! use leakage_speculation::PolicyKind;
//! use qec_codes::Code;
//!
//! let code = Code::rotated_surface(3);
//! let spec = ExperimentSpec::quick(PolicyKind::GladiatorM).with_shots(4).with_rounds(10);
//! let result = run_policy_experiment(&code, &spec);
//! assert_eq!(result.shots, 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;
pub mod metrics;
pub mod report;
pub mod runners;

pub use harness::{run_policy_experiment, ExperimentSpec, PolicyExperimentResult};
pub use metrics::{AggregateMetrics, RunMetrics};
