//! Evaluation metrics (Section 7 of the paper).

use serde::{Deserialize, Serialize};

use leaky_sim::RunRecord;

/// Per-shot speculation metrics extracted from one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of simulated rounds.
    pub rounds: usize,
    /// LRCs applied to data qubits that were *not* leaked at the time (false positives).
    pub false_positives: usize,
    /// (round, qubit) occurrences of a leaked data qubit that did not receive an LRC
    /// that round (false negatives / undetected leakage).
    pub false_negatives: usize,
    /// Total LRCs applied to data qubits.
    pub data_lrcs: usize,
    /// Total LRCs applied to parity qubits.
    pub ancilla_lrcs: usize,
    /// Average data-leakage population over the run (DLP).
    pub average_dlp: f64,
    /// Data-leakage population of the final round.
    pub final_dlp: f64,
    /// Per-round data-leakage population.
    pub dlp_series: Vec<f64>,
    /// Total simulated wall-clock time under the cycle-time model, in ns.
    pub total_time_ns: f64,
    /// The part of the wall-clock time attributable to LRC gadgets, in ns.
    pub lrc_time_ns: f64,
    /// Whether the decoded run ended in a logical error (only populated when decoding
    /// was requested).
    pub logical_error: Option<bool>,
}

impl RunMetrics {
    /// Scores a single simulated run. `lrc_time_ns` is the per-gadget latency used to
    /// attribute cycle-time overhead to leakage mitigation.
    #[must_use]
    pub fn score(run: &RunRecord, lrc_time_ns: f64) -> Self {
        let mut false_positives = 0usize;
        let mut false_negatives = 0usize;
        let mut data_lrcs = 0usize;
        let mut ancilla_lrcs = 0usize;
        for round in &run.rounds {
            data_lrcs += round.data_lrcs.len();
            ancilla_lrcs += round.ancilla_lrcs.len();
            for &q in &round.data_lrcs {
                if !round.data_leak_before[q] {
                    false_positives += 1;
                }
            }
            for (q, &leaked) in round.data_leak_before.iter().enumerate() {
                if leaked && !round.data_lrcs.contains(&q) {
                    false_negatives += 1;
                }
            }
        }
        let dlp_series: Vec<f64> = run.rounds.iter().map(|r| r.data_leak_fraction()).collect();
        let total_lrcs = data_lrcs + ancilla_lrcs;
        RunMetrics {
            rounds: run.num_rounds(),
            false_positives,
            false_negatives,
            data_lrcs,
            ancilla_lrcs,
            average_dlp: run.average_data_leak_fraction(),
            final_dlp: run.final_data_leak_fraction(),
            dlp_series,
            total_time_ns: run.total_time_ns(),
            lrc_time_ns: lrc_time_ns * total_lrcs as f64,
            logical_error: None,
        }
    }

    /// Scores a *replayed* speculation schedule against a recorded run: the
    /// policy's per-round planned LRCs (`planned`) are judged against the
    /// run's ground-truth leak flags, and the cycle-time model re-prices each
    /// round for the planned schedule.
    ///
    /// When `planned` equals the run's recorded schedule (replaying the
    /// policy that recorded the trace), this is **bit-for-bit identical** to
    /// [`RunMetrics::score`] of the live run — same counting loops, same f64
    /// accumulation order. DLP fields always describe the recorded execution
    /// (a different policy's counterfactual leakage lifetimes are unknowable
    /// without re-simulating).
    ///
    /// # Panics
    /// Panics when `planned` and the run disagree on the round count.
    #[must_use]
    pub fn score_replay(
        run: &RunRecord,
        planned: &[leaky_sim::LrcRequest],
        noise: &leaky_sim::NoiseParams,
        cnot_layers: usize,
    ) -> Self {
        assert_eq!(planned.len(), run.rounds.len(), "one planned request per round");
        let mut false_positives = 0usize;
        let mut false_negatives = 0usize;
        let mut data_lrcs = 0usize;
        let mut ancilla_lrcs = 0usize;
        let mut total_time_ns = 0.0f64;
        for (round, plan) in run.rounds.iter().zip(planned) {
            data_lrcs += plan.data.len();
            ancilla_lrcs += plan.ancilla.len();
            for &q in &plan.data {
                if !round.data_leak_before[q] {
                    false_positives += 1;
                }
            }
            for (q, &leaked) in round.data_leak_before.iter().enumerate() {
                if leaked && !plan.data.contains(&q) {
                    false_negatives += 1;
                }
            }
            total_time_ns +=
                noise.base_round_ns(cnot_layers) + noise.lrc_time_ns * plan.len() as f64;
        }
        let dlp_series: Vec<f64> = run.rounds.iter().map(|r| r.data_leak_fraction()).collect();
        let total_lrcs = data_lrcs + ancilla_lrcs;
        RunMetrics {
            rounds: run.num_rounds(),
            false_positives,
            false_negatives,
            data_lrcs,
            ancilla_lrcs,
            average_dlp: run.average_data_leak_fraction(),
            final_dlp: run.final_data_leak_fraction(),
            dlp_series,
            total_time_ns,
            lrc_time_ns: noise.lrc_time_ns * total_lrcs as f64,
            logical_error: None,
        }
    }

    /// Total LRC count (data + parity).
    #[must_use]
    pub fn total_lrcs(&self) -> usize {
        self.data_lrcs + self.ancilla_lrcs
    }

    /// Speculation inaccuracy: false positives plus false negatives, normalized per round.
    #[must_use]
    pub fn inaccuracy_per_round(&self) -> f64 {
        if self.rounds == 0 {
            return 0.0;
        }
        (self.false_positives + self.false_negatives) as f64 / self.rounds as f64
    }
}

/// Aggregated metrics over many shots of one experiment configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AggregateMetrics {
    /// Number of shots aggregated.
    pub shots: usize,
    /// Mean false positives per shot.
    pub false_positives: f64,
    /// Mean false negatives per shot.
    pub false_negatives: f64,
    /// Mean data LRCs per shot.
    pub data_lrcs: f64,
    /// Mean parity LRCs per shot.
    pub ancilla_lrcs: f64,
    /// Mean data LRCs per round (the paper's "LRC usage rate").
    pub lrcs_per_round: f64,
    /// Mean data-leakage population over rounds and shots (DLP).
    pub average_dlp: f64,
    /// Mean final-round data-leakage population.
    pub final_dlp: f64,
    /// Per-round DLP averaged across shots.
    pub dlp_series: Vec<f64>,
    /// Mean speculation inaccuracy (FP + FN) per round.
    pub inaccuracy_per_round: f64,
    /// Mean total time per shot (ns).
    pub total_time_ns: f64,
    /// Mean LRC-attributable time per shot (ns).
    pub lrc_time_ns: f64,
    /// Logical error rate over the decoded shots, when decoding was enabled.
    pub logical_error_rate: Option<f64>,
}

impl AggregateMetrics {
    /// Aggregates a set of per-shot metrics.
    ///
    /// Implemented as a fold over a [`MetricsAccumulator`], so aggregating a
    /// complete run vector and pushing the same runs incrementally (in shot
    /// order, across any batch boundaries) execute the *same* sequence of
    /// f64 additions and produce bit-identical aggregates.
    #[must_use]
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        let mut acc = MetricsAccumulator::new();
        for run in runs {
            acc.push(run);
        }
        acc.finalize()
    }

    /// Normalized QEC cycle time in ns (total time divided by rounds), using the mean
    /// series length.
    #[must_use]
    pub fn cycle_time_ns(&self) -> f64 {
        if self.dlp_series.is_empty() {
            return 0.0;
        }
        self.total_time_ns / self.dlp_series.len() as f64
    }
}

/// Incremental, checkpointable aggregation state for [`RunMetrics`].
///
/// Runs are pushed **in shot order**; the accumulator keeps plain left-fold
/// partial sums (never running means), so its state after shot `k` is a pure
/// function of shots `0..=k` — independent of how the stream was batched.
/// Persisting every field bit-exactly (the adaptive sweep checkpoint stores
/// each f64 via its raw IEEE-754 bits) and restoring it mid-stream therefore
/// continues the *same* addition sequence, and [`MetricsAccumulator::finalize`]
/// yields aggregates byte-identical to an uninterrupted
/// [`AggregateMetrics::from_runs`] over the whole stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsAccumulator {
    /// Shots pushed so far.
    pub shots: usize,
    /// Sum of per-shot false positives.
    pub false_positives: f64,
    /// Sum of per-shot false negatives.
    pub false_negatives: f64,
    /// Sum of per-shot data LRC counts.
    pub data_lrcs: f64,
    /// Sum of per-shot parity LRC counts.
    pub ancilla_lrcs: f64,
    /// Sum of per-shot round counts.
    pub rounds: f64,
    /// Sum of per-shot average DLP.
    pub average_dlp: f64,
    /// Sum of per-shot final-round DLP.
    pub final_dlp: f64,
    /// Per-round DLP sums (index = round; grown to the longest series seen).
    pub dlp_series: Vec<f64>,
    /// Sum of per-shot speculation inaccuracy per round.
    pub inaccuracy_per_round: f64,
    /// Sum of per-shot total times (ns).
    pub total_time_ns: f64,
    /// Sum of per-shot LRC-attributable times (ns).
    pub lrc_time_ns: f64,
    /// Shots that carried a decode verdict.
    pub decoded: usize,
    /// Decoded shots that ended in a logical error.
    pub errors: usize,
    /// Shots whose final-round DLP was non-zero (the Bernoulli proxy for
    /// cells swept without a decoder).
    pub dlp_events: usize,
}

impl MetricsAccumulator {
    /// A fresh, empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        MetricsAccumulator::default()
    }

    /// Folds one run into the partial sums. Callers must push runs in shot
    /// order to keep the f64 addition sequence canonical.
    pub fn push(&mut self, run: &RunMetrics) {
        self.shots += 1;
        self.false_positives += run.false_positives as f64;
        self.false_negatives += run.false_negatives as f64;
        self.data_lrcs += run.data_lrcs as f64;
        self.ancilla_lrcs += run.ancilla_lrcs as f64;
        self.rounds += run.rounds as f64;
        self.average_dlp += run.average_dlp;
        self.final_dlp += run.final_dlp;
        if self.dlp_series.len() < run.dlp_series.len() {
            self.dlp_series.resize(run.dlp_series.len(), 0.0);
        }
        for (i, &v) in run.dlp_series.iter().enumerate() {
            self.dlp_series[i] += v;
        }
        self.inaccuracy_per_round += run.inaccuracy_per_round();
        self.total_time_ns += run.total_time_ns;
        self.lrc_time_ns += run.lrc_time_ns;
        if let Some(error) = run.logical_error {
            self.decoded += 1;
            if error {
                self.errors += 1;
            }
        }
        if run.final_dlp > 0.0 {
            self.dlp_events += 1;
        }
    }

    /// The `(failures, trials)` Bernoulli tally driving adaptive stopping:
    /// decoded logical errors over decoded shots when decoding ran, otherwise
    /// shots that ended with a non-zero final DLP over all shots (the
    /// leakage-population proxy for cells swept without a decoder).
    #[must_use]
    pub fn bernoulli_tally(&self) -> (u64, u64) {
        if self.decoded > 0 {
            (self.errors as u64, self.decoded as u64)
        } else {
            (self.dlp_events as u64, self.shots as u64)
        }
    }

    /// Divides the partial sums into the final [`AggregateMetrics`]. Every
    /// mean is a single `sum / n` at the end, so the result depends only on
    /// the accumulated state, not on when (or how often) it is finalized.
    #[must_use]
    pub fn finalize(&self) -> AggregateMetrics {
        if self.shots == 0 {
            return AggregateMetrics::default();
        }
        let n = self.shots as f64;
        let rounds_mean = (self.rounds / n).max(1.0);
        let logical_error_rate =
            (self.decoded > 0).then(|| self.errors as f64 / self.decoded as f64);
        AggregateMetrics {
            shots: self.shots,
            false_positives: self.false_positives / n,
            false_negatives: self.false_negatives / n,
            data_lrcs: self.data_lrcs / n,
            ancilla_lrcs: self.ancilla_lrcs / n,
            lrcs_per_round: self.data_lrcs / n / rounds_mean,
            average_dlp: self.average_dlp / n,
            final_dlp: self.final_dlp / n,
            dlp_series: self.dlp_series.iter().map(|&sum| sum / n).collect(),
            inaccuracy_per_round: self.inaccuracy_per_round / n,
            total_time_ns: self.total_time_ns / n,
            lrc_time_ns: self.lrc_time_ns / n,
            logical_error_rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leaky_sim::{policy::NeverLrc, LrcRequest, NoiseParams, Simulator};
    use qec_codes::Code;

    fn quiet_noise() -> NoiseParams {
        NoiseParams::builder()
            .physical_error_rate(0.0)
            .leakage_ratio(0.0)
            .mobility(0.0)
            .mlr_false_flag(0.0)
            .build()
    }

    #[test]
    fn unnecessary_lrc_counts_as_false_positive() {
        let code = Code::rotated_surface(3);
        let mut sim = Simulator::new(&code, quiet_noise(), 1);
        let mut policy = CountingPolicy { fire_round: 0 };
        let run = sim.run_with_policy(&mut policy, 2);
        let metrics = RunMetrics::score(&run, 100.0);
        assert_eq!(metrics.false_positives, 2);
        assert_eq!(metrics.false_negatives, 0);
        assert_eq!(metrics.data_lrcs, 2);
    }

    /// Test helper: requests two data LRCs in one specific round, nothing otherwise.
    struct CountingPolicy {
        fire_round: usize,
    }

    impl leaky_sim::LeakagePolicy for CountingPolicy {
        fn name(&self) -> &str {
            "counting"
        }
        fn plan_lrcs(&mut self, ctx: &leaky_sim::PolicyContext<'_>) -> LrcRequest {
            if ctx.round == self.fire_round {
                LrcRequest { data: vec![0, 1], ancilla: vec![] }
            } else {
                LrcRequest::none()
            }
        }
    }

    #[test]
    fn unmitigated_leak_counts_as_false_negative_every_round() {
        let code = Code::rotated_surface(3);
        let mut sim = Simulator::new(&code, quiet_noise(), 2);
        sim.inject_data_leakage(4);
        let run = sim.run_with_policy(&mut NeverLrc, 5);
        let metrics = RunMetrics::score(&run, 100.0);
        assert_eq!(metrics.false_negatives, 5);
        assert_eq!(metrics.false_positives, 0);
        assert!(metrics.average_dlp > 0.0);
        assert!((metrics.final_dlp - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_means_are_consistent() {
        let code = Code::rotated_surface(3);
        let runs: Vec<RunMetrics> = (0..4)
            .map(|seed| {
                let mut sim = Simulator::new(&code, NoiseParams::default(), seed);
                let run = sim.run_with_policy(&mut NeverLrc, 10);
                RunMetrics::score(&run, 100.0)
            })
            .collect();
        let agg = AggregateMetrics::from_runs(&runs);
        assert_eq!(agg.shots, 4);
        assert_eq!(agg.dlp_series.len(), 10);
        let manual: f64 = runs.iter().map(|r| r.false_negatives as f64).sum::<f64>() / 4.0;
        assert!((agg.false_negatives - manual).abs() < 1e-12);
        assert!(agg.logical_error_rate.is_none());
    }

    #[test]
    fn empty_aggregate_is_all_zero() {
        let agg = AggregateMetrics::from_runs(&[]);
        assert_eq!(agg.shots, 0);
        assert!(agg.dlp_series.is_empty());
    }

    #[test]
    fn incremental_accumulation_is_bit_identical_across_batch_boundaries() {
        let code = Code::rotated_surface(3);
        let runs: Vec<RunMetrics> = (0..7)
            .map(|seed| {
                let mut sim = Simulator::new(&code, NoiseParams::default(), seed);
                let run = sim.run_with_policy(&mut NeverLrc, 8);
                RunMetrics::score(&run, 100.0)
            })
            .collect();
        let whole = AggregateMetrics::from_runs(&runs);
        // Any batching of the same shot-ordered stream must finalize to the
        // exact same bytes (this is the adaptive resume oracle's foundation).
        for split in [1usize, 2, 3, 6] {
            let mut acc = MetricsAccumulator::new();
            for run in &runs[..split] {
                acc.push(run);
            }
            // A mid-stream finalize must not perturb later pushes.
            let _ = acc.finalize();
            for run in &runs[split..] {
                acc.push(run);
            }
            let batched = acc.finalize();
            assert_eq!(batched, whole, "split at {split}");
            assert_eq!(
                serde_json::to_string(&batched).unwrap(),
                serde_json::to_string(&whole).unwrap(),
                "split at {split}"
            );
        }
        let mut acc = MetricsAccumulator::new();
        runs.iter().for_each(|r| acc.push(r));
        assert_eq!(acc.bernoulli_tally().1, 7, "undecoded runs tally over all shots");
    }

    #[test]
    fn inaccuracy_combines_fp_and_fn() {
        let metrics = RunMetrics {
            rounds: 10,
            false_positives: 3,
            false_negatives: 7,
            data_lrcs: 3,
            ancilla_lrcs: 0,
            average_dlp: 0.0,
            final_dlp: 0.0,
            dlp_series: vec![0.0; 10],
            total_time_ns: 0.0,
            lrc_time_ns: 0.0,
            logical_error: None,
        };
        assert!((metrics.inaccuracy_per_round() - 1.0).abs() < 1e-12);
        assert_eq!(metrics.total_lrcs(), 3);
    }
}
