//! Corpus-backed speculation evaluation: record each scenario cell once,
//! replay every policy against it.
//!
//! The recording side drives [`BatchEngine::trace_records`] (shot-ordered, so
//! trace bytes are independent of worker-thread count) and files the result in
//! a [`Corpus`] under a **policy-free cell key** — `(family, distance, rounds,
//! p, lr, shots, seed)`. The replay side reconstructs each shot's run
//! bit-for-bit, drives any [`PolicyKind`]'s speculation against the recorded
//! observables ([`qec_trace::ReplayContext`]), and scores it with
//! [`RunMetrics::score_replay`].
//!
//! Replaying the policy that recorded a trace reproduces the live engine's
//! FP/FN/DLP/LRC metrics (and, with decoding, the LER) **bit-for-bit** — the
//! determinism tests in `crates/experiments/tests/replay.rs` pin this for all
//! policy kinds. Replaying any other policy is, in [`ReplayMode::OpenLoop`],
//! the trace-driven evaluation of ERASER/Varbanov: speculation accuracy
//! against the recorded execution, at replay cost instead of simulation cost —
//! but every round after the first schedule divergence is counterfactual, so
//! cross-policy DLP/LER describe the recorded execution, not the candidate's.
//!
//! [`ReplayMode::ClosedLoop`] repairs that: each shot replays until its first
//! divergence, then exact simulator state is reconstructed from the trace and
//! the recorded `seed + shot` contract and the suffix is re-simulated live
//! under the candidate ([`qec_trace::ReplayContext::replay_shot_closed_loop`]).
//! Closed-loop metrics — including DLP and the decoded LER, for *every*
//! candidate policy — are **bit-for-bit** a from-scratch live simulation of
//! that policy on the same cell and seeds (the exact-counterfactual contract,
//! pinned by `crates/experiments/tests/closed_loop.rs`), while non-divergent
//! shots never touch the simulator and divergent shots skip all prefix policy
//! evaluation. Per-round [`DivergenceProfile`]s report where shots diverged
//! and how much re-simulation the repairs cost.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use gladiator::GladiatorConfig;
use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_codes::Code;
use qec_decoder::{logical_failure, DecoderBackend, DecoderKind, MemoryBasis};
use qec_trace::{
    code_fingerprint, open_trace_file, Corpus, CorpusEntry, DivergenceProfile, ReplayContext,
    ShotTrace, TraceHeader, TRACE_SCHEMA_VERSION,
};

use crate::engine::{build_backend, BatchEngine};
use crate::harness::ExperimentSpec;
use crate::metrics::{AggregateMetrics, RunMetrics};
use crate::report::BenchLine;
use crate::scenario::{CodeFamily, Scenario};
use crate::sweep::{git_describe, SNAPSHOT_SAMPLES};

/// Version of the replay-report JSON schema; bump when the shape changes.
/// (v2: added the `replay_mode` provenance field and per-row closed-loop
/// divergence profiles.)
pub const REPLAY_SCHEMA_VERSION: u32 = 2;

/// How recorded cells are evaluated against candidate policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayMode {
    /// ERASER-style trace-driven scoring: the candidate's planned schedule is
    /// judged against the recorded execution; nothing is re-simulated, and
    /// cross-policy DLP/LER describe the recorded run.
    #[default]
    OpenLoop,
    /// Divergence-repaired counterfactuals: each shot re-simulates from its
    /// first schedule divergence under the recorded seed contract, so every
    /// metric is bit-for-bit a from-scratch live run of the candidate.
    ClosedLoop,
}

impl ReplayMode {
    /// The label used in report provenance fields and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReplayMode::OpenLoop => "open-loop",
            ReplayMode::ClosedLoop => "closed-loop",
        }
    }
}

/// The policy-free identity of a scenario cell — everything that determines
/// the recorded execution except the policy under evaluation (and the decode
/// flag, which is a post-processing choice). This string keys the corpus.
#[must_use]
pub fn cell_key(scenario: &Scenario) -> String {
    format!(
        "{} d={} rounds={} p={:e} lr={:e} shots={} seed={}",
        scenario.code.label(),
        scenario.distance,
        scenario.rounds,
        scenario.p,
        scenario.leakage_ratio,
        scenario.shots,
        scenario.seed
    )
}

/// The GLADIATOR calibration the recording run used, re-derived from the
/// header's bit-exact noise model (matches [`Scenario::to_spec`]).
#[must_use]
pub fn calibration_for(header: &TraceHeader) -> GladiatorConfig {
    GladiatorConfig::default()
        .with_error_rate(header.noise.p)
        .with_leakage_ratio(header.noise.leakage_ratio)
}

/// Reconstructs the [`ExperimentSpec`] a trace was recorded under, with the
/// policy and decode flag replaced by the caller's choice. Because the header
/// stores the noise model bit-exactly, a [`BatchEngine`] built from this spec
/// re-simulates the recording run bit-for-bit.
#[must_use]
pub fn spec_from_header(header: &TraceHeader, policy: PolicyKind, decode: bool) -> ExperimentSpec {
    ExperimentSpec {
        policy,
        noise: header.noise,
        gladiator: calibration_for(header),
        rounds: header.rounds,
        shots: header.shots,
        seed: header.seed,
        leakage_sampling: header.leakage_sampling,
        decode,
    }
}

/// Builds the recording engine and trace header for one scenario cell.
fn recording_engine(
    scenario: &Scenario,
    record_policy: PolicyKind,
    generator: &str,
) -> (BatchEngine, TraceHeader) {
    let code = scenario.build_code();
    let spec = Scenario { policy: record_policy, ..*scenario }.to_spec();
    let engine = BatchEngine::new(&code, &spec);
    let header = TraceHeader {
        schema_version: TRACE_SCHEMA_VERSION,
        generator: generator.to_string(),
        git_describe: git_describe(),
        code_name: code.name().to_string(),
        code_fingerprint: code_fingerprint(&code),
        num_data: code.num_data(),
        num_checks: code.num_checks(),
        cnot_layers: code.checks().iter().map(qec_codes::Check::weight).max().unwrap_or(0),
        rounds: spec.rounds,
        shots: spec.shots,
        seed: spec.seed,
        policy: record_policy.label().to_string(),
        leakage_sampling: spec.leakage_sampling,
        noise: spec.noise,
    };
    (engine, header)
}

/// Records one scenario cell closed-loop under `record_policy`, returning the
/// trace header and the shot-ordered traces **fully materialized** — fine for
/// tests and benchmark cells; [`record_into_corpus`] streams to disk in
/// bounded chunks for large shot counts.
#[must_use]
pub fn record_cell(
    scenario: &Scenario,
    record_policy: PolicyKind,
    generator: &str,
) -> (TraceHeader, Vec<ShotTrace>) {
    let (engine, header) = recording_engine(scenario, record_policy, generator);
    (header, engine.trace_records())
}

/// Shots simulated per recording chunk: bounds recording memory to
/// `O(chunk · rounds · qubits)` regardless of the cell's shot count, while
/// leaving plenty of parallelism per chunk. Chunking cannot change the trace
/// bytes (shot `i` is a pure function of `seed + i`).
const RECORD_CHUNK_SHOTS: u64 = 1024;

/// Records a cell and files it in `corpus` (trace file + manifest entry,
/// replacing any previous recording of the same key), streaming to disk in
/// `RECORD_CHUNK_SHOTS`-sized chunks so memory stays flat at paper-scale shot
/// counts. The caller persists the manifest with [`Corpus::save`].
///
/// # Errors
/// Returns a message on I/O failure.
pub fn record_into_corpus(
    corpus: &mut Corpus,
    scenario: &Scenario,
    record_policy: PolicyKind,
    generator: &str,
) -> Result<CorpusEntry, String> {
    let key = cell_key(scenario);
    let hash = Corpus::cell_hash(&key);
    let (engine, header) = recording_engine(scenario, record_policy, generator);
    let rel_path = Corpus::shard_rel_path(hash);
    let path = corpus.dir().join(&rel_path);
    (|| -> Result<(), qec_trace::TraceError> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::File::create(&path)?;
        let mut writer = qec_trace::TraceWriter::new(std::io::BufWriter::new(file), &header)?;
        let mut shot = 0u64;
        while shot < header.shots as u64 {
            let chunk_end = (shot + RECORD_CHUNK_SHOTS).min(header.shots as u64);
            for trace in engine.trace_records_range(shot, chunk_end) {
                writer.write_shot(&trace)?;
            }
            shot = chunk_end;
        }
        writer.finish()?;
        Ok(())
    })()
    .map_err(|e| format!("recording {key}: {e}"))?;
    let entry = CorpusEntry {
        key,
        hash: format!("{hash:016x}"),
        file: rel_path,
        code: header.code_name.clone(),
        family: scenario.code.label().to_string(),
        distance: scenario.distance,
        rounds: scenario.rounds,
        p: scenario.p,
        leakage_ratio: scenario.leakage_ratio,
        shots: scenario.shots,
        seed: scenario.seed,
        policy: record_policy.label().to_string(),
        trace_schema: header.schema_version,
    };
    corpus.insert(entry.clone());
    Ok(entry)
}

/// Records a cell into `corpus` like [`record_into_corpus`], but **appends to
/// an existing shorter recording of the same cell** when one is present
/// instead of re-simulating from shot zero. A reusable recording matches the
/// scenario on every policy-free identity field *except* the shot count
/// (which keys embed, so growing a cell re-keys it): family, distance,
/// rounds, `p`, `lr`, seed — plus the recording policy, which drives the
/// closed-loop execution. Under the `seed + shot` contract the appended
/// blocks are exactly what a from-scratch recording would have produced, and
/// [`qec_trace::extend_trace_file`] re-verifies every identity field against
/// the on-disk header before touching a byte.
///
/// This is what makes adaptive sweeps compose with replay: each time a cell's
/// allocation grows past its recorded shot count, only the new shots are
/// simulated. An exact-shot-count recording under the same policy is returned
/// as-is (recording is deterministic, so re-recording it would produce the
/// same bytes). The caller persists the manifest with [`Corpus::save`].
///
/// # Errors
/// Returns a message on I/O failure or a corrupt existing recording.
pub fn extend_into_corpus(
    corpus: &mut Corpus,
    scenario: &Scenario,
    record_policy: PolicyKind,
    generator: &str,
) -> Result<(CorpusEntry, ExtendDisposition), String> {
    let key = cell_key(scenario);
    let reusable = |entry: &CorpusEntry| {
        entry.family == scenario.code.label()
            && entry.distance == scenario.distance
            && entry.rounds == scenario.rounds
            && entry.p == scenario.p
            && entry.leakage_ratio == scenario.leakage_ratio
            && entry.seed == scenario.seed
            && entry.policy == record_policy.label()
    };
    if let Some(existing) = corpus.lookup(&key) {
        if reusable(existing) {
            return Ok((existing.clone(), ExtendDisposition::Cached));
        }
        // Same key, different recording policy: a fresh recording replaces it.
        let entry = record_into_corpus(corpus, scenario, record_policy, generator)?;
        return Ok((entry, ExtendDisposition::Recorded));
    }
    // The longest strictly-shorter recording of the same cell, if any.
    let prefix = corpus
        .entries()
        .iter()
        .filter(|entry| reusable(entry) && entry.shots < scenario.shots)
        .max_by_key(|entry| entry.shots)
        .cloned();
    let Some(prefix) = prefix else {
        let entry = record_into_corpus(corpus, scenario, record_policy, generator)?;
        return Ok((entry, ExtendDisposition::Recorded));
    };
    let (engine, header) = recording_engine(scenario, record_policy, generator);
    let mut new_shots = Vec::with_capacity(scenario.shots - prefix.shots);
    let mut shot = prefix.shots as u64;
    while shot < header.shots as u64 {
        let chunk_end = (shot + RECORD_CHUNK_SHOTS).min(header.shots as u64);
        new_shots.extend(engine.trace_records_range(shot, chunk_end));
        shot = chunk_end;
    }
    let old_path = corpus.trace_path(&prefix);
    qec_trace::extend_trace_file(&old_path, &header, &new_shots)
        .map_err(|e| format!("extending {}: {e}", prefix.key))?;
    let hash = Corpus::cell_hash(&key);
    let rel_path = Corpus::shard_rel_path(hash);
    let new_path = corpus.dir().join(&rel_path);
    if let Some(parent) = new_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", new_path.display()))?;
    }
    std::fs::rename(&old_path, &new_path)
        .map_err(|e| format!("re-keying {} -> {}: {e}", old_path.display(), new_path.display()))?;
    corpus.remove(&prefix.key);
    let entry = CorpusEntry {
        key,
        hash: format!("{hash:016x}"),
        file: rel_path,
        code: header.code_name.clone(),
        family: scenario.code.label().to_string(),
        distance: scenario.distance,
        rounds: scenario.rounds,
        p: scenario.p,
        leakage_ratio: scenario.leakage_ratio,
        shots: scenario.shots,
        seed: scenario.seed,
        policy: record_policy.label().to_string(),
        trace_schema: header.schema_version,
    };
    corpus.insert(entry.clone());
    Ok((entry, ExtendDisposition::Extended { appended: new_shots.len() }))
}

/// How [`extend_into_corpus`] satisfied a recording request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtendDisposition {
    /// An exact recording of the cell already existed; nothing was simulated.
    Cached,
    /// A shorter recording of the cell was grown in place.
    Extended {
        /// Shots appended to the existing recording.
        appended: usize,
    },
    /// No reusable recording existed; the cell was recorded from scratch.
    Recorded,
}

/// One corpus cell loaded into memory, ready for repeated replay.
#[derive(Debug)]
pub struct LoadedCell {
    /// The trace header (provenance, noise model, seeding contract).
    pub header: TraceHeader,
    /// All recorded shots, in shot order.
    pub shots: Vec<ShotTrace>,
    /// The code the cell was recorded on (fingerprint-checked).
    pub code: Code,
}

/// Loads a corpus entry's trace file and rebuilds its code, cross-checking the
/// structural fingerprint.
///
/// The shard is opened with the **lazy** streaming reader
/// ([`qec_trace::open_trace_file`]): the header is validated first, every
/// identity check below runs against it at `O(header)` cost, and only then
/// are the shot blocks decoded — once, shot-at-a-time, straight into the
/// cell's shot vector. A manifest that does not describe the shard therefore
/// aborts the load without paying for the payload at all.
///
/// # Errors
/// Returns a message on I/O failure, corruption, an unknown code family, or a
/// fingerprint mismatch.
pub fn load_entry(corpus: &Corpus, entry: &CorpusEntry) -> Result<LoadedCell, String> {
    let family = CodeFamily::from_label(&entry.family)
        .ok_or_else(|| format!("{}: unknown code family `{}`", entry.key, entry.family))?;
    let code = family.build(entry.distance);
    let path = corpus.trace_path(entry);
    let mut reader = open_trace_file(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let header = reader.header().clone();
    if code_fingerprint(&code) != header.code_fingerprint {
        return Err(format!(
            "{}: manifest code {} does not match the trace's recorded code {}",
            entry.key,
            code.name(),
            header.code_name
        ));
    }
    // Manifest metadata and trace header must agree on the execution identity;
    // a mismatch means the manifest was edited or points at the wrong shard.
    for (field, manifest_value, header_value) in [
        ("rounds", entry.rounds.to_string(), header.rounds.to_string()),
        ("shots", entry.shots.to_string(), header.shots.to_string()),
        ("seed", entry.seed.to_string(), header.seed.to_string()),
        ("policy", entry.policy.clone(), header.policy.clone()),
        ("trace_schema", entry.trace_schema.to_string(), header.schema_version.to_string()),
    ] {
        if manifest_value != header_value {
            return Err(format!(
                "{}: manifest says {field}={manifest_value}, but the trace file was recorded \
                 with {field}={header_value} — the manifest does not describe this shard",
                entry.key
            ));
        }
    }
    let mut shots = Vec::with_capacity(header.shots);
    while let Some(shot) = reader.next_shot().map_err(|e| format!("{}: {e}", path.display()))? {
        shots.push(shot);
    }
    // The reader already cross-checks the end block against the shots it
    // actually handed out; this guards the header against both.
    if shots.len() != header.shots {
        return Err(format!(
            "{}: trace holds {} shots, header says {}",
            entry.key,
            shots.len(),
            header.shots
        ));
    }
    Ok(LoadedCell { header, shots, code })
}

/// The aggregate outcome of replaying one policy against one loaded cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReplay {
    /// Aggregated replay metrics: [`RunMetrics::score_replay`] semantics in
    /// open-loop mode, the live engine's [`RunMetrics::score`] semantics (on
    /// exact counterfactual runs) in closed-loop mode.
    pub metrics: AggregateMetrics,
    /// Shots whose planned schedule diverged from the recorded one (always 0
    /// when replaying the recording policy).
    pub divergent_shots: usize,
    /// Per-round divergence statistics; populated by closed-loop replay only.
    pub profile: Option<DivergenceProfile>,
}

/// Replays `policy` against every shot of `cell`, in parallel, aggregating in
/// shot order. `factory` must be calibrated for the cell
/// ([`calibration_for`]); pass a `decoder` to also decode each reconstructed
/// run (meaningful when `policy` is the recording policy — the resulting LER
/// is exactly the live engine's).
///
/// # Errors
/// Returns a message when the cell's code and header disagree.
pub fn replay_cell(
    cell: &LoadedCell,
    factory: &Arc<PolicyFactory>,
    policy: PolicyKind,
    decoder: Option<&dyn DecoderBackend>,
) -> Result<CellReplay, String> {
    let ctx = ReplayContext::new(&cell.code, &cell.header).map_err(|e| e.to_string())?;
    let per_shot: Vec<(RunMetrics, bool)> = (0..cell.shots.len())
        .into_par_iter()
        .map_init(
            || factory.build(policy),
            |instance, shot| {
                let trace = &cell.shots[shot];
                instance.reset();
                let replay = ctx.replay_shot(trace, instance.as_mut());
                let mut metrics = RunMetrics::score_replay(
                    &replay.run,
                    &replay.planned,
                    &cell.header.noise,
                    cell.header.cnot_layers,
                );
                if let Some(decoder) = decoder {
                    let correction = decoder.decode_run(&replay.run);
                    metrics.logical_error =
                        Some(logical_failure(&cell.code, &replay.run, &correction, MemoryBasis::Z));
                }
                (metrics, replay.is_exact())
            },
        )
        .collect();
    let divergent_shots = per_shot.iter().filter(|(_, exact)| !exact).count();
    let runs: Vec<RunMetrics> = per_shot.into_iter().map(|(metrics, _)| metrics).collect();
    Ok(CellReplay { metrics: AggregateMetrics::from_runs(&runs), divergent_shots, profile: None })
}

/// Closed-loop-replays `policy` against every shot of `cell`, in parallel,
/// aggregating in shot order: each shot replays until its first schedule
/// divergence, then re-simulates from that round under the recorded seed
/// contract, so the aggregated metrics are **bit-for-bit** what
/// [`BatchEngine::run`] reports for a live run of `policy` on the cell's spec
/// — for every candidate policy, not just the recording one. Pass a `decoder`
/// to decode every counterfactual run and report its (exact) LER.
///
/// # Errors
/// Returns a message when the cell's code and header disagree, or when the
/// trace fails to reproduce under this build's simulator (stale corpus).
pub fn replay_cell_closed_loop(
    cell: &LoadedCell,
    factory: &Arc<PolicyFactory>,
    policy: PolicyKind,
    decoder: Option<&dyn DecoderBackend>,
) -> Result<CellReplay, String> {
    /// Per-shot outcome: scored metrics, divergence round, re-simulated
    /// (suffix) rounds, restored (forced-prefix) rounds.
    type ShotOutcome = Result<(RunMetrics, Option<usize>, usize, usize), String>;
    let ctx = ReplayContext::new(&cell.code, &cell.header).map_err(|e| e.to_string())?;
    let per_shot: Vec<ShotOutcome> = (0..cell.shots.len())
        .into_par_iter()
        .map_init(
            || (factory.build(policy), ctx.make_simulator()),
            |(instance, sim), shot| {
                let trace = &cell.shots[shot];
                instance.reset();
                let replay = ctx
                    .replay_shot_closed_loop(trace, instance.as_mut(), sim)
                    .map_err(|e| e.to_string())?;
                // Identical scoring path to the live engine (`BatchEngine::score`):
                // same counting loops, same f64 accumulation order.
                let mut metrics = RunMetrics::score(&replay.run, cell.header.noise.lrc_time_ns);
                if let Some(decoder) = decoder {
                    let correction = decoder.decode_run(&replay.run);
                    metrics.logical_error =
                        Some(logical_failure(&cell.code, &replay.run, &correction, MemoryBasis::Z));
                }
                Ok((metrics, replay.divergence, replay.resimulated_rounds, replay.restored_rounds))
            },
        )
        .collect();
    let mut runs = Vec::with_capacity(per_shot.len());
    let mut profile = DivergenceProfile::new(cell.header.rounds);
    for outcome in per_shot {
        let (metrics, divergence, resimulated_rounds, restored_rounds) = outcome?;
        profile.add(divergence, resimulated_rounds, restored_rounds);
        runs.push(metrics);
    }
    Ok(CellReplay {
        metrics: AggregateMetrics::from_runs(&runs),
        divergent_shots: profile.divergent_shots,
        profile: Some(profile),
    })
}

/// Checkpoint-sharing economics of evaluating one cell's policy set — the
/// out-of-band cost accounting of closed-loop replay. Deliberately **not**
/// part of [`ReplayCellResult`]/[`ReplayReport`]: reports must stay
/// byte-identical whether sharing is on or off (CI `cmp`s them), so these
/// stats travel to the CLI summary and the serve `stats` counters instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Forced re-executions of a recorded prefix: with sharing, one per shot
    /// that had at least one divergent candidate; on the legacy per-policy
    /// path, one per divergent `(shot, policy)` pair.
    pub forced_passes: u64,
    /// Total rounds executed by forced passes (with sharing, each shot pays
    /// only up to its deepest divergence round, once).
    pub forced_rounds: u64,
    /// Candidate suffixes resumed live — divergent `(shot, policy)` pairs,
    /// identical under both paths.
    pub suffixes: u64,
    /// Simulator checkpoints held at any shot's high-water mark (= distinct
    /// divergence rounds of the candidate set); `0` on the legacy path, which
    /// never stores one.
    pub peak_checkpoints: u64,
}

impl CheckpointStats {
    /// Folds another cell's stats into this one (sums, except the high-water
    /// mark which takes the max).
    pub fn absorb(&mut self, other: &CheckpointStats) {
        self.forced_passes += other.forced_passes;
        self.forced_rounds += other.forced_rounds;
        self.suffixes += other.suffixes;
        self.peak_checkpoints = self.peak_checkpoints.max(other.peak_checkpoints);
    }
}

/// [`CheckpointStats`] for one corpus cell, keyed for CLI summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCheckpointStats {
    /// The corpus cell key the stats describe.
    pub key: String,
    /// The cell's checkpoint-sharing economics.
    pub stats: CheckpointStats,
}

/// Closed-loop-replays a whole candidate **set** against every shot of `cell`
/// from shared checkpoints ([`ReplayContext::replay_shot_closed_loop_shared`]):
/// per shot, one forced pass to the deepest divergence round plus one resumed
/// suffix per divergent candidate, instead of one full forced prefix per
/// divergent `(shot, policy)` pair. `decoders` is index-aligned with
/// `policies` (pass `None` to skip decoding that candidate).
///
/// Every returned [`CellReplay`] — metrics, divergent-shot count and
/// divergence profile — is **bit-identical** to what
/// [`replay_cell_closed_loop`] returns for that candidate alone: the per-shot
/// results are bit-identical (see the sharing bit-identity argument on the
/// trace-level entry point) and both paths aggregate in shot order.
///
/// # Errors
/// Returns a message when the cell's code and header disagree, when
/// `policies` and `decoders` lengths differ, or when the trace fails to
/// reproduce under this build's simulator (stale corpus).
pub fn replay_cell_closed_loop_shared(
    cell: &LoadedCell,
    factory: &Arc<PolicyFactory>,
    policies: &[PolicyKind],
    decoders: &[Option<&dyn DecoderBackend>],
) -> Result<(Vec<CellReplay>, CheckpointStats), String> {
    if policies.len() != decoders.len() {
        return Err(format!(
            "policy set of {} needs one decoder slot per candidate, got {}",
            policies.len(),
            decoders.len()
        ));
    }
    /// Per-shot outcome: per-candidate scored results (metrics, divergence
    /// round, suffix rounds, forced-prefix depth) plus the shot's sharing
    /// stats (forced rounds, suffixes, peak checkpoints).
    type ShotOutcome =
        Result<(Vec<(RunMetrics, Option<usize>, usize, usize)>, usize, usize, usize), String>;
    let ctx = ReplayContext::new(&cell.code, &cell.header).map_err(|e| e.to_string())?;
    let per_shot: Vec<ShotOutcome> = (0..cell.shots.len())
        .into_par_iter()
        .map_init(
            || {
                let instances: Vec<_> = policies.iter().map(|&p| factory.build(p)).collect();
                (instances, ctx.make_simulator())
            },
            |(instances, sim), shot| {
                let trace = &cell.shots[shot];
                for instance in instances.iter_mut() {
                    instance.reset();
                }
                let mut refs: Vec<&mut dyn leaky_sim::LeakagePolicy> =
                    instances.iter_mut().map(|p| p.as_mut() as _).collect();
                let shared = ctx
                    .replay_shot_closed_loop_shared(trace, &mut refs, sim)
                    .map_err(|e| e.to_string())?;
                // Identical scoring path to the live engine and the per-policy
                // closed-loop evaluator: same counting loops, same decoder.
                let scored = shared
                    .replays
                    .iter()
                    .zip(decoders)
                    .map(|(replay, decoder)| {
                        let mut metrics =
                            RunMetrics::score(&replay.run, cell.header.noise.lrc_time_ns);
                        if let Some(decoder) = decoder {
                            let correction = decoder.decode_run(&replay.run);
                            metrics.logical_error = Some(logical_failure(
                                &cell.code,
                                &replay.run,
                                &correction,
                                MemoryBasis::Z,
                            ));
                        }
                        (
                            metrics,
                            replay.divergence,
                            replay.resimulated_rounds,
                            replay.restored_rounds,
                        )
                    })
                    .collect();
                Ok((scored, shared.forced_rounds, shared.suffixes, shared.peak_checkpoints))
            },
        )
        .collect();

    let mut stats = CheckpointStats::default();
    let mut runs: Vec<Vec<RunMetrics>> =
        policies.iter().map(|_| Vec::with_capacity(cell.shots.len())).collect();
    let mut profiles: Vec<DivergenceProfile> =
        policies.iter().map(|_| DivergenceProfile::new(cell.header.rounds)).collect();
    for outcome in per_shot {
        let (scored, forced_rounds, suffixes, peak_checkpoints) = outcome?;
        stats.forced_passes += u64::from(suffixes > 0);
        stats.forced_rounds += forced_rounds as u64;
        stats.suffixes += suffixes as u64;
        stats.peak_checkpoints = stats.peak_checkpoints.max(peak_checkpoints as u64);
        for (index, (metrics, divergence, resimulated, restored)) in scored.into_iter().enumerate()
        {
            profiles[index].add(divergence, resimulated, restored);
            runs[index].push(metrics);
        }
    }
    let replays = runs
        .iter()
        .zip(profiles)
        .map(|(runs, profile)| CellReplay {
            metrics: AggregateMetrics::from_runs(runs),
            divergent_shots: profile.divergent_shots,
            profile: Some(profile),
        })
        .collect();
    Ok((replays, stats))
}

/// Replay-evaluates a whole `(cell, policy set)` in `mode` — the set-level
/// sibling of [`evaluate_cell`], index-aligned with `policies`/`decoders`.
/// Closed-loop sets with `shared_checkpoints` route through
/// [`replay_cell_closed_loop_shared`] (1 forced pass + N suffixes per shot);
/// everything else runs the legacy one-policy-at-a-time passes via
/// [`evaluate_cell`]. Results are bit-identical either way; only the returned
/// [`CheckpointStats`] (and the wall-clock) differ.
///
/// # Errors
/// Returns a message on any per-policy evaluation failure or a
/// `policies`/`decoders` length mismatch.
pub fn evaluate_cell_set(
    cell: &LoadedCell,
    factory: &Arc<PolicyFactory>,
    policies: &[PolicyKind],
    decoders: &[Option<&dyn DecoderBackend>],
    mode: ReplayMode,
    shared_checkpoints: bool,
) -> Result<(Vec<CellReplay>, CheckpointStats), String> {
    if mode == ReplayMode::ClosedLoop && shared_checkpoints {
        return replay_cell_closed_loop_shared(cell, factory, policies, decoders);
    }
    if policies.len() != decoders.len() {
        return Err(format!(
            "policy set of {} needs one decoder slot per candidate, got {}",
            policies.len(),
            decoders.len()
        ));
    }
    let mut replays = Vec::with_capacity(policies.len());
    let mut stats = CheckpointStats::default();
    for (&policy, &decoder) in policies.iter().zip(decoders) {
        let replay = evaluate_cell(cell, factory, policy, decoder, mode)?;
        if let Some(profile) = &replay.profile {
            // Legacy accounting: every divergent (shot, policy) pair pays its
            // own full forced prefix, and nothing is ever checkpointed.
            stats.forced_passes += profile.divergent_shots as u64;
            stats.forced_rounds += profile.restored_rounds;
            stats.suffixes += profile.divergent_shots as u64;
        }
        replays.push(replay);
    }
    Ok((replays, stats))
}

/// Replay-evaluates one `(cell, policy)` pairing in `mode` — the single
/// evaluation entry point shared by `repro replay`, corpus-backed sweeps and
/// the `qec-serve` daemon, which is what makes a served `eval` answer
/// bit-identical to the CLI's replay row for the same pairing.
///
/// Open-loop decoding is only meaningful for exact (recording-policy)
/// pairings, so in that mode a `decoder` is used only when `policy` recorded
/// the cell; closed-loop runs are exact counterfactuals, so the decoder serves
/// every pairing.
///
/// # Errors
/// Returns a message when the cell's code and header disagree, or (closed
/// loop) when the trace fails to reproduce under this build's simulator.
pub fn evaluate_cell(
    cell: &LoadedCell,
    factory: &Arc<PolicyFactory>,
    policy: PolicyKind,
    decoder: Option<&dyn DecoderBackend>,
    mode: ReplayMode,
) -> Result<CellReplay, String> {
    match mode {
        ReplayMode::ClosedLoop => replay_cell_closed_loop(cell, factory, policy, decoder),
        ReplayMode::OpenLoop => {
            let exact = cell.header.policy == policy.label();
            replay_cell(cell, factory, policy, decoder.filter(|_| exact))
        }
    }
}

/// Builds the report row for one evaluated pairing. Shared by
/// [`replay_corpus`] and the daemon so the two serializations of the same
/// evaluation cannot drift apart (`live_match` starts as `None`; verification
/// paths fill it in afterwards). `decoder` is the explicitly selected backend,
/// or `None` for the unlabeled legacy default (union-find) — rows without a
/// selection keep their pre-backend bytes.
#[must_use]
pub fn evaluation_row(
    key: &str,
    cell: &LoadedCell,
    policy: PolicyKind,
    decoder: Option<DecoderKind>,
    replay: &CellReplay,
) -> ReplayCellResult {
    ReplayCellResult {
        key: key.to_string(),
        code: cell.code.name().to_string(),
        recorded_policy: cell.header.policy.clone(),
        policy: policy.label().to_string(),
        decoder: decoder.map(|kind| kind.label().to_string()),
        shots: cell.header.shots,
        rounds: cell.header.rounds,
        exact: cell.header.policy == policy.label(),
        divergent_shots: replay.divergent_shots,
        live_match: None,
        divergence_profile: replay.profile.clone(),
        metrics: replay.metrics.clone(),
    }
}

/// One row of a [`ReplayReport`]: one `(cell, policy)` pairing — or, when a
/// decoder axis is in play, one `(cell, decoder, policy)` pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCellResult {
    /// The corpus cell key.
    pub key: String,
    /// Name of the concrete code instance.
    pub code: String,
    /// Policy that recorded the trace.
    pub recorded_policy: String,
    /// Policy whose speculation was replayed.
    pub policy: String,
    /// Explicitly selected decoder backend label (`uf`, `lookup`), or `None`
    /// when the row used the legacy default (union-find). Omitted from the
    /// serialized row when `None`, so reports without a decoder axis stay
    /// byte-identical to pre-backend reports.
    pub decoder: Option<String>,
    /// Shots replayed.
    pub shots: usize,
    /// Rounds per shot.
    pub rounds: usize,
    /// `policy == recorded_policy`: metrics are bit-for-bit the live engine's
    /// in either mode (closed-loop makes this true of *every* row).
    pub exact: bool,
    /// Shots whose planned schedule diverged from the recorded one.
    pub divergent_shots: usize,
    /// When live verification ran: whether the replayed metrics equalled a
    /// fresh live-engine run exactly.
    pub live_match: Option<bool>,
    /// Per-round divergence statistics (closed-loop rows only).
    pub divergence_profile: Option<DivergenceProfile>,
    /// Aggregated replay metrics.
    pub metrics: AggregateMetrics,
}

// Hand-written (not derived) so the optional `decoder` field is *omitted*
// when `None` rather than serialized as `null`: rows without a decoder
// selection must stay byte-identical to pre-backend reports. Every other
// field keeps the derive's behavior (`live_match`/`divergence_profile`
// serialize as `null` when absent, exactly as before).
impl Serialize for ReplayCellResult {
    fn to_value(&self) -> serde::Value {
        let mut composer = serde::ser::StructComposer::new();
        composer.field("key", &self.key);
        composer.field("code", &self.code);
        composer.field("recorded_policy", &self.recorded_policy);
        composer.field("policy", &self.policy);
        if let Some(decoder) = &self.decoder {
            composer.field("decoder", decoder);
        }
        composer.field("shots", &self.shots);
        composer.field("rounds", &self.rounds);
        composer.field("exact", &self.exact);
        composer.field("divergent_shots", &self.divergent_shots);
        composer.field("live_match", &self.live_match);
        composer.field("divergence_profile", &self.divergence_profile);
        composer.field("metrics", &self.metrics);
        composer.end()
    }
}

impl Deserialize for ReplayCellResult {
    fn from_value(value: &serde::Value) -> Result<Self, serde::de::Error> {
        let fields = serde::de::as_object(value, "ReplayCellResult")?;
        Ok(ReplayCellResult {
            key: serde::de::field(fields, "ReplayCellResult", "key")?,
            code: serde::de::field(fields, "ReplayCellResult", "code")?,
            recorded_policy: serde::de::field(fields, "ReplayCellResult", "recorded_policy")?,
            policy: serde::de::field(fields, "ReplayCellResult", "policy")?,
            decoder: serde::de::field(fields, "ReplayCellResult", "decoder")?,
            shots: serde::de::field(fields, "ReplayCellResult", "shots")?,
            rounds: serde::de::field(fields, "ReplayCellResult", "rounds")?,
            exact: serde::de::field(fields, "ReplayCellResult", "exact")?,
            divergent_shots: serde::de::field(fields, "ReplayCellResult", "divergent_shots")?,
            live_match: serde::de::field(fields, "ReplayCellResult", "live_match")?,
            divergence_profile: serde::de::field(fields, "ReplayCellResult", "divergence_profile")?,
            metrics: serde::de::field(fields, "ReplayCellResult", "metrics")?,
        })
    }
}

/// A self-describing replay run over a whole corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayReport {
    /// [`REPLAY_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Tool and version that produced the report.
    pub generator: String,
    /// `git describe --always --dirty` of the producing checkout, or `unknown`.
    pub git_describe: String,
    /// Corpus directory the report was computed from.
    pub corpus: String,
    /// Evaluation mode of every row: `open-loop` (trace-driven scoring) or
    /// `closed-loop` (divergence-repaired exact counterfactuals).
    pub replay_mode: String,
    /// One row per `(cell, policy)`, cells in manifest order.
    pub results: Vec<ReplayCellResult>,
}

/// Options of [`replay_corpus`].
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Policies to replay against every cell; empty ⇒ each cell's recording
    /// policy (the bit-for-bit validation mode).
    pub policies: Vec<PolicyKind>,
    /// Decode replayed runs and report their LER. Open-loop mode can only
    /// decode exact (recording-policy) pairings; closed-loop mode decodes the
    /// exact counterfactual run of **every** pairing.
    pub decode: bool,
    /// Decoder backends to evaluate every `(cell, policy)` pairing under;
    /// empty ⇒ the single unlabeled legacy slot (union-find, rows without a
    /// `decoder` field — byte-identical to pre-backend reports). With N
    /// backends every cell emits N×policies rows, decoder-major, each row
    /// labeled with its backend. Every selected backend must support every
    /// corpus cell (validated up front, per cell, before any replay work).
    pub decoders: Vec<DecoderKind>,
    /// Re-simulate pairings live and record whether the replayed metrics match
    /// bit-for-bit: exact pairings in open-loop mode, every pairing in
    /// closed-loop mode (the exact-counterfactual gate).
    pub verify_live: bool,
    /// Evaluation mode (see [`ReplayMode`]).
    pub mode: ReplayMode,
    /// Closed-loop only: serve each cell's whole policy set from shared
    /// checkpoints (1 forced pass + N suffixes per shot) instead of one full
    /// forced prefix per divergent pairing. On by default; reports are
    /// byte-identical either way — only cost and [`CheckpointStats`] differ.
    pub shared_checkpoints: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            policies: Vec::new(),
            decode: false,
            decoders: Vec::new(),
            verify_live: false,
            mode: ReplayMode::default(),
            shared_checkpoints: true,
        }
    }
}

/// Replays policies against every cell of the corpus at `dir`, in the mode
/// requested by `options` (see [`ReplayMode`]).
///
/// # Errors
/// Returns a message when the corpus is empty, or when the corpus, a trace
/// file, or a policy label cannot be loaded.
pub fn replay_corpus(dir: &Path, options: &ReplayOptions) -> Result<ReplayReport, String> {
    replay_corpus_with_stats(dir, options).map(|(report, _)| report)
}

/// [`replay_corpus`] plus each cell's out-of-band [`CheckpointStats`] (for
/// CLI summaries — never part of the report, which must stay byte-identical
/// with sharing on or off).
///
/// # Errors
/// Same failure modes as [`replay_corpus`].
pub fn replay_corpus_with_stats(
    dir: &Path,
    options: &ReplayOptions,
) -> Result<(ReplayReport, Vec<CellCheckpointStats>), String> {
    let corpus = Corpus::open_existing(dir).map_err(|e| e.to_string())?;
    if corpus.entries().is_empty() {
        return Err(format!(
            "corpus {} is empty — nothing to replay (record cells first)",
            dir.display()
        ));
    }
    let closed_loop = options.mode == ReplayMode::ClosedLoop;
    // The decoder axis: empty ⇒ the single unlabeled legacy slot (union-find).
    // Duplicate selections collapse, preserving first-mention order.
    let kinds: Vec<Option<DecoderKind>> = if options.decoders.is_empty() {
        vec![None]
    } else {
        let mut kinds = Vec::new();
        for &kind in &options.decoders {
            if !kinds.contains(&Some(kind)) {
                kinds.push(Some(kind));
            }
        }
        kinds
    };
    let mut results = Vec::new();
    let mut cell_stats = Vec::new();
    for entry in corpus.entries() {
        let cell = load_entry(&corpus, entry)?;
        // Every selected backend must be able to serve every cell — checked
        // up front so a mismatch (e.g. the lookup table against d>3) is a
        // typed, actionable error before any replay work, never a panic or a
        // silently wrong LER.
        for kind in kinds.iter().flatten() {
            kind.supports(cell.code.family(), cell.code.distance()).map_err(|e| {
                format!("{}: decoder `{}` cannot serve this cell: {e}", entry.key, kind.label())
            })?;
        }
        let recorded = PolicyKind::from_label(&cell.header.policy).ok_or_else(|| {
            format!("{}: unknown recorded policy `{}`", entry.key, cell.header.policy)
        })?;
        let policies: Vec<PolicyKind> =
            if options.policies.is_empty() { vec![recorded] } else { options.policies.clone() };
        let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
        let mut stats = CheckpointStats::default();
        for &kind in &kinds {
            // Open-loop decoding is only meaningful for exact (recording-policy)
            // pairings; closed-loop runs are exact counterfactuals, so the decoder
            // serves every pairing. Skip the decoder build when unused.
            let decoder = (options.decode && (closed_loop || policies.contains(&recorded)))
                .then(|| build_backend(kind, &cell.code, cell.header.rounds))
                .transpose()
                .map_err(|e| format!("{}: {e}", entry.key))?;
            let decoders: Vec<Option<&dyn DecoderBackend>> =
                policies.iter().map(|_| decoder.as_deref()).collect();
            let (replays, kind_stats) = evaluate_cell_set(
                &cell,
                &factory,
                &policies,
                &decoders,
                options.mode,
                options.shared_checkpoints,
            )
            .map_err(|e| format!("{}: {e}", entry.key))?;
            stats.absorb(&kind_stats);
            for (&policy, replay) in policies.iter().zip(replays) {
                let exact = policy == recorded;
                let mut row = evaluation_row(&entry.key, &cell, policy, kind, &replay);
                // Closed-loop metrics claim bit-for-bit equality with a live run
                // for every candidate, so live verification covers every pairing;
                // open-loop only makes that claim for the recording policy. The
                // live engine decodes with the *same* backend as the replay.
                row.live_match = (options.verify_live && (closed_loop || exact)).then(|| {
                    let spec = spec_from_header(&cell.header, policy, options.decode);
                    let live =
                        BatchEngine::with_shared(&spec, Arc::clone(&factory), decoder.clone())
                            .run();
                    live.metrics == replay.metrics
                });
                results.push(row);
            }
        }
        cell_stats.push(CellCheckpointStats { key: entry.key.clone(), stats });
    }
    let report = ReplayReport {
        schema_version: REPLAY_SCHEMA_VERSION,
        generator: format!("repro replay {}", env!("CARGO_PKG_VERSION")),
        git_describe: git_describe(),
        corpus: dir.display().to_string(),
        replay_mode: options.mode.label().to_string(),
        results,
    };
    Ok((report, cell_stats))
}

/// The pinned cell behind the trace perf snapshot: one mid-size surface-code
/// workload whose record/encode/decode/replay/re-simulate timings are
/// meaningful per shot. Changing it invalidates
/// `crates/bench/BENCH_trace_baseline.json`.
#[must_use]
pub fn trace_snapshot_scenario() -> Scenario {
    Scenario {
        code: CodeFamily::Surface,
        distance: 5,
        rounds: 30,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy: PolicyKind::GladiatorM,
        shots: 16,
        seed: 11,
        decode: false,
        decoder: None,
    }
}

/// The candidate set behind `trace/closed-loop-multi`: the recording policy
/// (an exact counterfactual), its two speculation-family variants, and the
/// herald-only baseline — the smallest policy comparison a serve-side
/// `batch-eval` actually issues.
pub const MULTI_SNAPSHOT_POLICIES: [PolicyKind; 4] =
    [PolicyKind::GladiatorM, PolicyKind::Gladiator, PolicyKind::GladiatorDM, PolicyKind::MlrOnly];

/// MLR false-flag rate of the multi-policy snapshot cell (see
/// [`trace_snapshot_multi_cell`]).
pub const MULTI_SNAPSHOT_MLR_FALSE_FLAG: f64 = 1e-4;

/// The organic-leakage companion cell behind `trace/closed-loop-multi`: the
/// pinned snapshot scenario at `p = 3e-4` with `mlr_false_flag = 1e-4` and
/// **leakage sampling off**, recorded under the same policy. Without the
/// per-shot seeded leak, leakage and heralds arrive organically and rarely, so
/// candidate policies agree with the recording for most rounds — the regime
/// where shared-checkpoint replay's forced-prefix deduplication pays (the
/// pinned cell seeds a leak at round 0, forcing near-full re-simulation per
/// divergent candidate no matter how checkpoints are shared). Changing this
/// cell invalidates `crates/bench/BENCH_trace_baseline.json`.
#[must_use]
pub fn trace_snapshot_multi_scenario() -> Scenario {
    Scenario { p: 3e-4, ..trace_snapshot_scenario() }
}

/// Records [`trace_snapshot_multi_scenario`]'s cell — leakage sampling **off**
/// and `mlr_false_flag` lowered to [`MULTI_SNAPSHOT_MLR_FALSE_FLAG`] — and
/// builds its policy factory. See [`trace_snapshot_multi_scenario`] for why
/// the multi-policy benchmark uses this cell.
#[must_use]
pub fn trace_snapshot_multi_cell() -> (LoadedCell, Arc<PolicyFactory>) {
    let scenario = trace_snapshot_multi_scenario();
    let code = scenario.build_code();
    let mut spec = scenario.to_spec();
    spec.leakage_sampling = false;
    spec.noise.mlr_false_flag = MULTI_SNAPSHOT_MLR_FALSE_FLAG;
    let engine = BatchEngine::new(&code, &spec);
    let header = TraceHeader {
        schema_version: TRACE_SCHEMA_VERSION,
        generator: "repro snapshot".to_string(),
        git_describe: git_describe(),
        code_name: code.name().to_string(),
        code_fingerprint: code_fingerprint(&code),
        num_data: code.num_data(),
        num_checks: code.num_checks(),
        cnot_layers: code.checks().iter().map(qec_codes::Check::weight).max().unwrap_or(0),
        rounds: spec.rounds,
        shots: spec.shots,
        seed: spec.seed,
        policy: spec.policy.label().to_string(),
        leakage_sampling: spec.leakage_sampling,
        noise: spec.noise,
    };
    let shots = engine.trace_records();
    let factory = Arc::new(PolicyFactory::new(&code, &calibration_for(&header)));
    (LoadedCell { header, shots, code }, factory)
}

/// Runs the pinned trace benchmarks [`SNAPSHOT_SAMPLES`] times each and
/// reports per-shot wall-times as [`BenchLine`]s: `trace/record`,
/// `trace/encode`, `trace/decode`, `trace/replay/<policy>`,
/// `trace/resim/<policy>`, `trace/closed-loop/<policy>` (closed-loop replay of
/// the recording policy — zero divergence, so it prices the pure-replay fast
/// path of exact counterfactuals) and `trace/closed-loop-cross/<policy>`
/// (closed-loop replay of a *different* policy, paying divergence repair). The
/// replay-vs-resim pair is the machine-checkable form of the corpus value
/// proposition: each *additional* policy evaluated against a recorded cell
/// costs `replay` (open-loop) or at most `closed-loop-cross` (exact), not
/// `resim`.
///
/// `trace/replay-lookup/<id>` prices the lookup-table decode hot path:
/// recording-policy replay of the pinned scenario shrunk to d=3, decoded by
/// the exact table backend ([`DecoderKind::Lookup`]) on every shot.
///
/// Two lines price the shared-checkpoint path:
/// `trace/closed-loop-cross-shared/<id>` re-runs the cross-policy repair
/// through [`evaluate_cell_set`] with sharing on (a single candidate, so it
/// guards "sharing never regresses the degenerate case"), and
/// `trace/closed-loop-multi/<id>` evaluates the [`MULTI_SNAPSHOT_POLICIES`]
/// set against the organic-leakage cell of [`trace_snapshot_multi_cell`] —
/// the number that matters for serve-side batch-eval latency, and the one the
/// perf gate holds below N× resim.
#[must_use]
pub fn trace_snapshot() -> Vec<BenchLine> {
    let scenario = trace_snapshot_scenario();
    let policy = scenario.policy;
    let cross_policy = PolicyKind::EraserM;
    let code = scenario.build_code();
    let spec = scenario.to_spec();
    let engine = BatchEngine::new(&code, &spec);
    let shots = spec.shots as u64;
    let per_shot = |total_ns: u128| (total_ns as u64) / shots;

    let (header, traces) = record_cell(&scenario, policy, "repro snapshot");
    let mut encoded = Vec::new();
    {
        let mut writer =
            qec_trace::TraceWriter::new(&mut encoded, &header).expect("in-memory write");
        for trace in &traces {
            writer.write_shot(trace).expect("in-memory write");
        }
        let _ = writer.finish().expect("in-memory write");
    }
    let cell = LoadedCell { header: header.clone(), shots: traces.clone(), code: code.clone() };
    let factory = Arc::new(PolicyFactory::new(&code, &calibration_for(&header)));
    let (multi_cell, multi_factory) = trace_snapshot_multi_cell();
    let multi_scenario = trace_snapshot_multi_scenario();
    let no_decoders: Vec<Option<&dyn DecoderBackend>> = vec![None; MULTI_SNAPSHOT_POLICIES.len()];
    // The lookup-table hot path is priced on the pinned scenario shrunk to
    // d=3 (the only distance the table serves): recording-policy replay with
    // the exact decoder, so the line covers the detection-event fold plus the
    // table hit for every shot.
    let lookup_scenario = Scenario { distance: 3, ..scenario };
    let (lookup_header, lookup_traces) = record_cell(&lookup_scenario, policy, "repro snapshot");
    let lookup_code = lookup_scenario.build_code();
    let lookup_backend = DecoderKind::Lookup
        .build(&lookup_code, lookup_scenario.rounds + 1)
        .expect("the d=3 surface snapshot cell supports the lookup table");
    let lookup_factory =
        Arc::new(PolicyFactory::new(&lookup_code, &calibration_for(&lookup_header)));
    let lookup_cell = LoadedCell { header: lookup_header, shots: lookup_traces, code: lookup_code };
    // Warm every path once before timing.
    let _ = engine.run();
    let _ = replay_cell(&cell, &factory, policy, None).expect("replay warmup");
    let _ =
        replay_cell_closed_loop(&cell, &factory, cross_policy, None).expect("closed-loop warmup");
    let _ = replay_cell(&lookup_cell, &lookup_factory, policy, Some(&*lookup_backend))
        .expect("lookup warmup");
    let _ = evaluate_cell_set(
        &multi_cell,
        &multi_factory,
        &MULTI_SNAPSHOT_POLICIES,
        &no_decoders,
        ReplayMode::ClosedLoop,
        true,
    )
    .expect("multi warmup");

    let sample = |mut body: Box<dyn FnMut() + '_>| -> BenchLine {
        let samples: Vec<u64> = (0..SNAPSHOT_SAMPLES)
            .map(|_| {
                let start = Instant::now();
                body();
                per_shot(start.elapsed().as_nanos())
            })
            .collect();
        BenchLine {
            benchmark: String::new(),
            samples: SNAPSHOT_SAMPLES,
            mean_ns: samples.iter().sum::<u64>() / SNAPSHOT_SAMPLES as u64,
            min_ns: samples.iter().copied().min().unwrap_or(0),
            max_ns: samples.iter().copied().max().unwrap_or(0),
        }
    };
    let named = |name: String, mut line: BenchLine| {
        line.benchmark = name;
        line
    };

    vec![
        named(
            format!("trace/record/{}", scenario.id()),
            sample(Box::new(|| {
                let _ = engine.trace_records();
            })),
        ),
        named(
            format!("trace/encode/{}", scenario.id()),
            sample(Box::new(|| {
                let mut bytes = Vec::new();
                let mut writer =
                    qec_trace::TraceWriter::new(&mut bytes, &header).expect("in-memory write");
                for trace in &traces {
                    writer.write_shot(trace).expect("in-memory write");
                }
                let _ = writer.finish().expect("in-memory write");
            })),
        ),
        named(
            format!("trace/decode/{}", scenario.id()),
            sample(Box::new(|| {
                let mut reader =
                    qec_trace::TraceReader::new(encoded.as_slice()).expect("in-memory read");
                let _ = reader.read_all().expect("in-memory read");
            })),
        ),
        named(
            format!("trace/replay/{}", scenario.id()),
            sample(Box::new(|| {
                let _ = replay_cell(&cell, &factory, policy, None).expect("replay");
            })),
        ),
        named(
            format!("trace/resim/{}", scenario.id()),
            sample(Box::new(|| {
                let _ = engine.run();
            })),
        ),
        named(
            format!("trace/closed-loop/{}", scenario.id()),
            sample(Box::new(|| {
                let _ =
                    replay_cell_closed_loop(&cell, &factory, policy, None).expect("closed-loop");
            })),
        ),
        named(
            format!("trace/closed-loop-cross/{}", scenario.id()),
            sample(Box::new(|| {
                let _ = replay_cell_closed_loop(&cell, &factory, cross_policy, None)
                    .expect("closed-loop cross");
            })),
        ),
        named(
            format!("trace/closed-loop-cross-shared/{}", scenario.id()),
            sample(Box::new(|| {
                let _ = evaluate_cell_set(
                    &cell,
                    &factory,
                    &[cross_policy],
                    &[None],
                    ReplayMode::ClosedLoop,
                    true,
                )
                .expect("closed-loop cross shared");
            })),
        ),
        named(
            format!("trace/replay-lookup/{}", lookup_scenario.id()),
            sample(Box::new(|| {
                let _ = replay_cell(&lookup_cell, &lookup_factory, policy, Some(&*lookup_backend))
                    .expect("lookup replay");
            })),
        ),
        named(
            format!("trace/closed-loop-multi/{}", multi_scenario.id()),
            sample(Box::new(|| {
                let _ = evaluate_cell_set(
                    &multi_cell,
                    &multi_factory,
                    &MULTI_SNAPSHOT_POLICIES,
                    &no_decoders,
                    ReplayMode::ClosedLoop,
                    true,
                )
                .expect("closed-loop multi");
            })),
        ),
    ]
}
