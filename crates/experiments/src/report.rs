//! Small reporting helpers: aligned text tables, JSON export, and the
//! line-per-benchmark perf-snapshot format shared with
//! `crates/bench/BENCH_baseline.json`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Renders a simple aligned text table.
///
/// # Panics
/// Panics if a row has a different number of cells than the header.
#[must_use]
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row, &widths));
    }
    out
}

/// Serializes any result rows to pretty JSON (the machine-readable artifact output).
///
/// # Panics
/// Panics if serialization fails, which cannot happen for the plain-data result types
/// of this crate.
#[must_use]
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are always serializable")
}

/// One benchmark measurement in the `BENCH_baseline.json` shape: a single
/// compact-JSON line per benchmark, as the vendored criterion prints them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchLine {
    /// Benchmark identifier (e.g. `sweep/surface_d5_p1e-3_lr1e-1/eraser+m`).
    pub benchmark: String,
    /// Number of timed samples behind the statistics.
    pub samples: usize,
    /// Mean wall-time per unit of work, in nanoseconds.
    pub mean_ns: u64,
    /// Fastest sample, in nanoseconds.
    pub min_ns: u64,
    /// Slowest sample, in nanoseconds.
    pub max_ns: u64,
}

/// Renders benchmark lines in the snapshot file format: one compact JSON
/// object per line, trailing newline.
#[must_use]
pub fn bench_lines_to_string(lines: &[BenchLine]) -> String {
    let mut out = String::new();
    for line in lines {
        let _ = writeln!(
            out,
            "{}",
            serde_json::to_string(line).expect("bench lines are always serializable")
        );
    }
    out
}

/// Parses a snapshot file (one JSON object per line; blank lines ignored).
///
/// # Errors
/// Returns a message naming the first malformed line.
pub fn parse_bench_lines(text: &str) -> Result<Vec<BenchLine>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(index, line)| {
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", index + 1))
        })
        .collect()
}

/// One benchmark that got slower than the baseline allows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Regression {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Baseline best-sample time (ns); 0 when the benchmark vanished.
    pub baseline_ns: u64,
    /// Current best-sample time (ns); 0 when the benchmark vanished.
    pub current_ns: u64,
    /// `current / baseline` slowdown ratio (∞ when the benchmark vanished).
    pub ratio: f64,
}

/// Compares a fresh snapshot against a baseline, flagging every benchmark
/// whose best-sample time regressed by more than `tolerance` (0.25 ⇒ fail
/// beyond +25 %) and every baseline benchmark missing from the snapshot.
/// Minimum sample times are compared because they are the most noise-robust
/// statistic of a small sample set. Benchmarks new in `current` pass silently.
#[must_use]
pub fn compare_bench_lines(
    current: &[BenchLine],
    baseline: &[BenchLine],
    tolerance: f64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base in baseline {
        let Some(now) = current.iter().find(|l| l.benchmark == base.benchmark) else {
            regressions.push(Regression {
                benchmark: base.benchmark.clone(),
                baseline_ns: base.min_ns,
                current_ns: 0,
                ratio: f64::INFINITY,
            });
            continue;
        };
        let ratio = if base.min_ns == 0 {
            1.0 // an empty baseline row can never regress
        } else {
            now.min_ns as f64 / base.min_ns as f64
        };
        if ratio > 1.0 + tolerance {
            regressions.push(Regression {
                benchmark: base.benchmark.clone(),
                baseline_ns: base.min_ns,
                current_ns: now.min_ns,
                ratio,
            });
        }
    }
    regressions
}

/// Formats a float with a fixed number of significant-looking decimals for tables.
#[must_use]
pub fn fmt_float(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else if value.abs() >= 0.01 {
        format!("{value:.4}")
    } else {
        format!("{value:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = text_table(
            &["policy", "lrcs"],
            &[
                vec!["eraser+m".to_string(), "12".to_string()],
                vec!["gladiator+m".to_string(), "7".to_string()],
            ],
        );
        assert!(table.contains("policy"));
        assert!(table.contains("gladiator+m"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let _ = text_table(&["a", "b"], &[vec!["only-one".to_string()]]);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct Row {
            name: &'static str,
            value: f64,
        }
        let json = to_json(&vec![Row { name: "x", value: 1.5 }]);
        assert!(json.contains("\"name\": \"x\""));
    }

    fn line(benchmark: &str, min_ns: u64) -> BenchLine {
        BenchLine {
            benchmark: benchmark.to_string(),
            samples: 5,
            mean_ns: min_ns + 10,
            min_ns,
            max_ns: min_ns + 30,
        }
    }

    #[test]
    fn bench_lines_round_trip_through_the_snapshot_format() {
        let lines = vec![line("sweep/a", 100), line("sweep/b", 250)];
        let text = bench_lines_to_string(&lines);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(parse_bench_lines(&text).unwrap(), lines);
    }

    #[test]
    fn parse_bench_lines_reads_the_committed_baseline_shape() {
        let text = r#"{"benchmark":"simulator_rounds/surface_gladiator_m/3","samples":20,"mean_ns":195455,"min_ns":167478,"max_ns":361948}"#;
        let parsed = parse_bench_lines(text).unwrap();
        assert_eq!(parsed[0].benchmark, "simulator_rounds/surface_gladiator_m/3");
        assert_eq!(parsed[0].min_ns, 167478);
        assert!(parse_bench_lines("not json").is_err());
    }

    #[test]
    fn comparison_flags_only_regressions_beyond_tolerance() {
        let baseline = vec![line("a", 100), line("b", 100), line("c", 100)];
        let current = vec![line("a", 124), line("b", 126), line("c", 99), line("new", 500)];
        let regressions = compare_bench_lines(&current, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].benchmark, "b");
        assert!((regressions[0].ratio - 1.26).abs() < 1e-9);
    }

    #[test]
    fn comparison_flags_missing_benchmarks() {
        let baseline = vec![line("kept", 100), line("dropped", 100)];
        let current = vec![line("kept", 100)];
        let regressions = compare_bench_lines(&current, &baseline, 0.25);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].benchmark, "dropped");
        assert!(regressions[0].ratio.is_infinite());
    }

    #[test]
    fn float_formatting_covers_ranges() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(123.456), "123.5");
        assert_eq!(fmt_float(0.1234), "0.1234");
        assert!(fmt_float(1.2e-5).contains('e'));
    }
}
