//! Small reporting helpers: aligned text tables and JSON export.

use serde::Serialize;
use std::fmt::Write as _;

/// Renders a simple aligned text table.
///
/// # Panics
/// Panics if a row has a different number of cells than the header.
#[must_use]
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells, &widths));
    let _ = writeln!(out, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row, &widths));
    }
    out
}

/// Serializes any result rows to pretty JSON (the machine-readable artifact output).
///
/// # Panics
/// Panics if serialization fails, which cannot happen for the plain-data result types
/// of this crate.
#[must_use]
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment results are always serializable")
}

/// Formats a float with a fixed number of significant-looking decimals for tables.
#[must_use]
pub fn fmt_float(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else if value.abs() >= 0.01 {
        format!("{value:.4}")
    } else {
        format!("{value:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let table = text_table(
            &["policy", "lrcs"],
            &[
                vec!["eraser+m".to_string(), "12".to_string()],
                vec!["gladiator+m".to_string(), "7".to_string()],
            ],
        );
        assert!(table.contains("policy"));
        assert!(table.contains("gladiator+m"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let _ = text_table(&["a", "b"], &[vec!["only-one".to_string()]]);
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct Row {
            name: &'static str,
            value: f64,
        }
        let json = to_json(&vec![Row { name: "x", value: 1.5 }]);
        assert!(json.contains("\"name\": \"x\""));
    }

    #[test]
    fn float_formatting_covers_ranges() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(123.456), "123.5");
        assert_eq!(fmt_float(0.1234), "0.1234");
        assert!(fmt_float(1.2e-5).contains('e'));
    }
}
