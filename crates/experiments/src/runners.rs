//! One runner per table and figure of the paper's evaluation.
//!
//! Every runner accepts a [`Scale`] so the same code path serves three purposes:
//! unit/integration tests (`Scale::smoke`), the Criterion benchmarks
//! (`Scale::quick`), and full paper-scale reproduction runs (`Scale::paper`, hours of
//! CPU time, matching the artifact's 15–20 h figure). Results are serializable and can
//! be rendered as text tables via [`crate::report`].

use serde::{Deserialize, Serialize};

use gladiator::{
    hardware::{checker_luts, lut_table, LutReport},
    GladiatorConfig, GladiatorModel, MobilityEstimator, MobilityRegime,
};
use leakage_speculation::PolicyKind;
use leaky_sim::{device::DeviceModel, NoiseParams};
use qec_codes::Code;

use crate::engine::BatchEngine;
use crate::harness::{
    compare_policies, run_policy_experiment, ExperimentSpec, PolicyExperimentResult,
};
use crate::scenario::{CodeFamily, Scenario};
use crate::sweep::run_scenarios;

/// Scaling knobs shared by all runners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Monte-Carlo shots per configuration.
    pub shots: usize,
    /// Multiplier on the paper's round counts (1.0 = paper scale).
    pub rounds_factor: f64,
    /// Cap on code distances (the paper goes up to d = 17 for Figure 14).
    pub max_distance: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Tiny scale for unit and integration tests (seconds).
    #[must_use]
    pub fn smoke() -> Self {
        Scale { shots: 4, rounds_factor: 0.02, max_distance: 5, seed: 7 }
    }

    /// Bench scale: small but large enough for trends to be visible (minutes).
    #[must_use]
    pub fn quick() -> Self {
        Scale { shots: 24, rounds_factor: 0.1, max_distance: 7, seed: 11 }
    }

    /// Paper scale (hours; mirrors the artifact's recommended 100k–1M shots).
    #[must_use]
    pub fn paper() -> Self {
        Scale { shots: 10_000, rounds_factor: 1.0, max_distance: 17, seed: 2025 }
    }

    /// Scales a paper-scale round count by `rounds_factor` (at least 4 rounds).
    #[must_use]
    pub fn rounds(&self, paper_rounds: usize) -> usize {
        ((paper_rounds as f64 * self.rounds_factor).round() as usize).max(4)
    }

    /// Caps a paper distance at `max_distance`, keeping it odd and at least 3.
    #[must_use]
    pub fn distance(&self, paper_distance: usize) -> usize {
        let capped = paper_distance.min(self.max_distance);
        if capped % 2 == 0 {
            capped.saturating_sub(1).max(3)
        } else {
            capped.max(3)
        }
    }
}

fn spec(policy: PolicyKind, noise: NoiseParams, rounds: usize, scale: &Scale) -> ExperimentSpec {
    ExperimentSpec {
        policy,
        noise,
        gladiator: GladiatorConfig::default(),
        rounds,
        shots: scale.shots,
        seed: scale.seed,
        leakage_sampling: true,
        decode: false,
    }
    .calibrated()
}

fn default_noise(p: f64, lr: f64) -> NoiseParams {
    NoiseParams::builder().physical_error_rate(p).leakage_ratio(lr).build()
}

// ---------------------------------------------------------------------------------
// Figure 1(b,c): headline FN/FP/LRC comparison and leakage population at d = 11.
// ---------------------------------------------------------------------------------

/// Runs the headline comparison of Figure 1(b) and 1(c).
#[must_use]
pub fn fig1_headline(scale: &Scale) -> Vec<PolicyExperimentResult> {
    let d = scale.distance(11);
    let code = Code::rotated_surface(d);
    let rounds = scale.rounds(100 * 11);
    let base = spec(PolicyKind::EraserM, default_noise(1e-3, 0.1), rounds, scale);
    compare_policies(
        &code,
        &base,
        &[PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::GladiatorDM, PolicyKind::Ideal],
    )
}

// ---------------------------------------------------------------------------------
// Figure 3: device-level leakage characterization (IBM substitution).
// ---------------------------------------------------------------------------------

/// Result of the device-model characterization of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Probability of reading |1⟩ on the target of a CNOT with a leaked control.
    pub leaked_cnot_bitflip: f64,
    /// Leakage population after each of `k` CNOTs with an injected leak.
    pub accumulation_with_injection: Vec<f64>,
    /// Leakage population after each of `k` CNOTs without injection.
    pub accumulation_without_injection: Vec<f64>,
}

/// Reproduces Figure 3(a)/(c): leaked-CNOT bit-flip probability and leakage
/// accumulation over repeated CNOTs (10 000 shots in the paper).
#[must_use]
pub fn fig3_device_characterization(scale: &Scale) -> Fig3Result {
    let shots = (scale.shots * 500).max(2_000);
    let model = DeviceModel::new(default_noise(1e-3, 0.1));
    Fig3Result {
        leaked_cnot_bitflip: model.leaked_control_cnot(shots, scale.seed).p_target_one,
        accumulation_with_injection: model.leakage_accumulation(40, true, shots, scale.seed + 1),
        accumulation_without_injection: model.leakage_accumulation(
            40,
            false,
            shots,
            scale.seed + 2,
        ),
    }
}

// ---------------------------------------------------------------------------------
// Figure 4(b): open-loop policies vs ERASER+M (logical error rate).
// ---------------------------------------------------------------------------------

/// One LER sample of Figures 4(b), 12 and 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LerRow {
    /// Policy label.
    pub policy: String,
    /// Code distance.
    pub distance: usize,
    /// Physical error rate.
    pub p: f64,
    /// Logical error rate over the decoded shots.
    pub logical_error_rate: f64,
    /// Mean data LRCs per round.
    pub lrcs_per_round: f64,
}

fn ler_sweep(
    distances: &[usize],
    policies: &[PolicyKind],
    p: f64,
    lr: f64,
    rounds_per_d: usize,
    scale: &Scale,
) -> Vec<LerRow> {
    // Expressed as scenarios so the sweep executor shares the code instance,
    // policy factory and decoder across the (distance × policy) grid.
    let mut scenarios = Vec::new();
    for &d in distances {
        let d = scale.distance(d);
        let rounds = scale.rounds(rounds_per_d * d).max(2);
        for &kind in policies {
            scenarios.push(Scenario {
                code: CodeFamily::Surface,
                distance: d,
                rounds,
                p,
                leakage_ratio: lr,
                policy: kind,
                shots: scale.shots,
                seed: scale.seed,
                decode: true,
                decoder: None,
            });
        }
    }
    run_scenarios(&scenarios, false)
        .into_iter()
        .map(|cell| LerRow {
            policy: cell.scenario.policy.label().to_string(),
            distance: cell.scenario.distance,
            p,
            logical_error_rate: cell.metrics.logical_error_rate.unwrap_or(0.0),
            lrcs_per_round: cell.metrics.lrcs_per_round,
        })
        .collect()
}

/// Reproduces Figure 4(b): LER of the open-loop policies and ERASER+M.
#[must_use]
pub fn fig4b_open_loop_ler(scale: &Scale) -> Vec<LerRow> {
    ler_sweep(
        &[3, 5],
        &[PolicyKind::AlwaysLrc, PolicyKind::Staggered, PolicyKind::EraserM],
        1e-3,
        0.1,
        10,
        scale,
    )
}

// ---------------------------------------------------------------------------------
// Figures 5 and 8: per-pattern LRC histograms.
// ---------------------------------------------------------------------------------

/// LRC usage attributed to one observed syndrome pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternUsageRow {
    /// Policy label.
    pub policy: String,
    /// Pattern width (adjacent parity sites).
    pub width: usize,
    /// The observed pattern (bit 0 = first site in CNOT order).
    pub pattern: u32,
    /// LRCs triggered by this pattern on genuinely leaked qubits.
    pub lrcs_with_leak: usize,
    /// LRCs triggered by this pattern on healthy qubits (unnecessary LRCs).
    pub lrcs_without_leak: usize,
}

/// Histogram of which patterns trigger LRCs, split by whether the qubit was actually
/// leaked — the content of Figure 5 (surface code) and Figure 8(b–d) (color code).
#[must_use]
pub fn pattern_usage_histogram(
    code: &Code,
    policy: PolicyKind,
    width_of_interest: usize,
    scale: &Scale,
    rounds: usize,
) -> Vec<PatternUsageRow> {
    let s = spec(policy, default_noise(1e-3, 0.1), rounds, scale);
    let engine = BatchEngine::new(code, &s);
    // Reuse the factory's shared extractor rather than re-deriving the site grouping.
    let extractor = std::sync::Arc::clone(engine.policy_factory().extractor());
    let mut with_leak = vec![0usize; 1 << width_of_interest];
    let mut without_leak = vec![0usize; 1 << width_of_interest];
    // The engine simulates shots in parallel with the model built once; each worker
    // reduces its records to small per-shot histograms on the spot (records are
    // dropped immediately, keeping memory flat at paper-scale shot counts), and the
    // cheap merge below stays sequential.
    let partials = engine.map_records(|_, run| {
        let mut with_leak = vec![0usize; 1 << width_of_interest];
        let mut without_leak = vec![0usize; 1 << width_of_interest];
        for r in 1..run.rounds.len() {
            let patterns = extractor.patterns(&run.rounds[r - 1].detectors);
            for &q in &run.rounds[r].data_lrcs {
                if extractor.width(q) != width_of_interest {
                    continue;
                }
                let pattern = patterns[q] as usize;
                if run.rounds[r].data_leak_before[q] {
                    with_leak[pattern] += 1;
                } else {
                    without_leak[pattern] += 1;
                }
            }
        }
        (with_leak, without_leak)
    });
    for (shot_with, shot_without) in partials {
        for (total, count) in with_leak.iter_mut().zip(shot_with) {
            *total += count;
        }
        for (total, count) in without_leak.iter_mut().zip(shot_without) {
            *total += count;
        }
    }
    (0..(1u32 << width_of_interest))
        .map(|pattern| PatternUsageRow {
            policy: policy.label().to_string(),
            width: width_of_interest,
            pattern,
            lrcs_with_leak: with_leak[pattern as usize],
            lrcs_without_leak: without_leak[pattern as usize],
        })
        .collect()
}

/// Reproduces Figure 5: 4-bit pattern histograms for ERASER+M and GLADIATOR+M on the
/// surface code.
#[must_use]
pub fn fig5_surface_pattern_usage(scale: &Scale) -> Vec<PatternUsageRow> {
    let d = scale.distance(7);
    let code = Code::rotated_surface(d);
    let rounds = scale.rounds(100);
    let mut rows = pattern_usage_histogram(&code, PolicyKind::EraserM, 4, scale, rounds);
    rows.extend(pattern_usage_histogram(&code, PolicyKind::GladiatorM, 4, scale, rounds));
    rows
}

/// Flagged-pattern counts per policy for a width (the summary panel of Figure 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlaggedCountRow {
    /// Policy label.
    pub policy: String,
    /// Pattern width.
    pub width: usize,
    /// Number of flagged patterns out of `2^width` (or `4^width` for two-round).
    pub flagged: usize,
    /// Size of the pattern space.
    pub space: usize,
}

/// Reproduces Figure 8 (b–d): color-code LRC distributions and flagged-set sizes for
/// ERASER+M, GLADIATOR+M and GLADIATOR-D+M.
#[must_use]
pub fn fig8_color_code(scale: &Scale) -> (Vec<FlaggedCountRow>, Vec<PatternUsageRow>) {
    let d = scale.distance(5);
    let code = Code::color_666(d);
    let config = GladiatorConfig::default();
    let model = GladiatorModel::for_code(&code, config);
    let mut counts = Vec::new();
    let eraser_flagged =
        (0..8u32).filter(|&p| leakage_speculation::EraserPolicy::flags(3, p)).count();
    counts.push(FlaggedCountRow {
        policy: "eraser+m".to_string(),
        width: 3,
        flagged: eraser_flagged,
        space: 8,
    });
    if let Some(table) = model.single_round_table(3) {
        counts.push(FlaggedCountRow {
            policy: "gladiator+m".to_string(),
            width: 3,
            flagged: table.flagged_count(),
            space: 8,
        });
    }
    if let Some(table) = model.two_round_table(3) {
        counts.push(FlaggedCountRow {
            policy: "gladiator-d+m".to_string(),
            width: 3,
            flagged: table.flagged_count(),
            space: 64,
        });
    }
    let rounds = scale.rounds(100);
    let mut usage = pattern_usage_histogram(&code, PolicyKind::EraserM, 3, scale, rounds);
    usage.extend(pattern_usage_histogram(&code, PolicyKind::GladiatorM, 3, scale, rounds));
    usage.extend(pattern_usage_histogram(&code, PolicyKind::GladiatorDM, 3, scale, rounds));
    (counts, usage)
}

// ---------------------------------------------------------------------------------
// Figure 9: FN / FP / LRC for the six closed-loop variants at d = 7.
// ---------------------------------------------------------------------------------

/// Reproduces Figure 9: false negatives, false positives and LRC counts for
/// ERASER / GLADIATOR / GLADIATOR-D with and without MLR (surface code d = 7).
#[must_use]
pub fn fig9_speculation_accuracy(scale: &Scale) -> Vec<PolicyExperimentResult> {
    let d = scale.distance(7);
    let code = Code::rotated_surface(d);
    let rounds = scale.rounds(10 * 7);
    let base = spec(PolicyKind::Eraser, default_noise(1e-3, 0.1), rounds, scale);
    compare_policies(
        &code,
        &base,
        &[
            PolicyKind::Eraser,
            PolicyKind::Gladiator,
            PolicyKind::GladiatorD,
            PolicyKind::EraserM,
            PolicyKind::GladiatorM,
            PolicyKind::GladiatorDM,
        ],
    )
}

// ---------------------------------------------------------------------------------
// Figure 10 / 11: leakage-population trajectories.
// ---------------------------------------------------------------------------------

/// A leakage-population trajectory for one (code, leakage-ratio, policy) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DlpSeriesRow {
    /// Code name.
    pub code: String,
    /// Policy label.
    pub policy: String,
    /// Leakage ratio `lr`.
    pub leakage_ratio: f64,
    /// Per-round data-leakage population, averaged over shots.
    pub dlp_series: Vec<f64>,
    /// Mean data LRCs per round.
    pub lrcs_per_round: f64,
}

/// Reproduces Figure 10: DLP over 100·d rounds for surface codes at several distances
/// and leakage ratios.
#[must_use]
pub fn fig10_surface_dlp(scale: &Scale) -> Vec<DlpSeriesRow> {
    let policies =
        [PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::GladiatorDM, PolicyKind::Ideal];
    let mut rows = Vec::new();
    for &(paper_d, lr) in &[(7usize, 0.1f64), (11, 0.1), (11, 1.0)] {
        let d = scale.distance(paper_d);
        let code = Code::rotated_surface(d);
        let rounds = scale.rounds(100 * paper_d);
        for &kind in &policies {
            let s = spec(kind, default_noise(1e-3, lr), rounds, scale);
            let result = run_policy_experiment(&code, &s);
            rows.push(DlpSeriesRow {
                code: code.name().to_string(),
                policy: kind.label().to_string(),
                leakage_ratio: lr,
                dlp_series: result.metrics.dlp_series.clone(),
                lrcs_per_round: result.metrics.lrcs_per_round,
            });
        }
    }
    rows
}

/// Reproduces Figure 11: DLP and LRC usage on the color code (d = 19 in the paper)
/// over 100 QEC cycles.
#[must_use]
pub fn fig11_color_dlp(scale: &Scale) -> Vec<DlpSeriesRow> {
    let d = scale.distance(19);
    let code = Code::color_666(d);
    let rounds = scale.rounds(100).max(20);
    [PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::GladiatorDM]
        .iter()
        .map(|&kind| {
            let s = spec(kind, default_noise(1e-3, 0.1), rounds, scale);
            let result = run_policy_experiment(&code, &s);
            DlpSeriesRow {
                code: code.name().to_string(),
                policy: kind.label().to_string(),
                leakage_ratio: 0.1,
                dlp_series: result.metrics.dlp_series.clone(),
                lrcs_per_round: result.metrics.lrcs_per_round,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------------
// Figure 12 / 13: logical error rates.
// ---------------------------------------------------------------------------------

/// Reproduces Figure 12: LER vs code distance for NO-LRC, Always-LRC, ERASER+M and
/// GLADIATOR+M, plus the suppression factor Λ.
#[must_use]
pub fn fig12_ler_vs_distance(scale: &Scale) -> Vec<LerRow> {
    ler_sweep(
        &[3, 5, 7],
        &[PolicyKind::NoLrc, PolicyKind::AlwaysLrc, PolicyKind::EraserM, PolicyKind::GladiatorM],
        1e-3,
        0.1,
        10,
        scale,
    )
}

/// Suppression factor Λ between consecutive distances for one policy (Figure 12's
/// scalability metric): `Λ = ε_d / ε_{d+2}`.
#[must_use]
pub fn suppression_factor(rows: &[LerRow], policy: &str) -> Vec<f64> {
    let mut policy_rows: Vec<&LerRow> = rows.iter().filter(|r| r.policy == policy).collect();
    policy_rows.sort_by_key(|r| r.distance);
    policy_rows
        .windows(2)
        .filter(|w| w[1].logical_error_rate > 0.0)
        .map(|w| w[0].logical_error_rate / w[1].logical_error_rate)
        .collect()
}

/// Reproduces Figure 13: LER and LRC usage at p = 10⁻³ vs p = 10⁻⁴.
#[must_use]
pub fn fig13_error_rate_sensitivity(scale: &Scale) -> Vec<LerRow> {
    let mut rows = ler_sweep(
        &[5],
        &[
            PolicyKind::AlwaysLrc,
            PolicyKind::EraserM,
            PolicyKind::GladiatorM,
            PolicyKind::GladiatorDM,
        ],
        1e-3,
        0.1,
        10,
        scale,
    );
    rows.extend(ler_sweep(
        &[5],
        &[
            PolicyKind::AlwaysLrc,
            PolicyKind::EraserM,
            PolicyKind::GladiatorM,
            PolicyKind::GladiatorDM,
        ],
        1e-4,
        0.1,
        10,
        scale,
    ));
    rows
}

// ---------------------------------------------------------------------------------
// Figure 14: total leakage and total LRCs vs code distance.
// ---------------------------------------------------------------------------------

/// One (distance, policy) sample of Figure 14.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceScalingRow {
    /// Code distance.
    pub distance: usize,
    /// Policy label.
    pub policy: String,
    /// Mean leaked-qubit-rounds per shot (total leakage exposure).
    pub average_dlp: f64,
    /// Mean data LRCs per shot.
    pub data_lrcs: f64,
}

/// Reproduces Figure 14: total leakages and LRC usage as the code distance grows.
#[must_use]
pub fn fig14_distance_scaling(scale: &Scale) -> Vec<DistanceScalingRow> {
    let mut rows = Vec::new();
    for &paper_d in &[7usize, 11, 13, 17] {
        let d = scale.distance(paper_d);
        if rows.iter().any(|r: &DistanceScalingRow| r.distance == d) {
            continue; // capped distances collapse; keep one copy
        }
        let code = Code::rotated_surface(d);
        let rounds = scale.rounds(100 * paper_d);
        for &kind in &[PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::Ideal] {
            let s = spec(kind, default_noise(1e-3, 0.1), rounds, scale);
            let result = run_policy_experiment(&code, &s);
            rows.push(DistanceScalingRow {
                distance: d,
                policy: kind.label().to_string(),
                average_dlp: result.metrics.average_dlp,
                data_lrcs: result.metrics.data_lrcs,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------------
// Table 2: leakage-detection efficacy of all baselines.
// ---------------------------------------------------------------------------------

/// Reproduces Table 2: FN / FP / LRC rates and leakage populations after two horizons
/// for Always-LRC, ERASER(±M), MLR-only, Staggered and GLADIATOR+M.
#[must_use]
pub fn table2_efficacy(scale: &Scale) -> Vec<PolicyExperimentResult> {
    let d = scale.distance(7);
    let code = Code::rotated_surface(d);
    let rounds = scale.rounds(700).max(10);
    let base = spec(PolicyKind::AlwaysLrc, default_noise(1e-3, 0.1), rounds, scale);
    compare_policies(
        &code,
        &base,
        &[
            PolicyKind::AlwaysLrc,
            PolicyKind::Eraser,
            PolicyKind::EraserM,
            PolicyKind::MlrOnly,
            PolicyKind::Staggered,
            PolicyKind::GladiatorM,
        ],
    )
}

// ---------------------------------------------------------------------------------
// Table 3: FPGA resource usage.
// ---------------------------------------------------------------------------------

/// Reproduces Table 3: LUTs per logical qubit for GLADIATOR vs ERASER at d = 5..25.
#[must_use]
pub fn table3_lut_usage() -> Vec<LutReport> {
    // Build the checker expression from the surface-code model so the per-checker cost
    // reflects this repository's actual flagged-pattern set.
    let model = GladiatorModel::for_code(&Code::rotated_surface(5), GladiatorConfig::default());
    let per_checker = checker_luts(&model.minimized_expression());
    lut_table(&[5, 9, 13, 17, 21, 25], per_checker)
}

// ---------------------------------------------------------------------------------
// Table 4: leakage equilibrium and speculation inaccuracy.
// ---------------------------------------------------------------------------------

/// One Table 4 cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Policy label.
    pub policy: String,
    /// Leakage ratio of the sweep point (equilibrium columns).
    pub leakage_ratio: f64,
    /// Physical error rate of the sweep point (inaccuracy columns).
    pub p: f64,
    /// Steady-state (final-round) data leakage population.
    pub leakage_equilibrium: f64,
    /// Speculation inaccuracy (FP + FN) per round.
    pub inaccuracy_per_round: f64,
}

/// Reproduces Table 4 for GLADIATOR+M and ERASER+M at d = 11.
#[must_use]
pub fn table4_equilibrium(scale: &Scale) -> Vec<Table4Row> {
    let d = scale.distance(11);
    let code = Code::rotated_surface(d);
    let rounds = scale.rounds(100 * 11);
    let mut rows = Vec::new();
    for &kind in &[PolicyKind::GladiatorM, PolicyKind::EraserM] {
        for &lr in &[0.01f64, 0.1, 1.0] {
            let s = spec(kind, default_noise(1e-3, lr), rounds, scale);
            let result = run_policy_experiment(&code, &s);
            rows.push(Table4Row {
                policy: kind.label().to_string(),
                leakage_ratio: lr,
                p: 1e-3,
                leakage_equilibrium: result.metrics.final_dlp,
                inaccuracy_per_round: result.metrics.inaccuracy_per_round,
            });
        }
        for &p in &[1e-3f64, 1e-4] {
            let s = spec(kind, default_noise(p, 0.1), rounds, scale);
            let result = run_policy_experiment(&code, &s);
            rows.push(Table4Row {
                policy: kind.label().to_string(),
                leakage_ratio: 0.1,
                p,
                leakage_equilibrium: result.metrics.final_dlp,
                inaccuracy_per_round: result.metrics.inaccuracy_per_round,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------------
// Table 5: generalization across code families.
// ---------------------------------------------------------------------------------

/// Reduction factors of GLADIATOR+M over ERASER+M for one code family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Code family / instance name.
    pub code: String,
    /// LRC-count reduction factor (ERASER / GLADIATOR).
    pub lrc_reduction: f64,
    /// Data-leakage-population reduction factor.
    pub dlp_reduction: f64,
    /// LRC-attributable cycle-time reduction factor.
    pub cycle_time_reduction: f64,
}

/// Reproduces Table 5: reduction factors of GLADIATOR over ERASER on the surface,
/// color, HGP and BPC codes.
#[must_use]
pub fn table5_code_families(scale: &Scale) -> Vec<Table5Row> {
    let codes: Vec<Code> = vec![
        Code::rotated_surface(scale.distance(7)),
        Code::color_666(scale.distance(7)),
        Code::hgp(if scale.max_distance >= 9 { 3 } else { 2 }),
        Code::bpc(21),
    ];
    let rounds = scale.rounds(100).max(10);
    codes
        .into_iter()
        .map(|code| {
            let base = spec(PolicyKind::EraserM, default_noise(1e-3, 0.1), rounds, scale);
            let results =
                compare_policies(&code, &base, &[PolicyKind::EraserM, PolicyKind::GladiatorM]);
            let (eraser, glad) = (&results[0].metrics, &results[1].metrics);
            let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { f64::INFINITY };
            Table5Row {
                code: code.name().to_string(),
                lrc_reduction: ratio(eraser.data_lrcs, glad.data_lrcs),
                dlp_reduction: ratio(eraser.average_dlp, glad.average_dlp),
                cycle_time_reduction: ratio(eraser.lrc_time_ns, glad.lrc_time_ns),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------------
// Table 6: leakage-mobility classification.
// ---------------------------------------------------------------------------------

/// One mobility point of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Row {
    /// Physical leakage mobility used in the simulation (%).
    pub mobility_percent: f64,
    /// The true regime according to the 5% threshold.
    pub true_regime: String,
    /// Fraction of shots classified into the true regime.
    pub accuracy: f64,
    /// Mean estimated conditional probability.
    pub estimated_conditional: f64,
}

/// Reproduces Table 6: classification accuracy of the mobility estimator at several
/// physical mobilities.
#[must_use]
pub fn table6_mobility(scale: &Scale) -> Vec<Table6Row> {
    let d = scale.distance(7);
    let code = Code::rotated_surface(d);
    let adjacency: Vec<Vec<usize>> = {
        let adj = code.data_adjacency();
        (0..code.num_data()).map(|q| adj.pattern_checks(q)).collect()
    };
    let rounds = scale.rounds(300).max(20);
    [1.0f64, 2.5, 5.0, 6.0, 9.0]
        .iter()
        .map(|&mobility_percent| {
            let mobility = mobility_percent / 100.0;
            let true_regime =
                if mobility < 0.05 { MobilityRegime::Low } else { MobilityRegime::High };
            let noise = NoiseParams::builder()
                .physical_error_rate(1e-3)
                .leakage_ratio(1.0)
                .mobility(mobility)
                .build();
            let s = spec(PolicyKind::GladiatorM, noise, rounds, scale);
            let mut correct = 0usize;
            let mut classified = 0usize;
            let mut conditional_sum = 0.0;
            // Per-shot mobility estimation happens on the worker threads; only the
            // tiny (regime, conditional) summaries flow back.
            let verdicts = BatchEngine::new(&code, &s).map_records(|_, run| {
                let mut estimator = MobilityEstimator::new();
                for r in 1..run.rounds.len() {
                    estimator.observe_round(
                        &run.rounds[r].data_lrcs,
                        &run.rounds[r - 1].mlr_leak_flags,
                        &adjacency,
                    );
                }
                estimator
                    .classify()
                    .map(|regime| (regime, estimator.conditional_probability().unwrap_or(0.0)))
            });
            for (regime, conditional) in verdicts.into_iter().flatten() {
                classified += 1;
                conditional_sum += conditional;
                if regime == true_regime {
                    correct += 1;
                }
            }
            Table6Row {
                mobility_percent,
                true_regime: format!("{true_regime:?}"),
                accuracy: if classified > 0 { correct as f64 / classified as f64 } else { 0.0 },
                estimated_conditional: if classified > 0 {
                    conditional_sum / classified as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_presets_are_ordered() {
        assert!(Scale::smoke().shots < Scale::quick().shots);
        assert!(Scale::quick().shots < Scale::paper().shots);
        assert_eq!(Scale::smoke().distance(11), 5);
        assert_eq!(Scale::paper().distance(11), 11);
        assert!(Scale::smoke().rounds(1000) >= 4);
    }

    #[test]
    fn fig3_reproduces_fifty_percent_bitflip_and_accumulation() {
        let result = fig3_device_characterization(&Scale::smoke());
        assert!((result.leaked_cnot_bitflip - 0.5).abs() < 0.07);
        let with = result.accumulation_with_injection.last().copied().unwrap_or(0.0);
        let without = result.accumulation_without_injection.last().copied().unwrap_or(1.0);
        assert!(with > without);
    }

    #[test]
    fn fig9_smoke_produces_all_six_policies() {
        let results = fig9_speculation_accuracy(&Scale::smoke());
        assert_eq!(results.len(), 6);
        assert!(results.iter().any(|r| r.policy == "gladiator-d+m"));
    }

    #[test]
    fn table3_matches_published_gladiator_row_shape() {
        let table = table3_lut_usage();
        assert_eq!(table.len(), 6);
        // Reduction factors must be large at every distance.
        for report in &table {
            assert!(report.reduction_factor() > 10.0);
        }
    }

    #[test]
    fn table5_smoke_covers_all_four_code_families() {
        let rows = table5_code_families(&Scale::smoke());
        assert_eq!(rows.len(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.code.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("surface")));
        assert!(names.iter().any(|n| n.starts_with("color")));
        assert!(names.iter().any(|n| n.starts_with("hgp")));
        assert!(names.iter().any(|n| n.starts_with("bpc")));
    }

    #[test]
    fn pattern_histogram_counts_only_the_requested_width() {
        let scale = Scale::smoke();
        let code = Code::rotated_surface(3);
        let rows = pattern_usage_histogram(&code, PolicyKind::EraserM, 4, &scale, 10);
        assert_eq!(rows.len(), 16);
        assert!(rows.iter().all(|r| r.width == 4));
    }

    #[test]
    fn suppression_factor_handles_missing_policies() {
        let rows = vec![
            LerRow {
                policy: "x".into(),
                distance: 3,
                p: 1e-3,
                logical_error_rate: 0.1,
                lrcs_per_round: 0.0,
            },
            LerRow {
                policy: "x".into(),
                distance: 5,
                p: 1e-3,
                logical_error_rate: 0.02,
                lrcs_per_round: 0.0,
            },
        ];
        let lambda = suppression_factor(&rows, "x");
        assert_eq!(lambda.len(), 1);
        assert!((lambda[0] - 5.0).abs() < 1e-9);
        assert!(suppression_factor(&rows, "missing").is_empty());
    }
}
