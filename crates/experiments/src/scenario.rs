//! Declarative workload descriptions.
//!
//! A [`Scenario`] names one `(code family, distance, rounds, error rate,
//! leakage ratio, policy, shots, seed)` combination — everything needed to run
//! one Monte-Carlo cell without writing a new runner function. Scenarios are
//! plain serializable data: sweep specs expand into them
//! ([`crate::sweep::SweepSpec`]), the `repro` binary parses them from JSON or
//! grid flags, and [`crate::sweep::run_scenarios`] executes batches of them on
//! the [`crate::engine::BatchEngine`] with shared artifacts.

use serde::{de, ser, Deserialize, Serialize, Value};

use gladiator::GladiatorConfig;
use leakage_speculation::PolicyKind;
use leaky_sim::NoiseParams;
use qec_codes::Code;
use qec_decoder::DecoderKind;

use crate::harness::ExperimentSpec;

/// Parses a decoder selector from its wire label, rejecting unknown labels
/// with an error that names the known ones.
pub(crate) fn decoder_from_value(value: &Value) -> Result<DecoderKind, de::Error> {
    match value {
        Value::Str(label) => DecoderKind::from_label(label).ok_or_else(|| {
            de::expected(&format!("decoder label ({})", DecoderKind::known_labels()), value)
        }),
        other => Err(de::expected("decoder label string", other)),
    }
}

/// The code families the workspace can construct, keyed for sweep grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeFamily {
    /// Rotated surface code; the size parameter is the (odd) distance `d ≥ 3`.
    Surface,
    /// Triangular 6.6.6 color code; the size parameter is the (odd) distance `d ≥ 3`.
    Color,
    /// Hypergraph-product code from a quasi-cyclic LDPC seed; the size
    /// parameter is the seed circulant size `l ≥ 2`.
    Hgp,
    /// Bivariate-polynomial (BPC) qLDPC code; the size parameter is the
    /// circulant size `l`, a positive multiple of 7.
    Bpc,
}

impl CodeFamily {
    /// Every family, in sweep-grid listing order.
    pub const ALL: [CodeFamily; 4] =
        [CodeFamily::Surface, CodeFamily::Color, CodeFamily::Hgp, CodeFamily::Bpc];

    /// The lowercase name used in grids, reports and scenario ids.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodeFamily::Surface => "surface",
            CodeFamily::Color => "color",
            CodeFamily::Hgp => "hgp",
            CodeFamily::Bpc => "bpc",
        }
    }

    /// Parses a grid label back into a family (inverse of [`CodeFamily::label`]).
    #[must_use]
    pub fn from_label(label: &str) -> Option<CodeFamily> {
        CodeFamily::ALL.iter().copied().find(|family| family.label() == label)
    }

    /// Checks that `size` is a valid size parameter for this family.
    ///
    /// # Errors
    /// Returns a message naming the constraint the size violates.
    pub fn validate_size(self, size: usize) -> Result<(), String> {
        let ok = match self {
            CodeFamily::Surface | CodeFamily::Color => size >= 3 && size % 2 == 1,
            CodeFamily::Hgp => size >= 2,
            CodeFamily::Bpc => size > 0 && size % 7 == 0,
        };
        if ok {
            Ok(())
        } else {
            Err(format!(
                "{} does not admit size {size} (surface/color need odd d >= 3, \
                 hgp needs l >= 2, bpc needs a positive multiple of 7)",
                self.label()
            ))
        }
    }

    /// The [`qec_codes::CodeFamily`] this grid family constructs, used for
    /// decoder-backend compatibility checks.
    #[must_use]
    pub fn qec_family(self) -> qec_codes::CodeFamily {
        match self {
            CodeFamily::Surface => qec_codes::CodeFamily::RotatedSurface,
            CodeFamily::Color => qec_codes::CodeFamily::Color666,
            CodeFamily::Hgp => qec_codes::CodeFamily::Hgp,
            CodeFamily::Bpc => qec_codes::CodeFamily::Bpc,
        }
    }

    /// Builds the concrete code instance of this family at `size`.
    ///
    /// # Panics
    /// Panics when `size` violates the family's constraint; call
    /// [`CodeFamily::validate_size`] first for a recoverable check.
    #[must_use]
    pub fn build(self, size: usize) -> Code {
        match self {
            CodeFamily::Surface => Code::rotated_surface(size),
            CodeFamily::Color => Code::color_666(size),
            CodeFamily::Hgp => Code::hgp(size),
            CodeFamily::Bpc => Code::bpc(size),
        }
    }
}

/// One fully-specified Monte-Carlo workload cell.
///
/// `distance` is the family's size parameter (see [`CodeFamily`]). The derived
/// [`ExperimentSpec`] always uses leakage sampling and a GLADIATOR calibration
/// derived from `(p, leakage_ratio)`, matching the paper runners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Code family of the cell.
    pub code: CodeFamily,
    /// Family size parameter (code distance for surface/color).
    pub distance: usize,
    /// QEC rounds per shot.
    pub rounds: usize,
    /// Physical error rate `p`.
    pub p: f64,
    /// Leakage ratio `lr` (`p_leak = lr · p`).
    pub leakage_ratio: f64,
    /// Leakage-mitigation policy under test.
    pub policy: PolicyKind,
    /// Monte-Carlo shots.
    pub shots: usize,
    /// Base RNG seed (shot `i` uses `seed + i`).
    pub seed: u64,
    /// Whether to decode each shot and report a logical error rate.
    pub decode: bool,
    /// Decoder backend for the decoded LER. `None` is the legacy union-find
    /// default; the field is omitted from serialized scenarios when `None`,
    /// so reports without a decoder axis keep their pre-backend bytes (the
    /// additive-field rule — the schema version does not bump).
    pub decoder: Option<DecoderKind>,
}

// Hand-written (not derived) so the optional `decoder` field is *omitted*
// when `None` rather than serialized as `null`: scenarios without a decoder
// axis must stay byte-identical to pre-backend reports.
impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut composer = ser::StructComposer::new();
        composer.field("code", &self.code);
        composer.field("distance", &self.distance);
        composer.field("rounds", &self.rounds);
        composer.field("p", &self.p);
        composer.field("leakage_ratio", &self.leakage_ratio);
        composer.field("policy", &self.policy);
        composer.field("shots", &self.shots);
        composer.field("seed", &self.seed);
        composer.field("decode", &self.decode);
        if let Some(kind) = self.decoder {
            composer.field("decoder", &kind.label());
        }
        composer.end()
    }
}

impl Deserialize for Scenario {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let fields = de::as_object(value, "Scenario")?;
        let decoder = match de::field::<Option<Value>>(fields, "Scenario", "decoder")? {
            None => None,
            Some(value) => Some(decoder_from_value(&value)?),
        };
        Ok(Scenario {
            code: de::field(fields, "Scenario", "code")?,
            distance: de::field(fields, "Scenario", "distance")?,
            rounds: de::field(fields, "Scenario", "rounds")?,
            p: de::field(fields, "Scenario", "p")?,
            leakage_ratio: de::field(fields, "Scenario", "leakage_ratio")?,
            policy: de::field(fields, "Scenario", "policy")?,
            shots: de::field(fields, "Scenario", "shots")?,
            seed: de::field(fields, "Scenario", "seed")?,
            decode: de::field(fields, "Scenario", "decode")?,
            decoder,
        })
    }
}

impl Scenario {
    /// Builds the concrete code instance the scenario runs on.
    #[must_use]
    pub fn build_code(&self) -> Code {
        self.code.build(self.distance)
    }

    /// Lowers the scenario to the harness' [`ExperimentSpec`], with the
    /// GLADIATOR model calibrated to `(p, leakage_ratio)` exactly like the
    /// hand-written paper runners.
    #[must_use]
    pub fn to_spec(&self) -> ExperimentSpec {
        ExperimentSpec {
            policy: self.policy,
            noise: NoiseParams::builder()
                .physical_error_rate(self.p)
                .leakage_ratio(self.leakage_ratio)
                .build(),
            gladiator: GladiatorConfig::default(),
            rounds: self.rounds,
            shots: self.shots,
            seed: self.seed,
            leakage_sampling: true,
            decode: self.decode,
        }
        .calibrated()
    }

    /// A short stable identifier, used as the benchmark name in perf snapshots.
    /// Scenarios on the legacy (absent) decoder keep their pre-backend ids;
    /// an explicit backend is suffixed with `@label`.
    #[must_use]
    pub fn id(&self) -> String {
        let mut id = format!(
            "{}_d{}_p{:e}_lr{:e}/{}",
            self.code.label(),
            self.distance,
            self.p,
            self.leakage_ratio,
            self.policy.label()
        );
        if let Some(kind) = self.decoder {
            id.push('@');
            id.push_str(kind.label());
        }
        id
    }

    /// Checks every field for consistency (size constraint, probabilities,
    /// non-zero shot and round counts).
    ///
    /// # Errors
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.code.validate_size(self.distance)?;
        if !(self.p > 0.0 && self.p <= 1.0) {
            return Err(format!("p = {} is not in (0, 1]", self.p));
        }
        if !(self.leakage_ratio >= 0.0 && self.leakage_ratio * self.p <= 1.0) {
            return Err(format!("leakage ratio {} is out of range", self.leakage_ratio));
        }
        if self.shots == 0 {
            return Err("shots must be positive".to_string());
        }
        if self.rounds == 0 {
            return Err("rounds must be positive".to_string());
        }
        if let Some(kind) = self.decoder {
            kind.supports(self.code.qec_family(), self.distance)
                .map_err(|e| format!("decoder `{}` cannot serve this cell: {e}", kind.label()))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            code: CodeFamily::Surface,
            distance: 3,
            rounds: 8,
            p: 1e-3,
            leakage_ratio: 0.1,
            policy: PolicyKind::GladiatorM,
            shots: 4,
            seed: 7,
            decode: true,
            decoder: None,
        }
    }

    #[test]
    fn family_labels_round_trip() {
        for family in CodeFamily::ALL {
            assert_eq!(CodeFamily::from_label(family.label()), Some(family));
        }
        assert_eq!(CodeFamily::from_label("steane"), None);
    }

    #[test]
    fn size_validation_matches_constructor_constraints() {
        assert!(CodeFamily::Surface.validate_size(5).is_ok());
        assert!(CodeFamily::Surface.validate_size(4).is_err());
        assert!(CodeFamily::Color.validate_size(1).is_err());
        assert!(CodeFamily::Hgp.validate_size(2).is_ok());
        assert!(CodeFamily::Hgp.validate_size(1).is_err());
        assert!(CodeFamily::Bpc.validate_size(14).is_ok());
        assert!(CodeFamily::Bpc.validate_size(10).is_err());
    }

    #[test]
    fn every_family_builds_its_smallest_instance() {
        for (family, size) in [
            (CodeFamily::Surface, 3),
            (CodeFamily::Color, 3),
            (CodeFamily::Hgp, 2),
            (CodeFamily::Bpc, 7),
        ] {
            family.validate_size(size).unwrap();
            let code = family.build(size);
            assert!(code.name().starts_with(family.label()), "{}", code.name());
        }
    }

    #[test]
    fn spec_lowering_calibrates_the_gladiator_model() {
        let scenario = Scenario { p: 2e-3, leakage_ratio: 0.5, ..sample() };
        let spec = scenario.to_spec();
        assert!((spec.noise.p - 2e-3).abs() < 1e-15);
        assert!((spec.gladiator.p - 2e-3).abs() < 1e-15);
        assert!((spec.gladiator.leakage_ratio - 0.5).abs() < 1e-12);
        assert!(spec.leakage_sampling);
        assert!(spec.decode);
        assert_eq!(spec.rounds, 8);
    }

    #[test]
    fn scenario_ids_encode_the_cell_coordinates() {
        assert_eq!(sample().id(), "surface_d3_p1e-3_lr1e-1/gladiator+m");
        let explicit = Scenario { decoder: Some(DecoderKind::Lookup), ..sample() };
        assert_eq!(explicit.id(), "surface_d3_p1e-3_lr1e-1/gladiator+m@lookup");
    }

    #[test]
    fn decoder_field_is_omitted_when_absent_and_round_trips_when_present() {
        // Legacy scenarios must keep their exact pre-backend bytes.
        let json = serde_json::to_string(&sample()).unwrap();
        assert!(!json.contains("decoder"), "unexpected decoder field: {json}");
        assert_eq!(serde_json::from_str::<Scenario>(&json).unwrap(), sample());
        // An explicit backend serializes as its wire label and round-trips.
        let explicit = Scenario { decoder: Some(DecoderKind::Lookup), ..sample() };
        let json = serde_json::to_string(&explicit).unwrap();
        assert!(json.ends_with(r#""decode":true,"decoder":"lookup"}"#), "{json}");
        assert_eq!(serde_json::from_str::<Scenario>(&json).unwrap(), explicit);
        // Unknown decoder labels are typed deserialization errors.
        let bad = json.replace("lookup", "mwpm");
        let err = serde_json::from_str::<Scenario>(&bad).unwrap_err();
        assert!(err.to_string().contains("uf, lookup"), "{err}");
    }

    #[test]
    fn validation_rejects_decoder_family_mismatches() {
        // lookup: only surface/color at exactly d=3.
        assert!(Scenario { decoder: Some(DecoderKind::Lookup), ..sample() }.validate().is_ok());
        let d5 = Scenario { distance: 5, decoder: Some(DecoderKind::Lookup), ..sample() };
        let err = d5.validate().unwrap_err();
        assert!(err.contains("lookup") && err.contains("distance 3"), "{err}");
        let hgp = Scenario {
            code: CodeFamily::Hgp,
            distance: 2,
            decoder: Some(DecoderKind::Lookup),
            ..sample()
        };
        assert!(hgp.validate().is_err());
        // explicit uf: needs a matchable (surface) code.
        let color_uf =
            Scenario { code: CodeFamily::Color, decoder: Some(DecoderKind::UnionFind), ..sample() };
        let err = color_uf.validate().unwrap_err();
        assert!(err.contains("matchable"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_cells() {
        assert!(sample().validate().is_ok());
        assert!(Scenario { distance: 4, ..sample() }.validate().is_err());
        assert!(Scenario { p: 0.0, ..sample() }.validate().is_err());
        assert!(Scenario { p: f64::NAN, ..sample() }.validate().is_err());
        assert!(Scenario { shots: 0, ..sample() }.validate().is_err());
        assert!(Scenario { rounds: 0, ..sample() }.validate().is_err());
        assert!(Scenario { leakage_ratio: -1.0, ..sample() }.validate().is_err());
    }
}
