//! Scenario-sweep orchestration: declarative grids over the batch engine.
//!
//! A [`SweepSpec`] describes a parameter grid (code family × distances ×
//! error rates × leakage ratios × policies); [`SweepSpec::expand`] lowers it
//! to a deduplicated, stably-ordered list of [`Scenario`]s and
//! [`run_sweep`] executes them, sharing every reusable artifact across grid
//! cells:
//!
//! * one concrete [`Code`](qec_codes::Code) instance per `(family, distance)`,
//! * one [`PolicyFactory`] per `(family, distance)`, re-calibrated (not
//!   rebuilt) when the error-rate axis moves — the pattern extractor, site
//!   classes and colouring survive every calibration change,
//! * one decoder backend per `(family, distance, rounds, decoder kind)`,
//! * one [`BatchEngine`] per cell, wired onto the shared artifacts via
//!   [`BatchEngine::with_shared`].
//!
//! Results are returned as a schema-versioned [`SweepReport`] whose JSON
//! rendering is byte-identical across worker-thread counts (the engine's
//! `seed + shot` contract); wall-times are the one non-deterministic field
//! and can be disabled for comparison jobs (`timing = false`).
//!
//! [`snapshot`] runs a pinned quick-scale sweep repeatedly and emits
//! [`crate::report::BenchLine`] rows — the machine-readable perf
//! snapshot the CI regression gate diffs against the committed baseline.

use std::collections::BTreeMap;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

use serde::{de, ser, Deserialize, Serialize, Value};

use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_decoder::{DecoderBackend, DecoderKind};

use crate::engine::{build_backend, BatchEngine};
use crate::metrics::AggregateMetrics;
use crate::replay::ReplayMode;
use crate::report::BenchLine;
use crate::runners::Scale;
use crate::scenario::{decoder_from_value, CodeFamily, Scenario};

/// Version of the sweep-report JSON schema; bump when the shape changes.
/// (v2: added the `recorded_policy` provenance field for corpus-backed sweeps.
/// v3: added the `replay_mode` provenance field and per-cell closed-loop
/// divergence profiles. v4: specs gained the optional `adaptive` block —
/// confidence-targeted shot allocation via [`crate::adaptive`]; per-cell
/// `scenario.shots` now reports the shots actually allocated.)
pub const SWEEP_SCHEMA_VERSION: u32 = 4;

/// How often [`snapshot`] re-runs every cell to get min/mean/max timings.
/// The regression gate compares minima, so more samples mean a tighter,
/// noise-robust lower envelope.
pub const SNAPSHOT_SAMPLES: usize = 10;

/// A declarative parameter grid over the batch engine.
///
/// The grid expands to the cartesian product
/// `distances × error_rates × leakage_ratios × policies` (in that nesting
/// order, innermost last). Every axis is deduplicated during expansion; the
/// numeric axes are additionally sorted, so permuting them leaves the
/// expansion unchanged. Policies keep their listed order (paper figures order
/// them deliberately).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Code family every cell runs on.
    pub code: CodeFamily,
    /// Family size parameters (code distances) to sweep.
    pub distances: Vec<usize>,
    /// Physical error rates `p` to sweep.
    pub error_rates: Vec<f64>,
    /// Leakage ratios `lr` to sweep.
    pub leakage_ratios: Vec<f64>,
    /// Policies to evaluate in every grid cell.
    pub policies: Vec<PolicyKind>,
    /// Monte-Carlo shots per cell.
    pub shots: usize,
    /// Rounds per shot, as a multiple of the distance (`rounds = max(2, k·d)`).
    pub rounds_per_distance: usize,
    /// Base RNG seed (shared by every cell; shot `i` uses `seed + i`).
    pub seed: u64,
    /// Whether to decode every shot and report per-cell logical error rates.
    pub decode: bool,
    /// Optional decoder-backend axis: each grid cell is evaluated once per
    /// listed backend (one extra innermost axis, just outside policies), so a
    /// single corpus yields cross-decoder LER rows in one report. `None` is
    /// the legacy single-backend sweep on union-find; the field is omitted
    /// from serialized specs when `None` (additive — the sweep schema version
    /// does not bump, like the serve protocol's additive-field rule).
    pub decoders: Option<Vec<DecoderKind>>,
    /// Optional adaptive shot allocation: when present, `shots` becomes a
    /// per-cell **ceiling** and each cell sequentially allocates deterministic
    /// shot batches until its Wilson confidence interval reaches the block's
    /// target relative half-width (see [`crate::adaptive`]). Omitted from
    /// serialized specs when `None`, so legacy fixed-shot specs and reports
    /// keep their exact bytes (additive, like `decoders`).
    pub adaptive: Option<crate::adaptive::AdaptiveSpec>,
}

// Hand-written so the optional `decoders` axis is omitted (not `null`) when
// absent: legacy sweep reports must keep their exact pre-backend bytes.
impl Serialize for SweepSpec {
    fn to_value(&self) -> Value {
        let mut composer = ser::StructComposer::new();
        composer.field("code", &self.code);
        composer.field("distances", &self.distances);
        composer.field("error_rates", &self.error_rates);
        composer.field("leakage_ratios", &self.leakage_ratios);
        composer.field("policies", &self.policies);
        composer.field("shots", &self.shots);
        composer.field("rounds_per_distance", &self.rounds_per_distance);
        composer.field("seed", &self.seed);
        composer.field("decode", &self.decode);
        if let Some(decoders) = &self.decoders {
            let labels: Vec<String> =
                decoders.iter().map(|kind| kind.label().to_string()).collect();
            composer.field("decoders", &labels);
        }
        if let Some(adaptive) = &self.adaptive {
            composer.field("adaptive", adaptive);
        }
        composer.end()
    }
}

impl Deserialize for SweepSpec {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let fields = de::as_object(value, "SweepSpec")?;
        let decoders = match de::field::<Option<Vec<Value>>>(fields, "SweepSpec", "decoders")? {
            None => None,
            Some(values) => {
                Some(values.iter().map(decoder_from_value).collect::<Result<Vec<_>, _>>()?)
            }
        };
        Ok(SweepSpec {
            code: de::field(fields, "SweepSpec", "code")?,
            distances: de::field(fields, "SweepSpec", "distances")?,
            error_rates: de::field(fields, "SweepSpec", "error_rates")?,
            leakage_ratios: de::field(fields, "SweepSpec", "leakage_ratios")?,
            policies: de::field(fields, "SweepSpec", "policies")?,
            shots: de::field(fields, "SweepSpec", "shots")?,
            rounds_per_distance: de::field(fields, "SweepSpec", "rounds_per_distance")?,
            seed: de::field(fields, "SweepSpec", "seed")?,
            decode: de::field(fields, "SweepSpec", "decode")?,
            decoders,
            adaptive: de::field(fields, "SweepSpec", "adaptive")?,
        })
    }
}

impl SweepSpec {
    /// The default 12-cell grid: 3 surface-code distances × 2 error rates ×
    /// ERASER+M vs GLADIATOR+M, sized by `scale` (shots, seed, round budget).
    #[must_use]
    pub fn for_scale(scale: &Scale) -> Self {
        SweepSpec {
            code: CodeFamily::Surface,
            distances: vec![3, 5, 7],
            error_rates: vec![1e-3, 2e-3],
            leakage_ratios: vec![0.1],
            policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM],
            shots: scale.shots,
            rounds_per_distance: ((10.0 * scale.rounds_factor).round() as usize).max(1),
            seed: scale.seed,
            decode: true,
            decoders: None,
            adaptive: None,
        }
    }

    /// Number of grid cells the spec expands to (after axis deduplication).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        let backends = self.decoder_axis().map_or(0, |axis| axis.len());
        self.clone()
            .normalized_axes()
            .map_or(0, |(d, p, lr, pol)| d.len() * p.len() * lr.len() * pol.len() * backends)
    }

    /// The expansion's decoder axis: the deduplicated listed backends, or the
    /// single legacy `None` (union-find) slot when no axis was requested.
    fn decoder_axis(&self) -> Result<Vec<Option<DecoderKind>>, String> {
        match &self.decoders {
            None => Ok(vec![None]),
            Some(kinds) => {
                let mut axis: Vec<Option<DecoderKind>> = Vec::new();
                for &kind in kinds {
                    if !axis.contains(&Some(kind)) {
                        axis.push(Some(kind));
                    }
                }
                if axis.is_empty() {
                    return Err("sweep axis `decoders` is empty".to_string());
                }
                Ok(axis)
            }
        }
    }

    /// Sorted, deduplicated axes; errors on empty or non-finite axes.
    #[allow(clippy::type_complexity)]
    fn normalized_axes(self) -> Result<(Vec<usize>, Vec<f64>, Vec<f64>, Vec<PolicyKind>), String> {
        let mut distances = self.distances;
        distances.sort_unstable();
        distances.dedup();
        let sorted_rates = |mut rates: Vec<f64>, axis: &str| -> Result<Vec<f64>, String> {
            if rates.iter().any(|r| !r.is_finite()) {
                return Err(format!("{axis} axis contains a non-finite value"));
            }
            rates.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
            rates.dedup();
            Ok(rates)
        };
        let error_rates = sorted_rates(self.error_rates, "error-rate")?;
        let leakage_ratios = sorted_rates(self.leakage_ratios, "leakage-ratio")?;
        // Policies keep their listed order (paper figures order them
        // deliberately); duplicates collapse onto the first occurrence.
        let mut policies: Vec<PolicyKind> = Vec::new();
        for kind in self.policies {
            if !policies.contains(&kind) {
                policies.push(kind);
            }
        }
        for (axis, empty) in [
            ("distances", distances.is_empty()),
            ("error_rates", error_rates.is_empty()),
            ("leakage_ratios", leakage_ratios.is_empty()),
            ("policies", policies.is_empty()),
        ] {
            if empty {
                return Err(format!("sweep axis `{axis}` is empty"));
            }
        }
        Ok((distances, error_rates, leakage_ratios, policies))
    }

    /// Expands the grid to its scenario list: the cartesian product of the
    /// normalized axes, ordered distance-major / policy-minor. The ordering is
    /// stable under permutation and duplication of the input axes, and every
    /// scenario is validated before any is returned.
    ///
    /// # Errors
    /// Returns a message when an axis is empty, a value is non-finite, or any
    /// expanded scenario fails [`Scenario::validate`].
    pub fn expand(&self) -> Result<Vec<Scenario>, String> {
        let spec = self.clone();
        if let Some(adaptive) = &self.adaptive {
            adaptive.validate()?;
        }
        let decoder_axis = self.decoder_axis()?;
        let (distances, error_rates, leakage_ratios, policies) = spec.normalized_axes()?;
        let mut scenarios = Vec::new();
        for &distance in &distances {
            let rounds = (self.rounds_per_distance * distance).max(2);
            for &p in &error_rates {
                for &leakage_ratio in &leakage_ratios {
                    // The decoder axis sits just outside policies, so a
                    // corpus-backed sweep still sees each policy-free cell as
                    // one consecutive scenario group (decoders, like
                    // policies, are excluded from the cell key).
                    for &decoder in &decoder_axis {
                        for &policy in &policies {
                            let scenario = Scenario {
                                code: self.code,
                                distance,
                                rounds,
                                p,
                                leakage_ratio,
                                policy,
                                shots: self.shots,
                                seed: self.seed,
                                decode: self.decode,
                                decoder,
                            };
                            scenario
                                .validate()
                                .map_err(|e| format!("cell {}: {e}", scenario.id()))?;
                            scenarios.push(scenario);
                        }
                    }
                }
            }
        }
        Ok(scenarios)
    }
}

/// One executed grid cell: the scenario, the concrete code it ran on, the
/// aggregated metrics, and the cell's wall-clock time (0 when timing is off).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepCell {
    /// The cell's coordinates.
    pub scenario: Scenario,
    /// Name of the concrete code instance (e.g. `surface-d5`).
    pub code: String,
    /// Aggregated per-shot metrics (LER, LRC counts, FP/FN accuracy, DLP).
    pub metrics: AggregateMetrics,
    /// Per-round divergence statistics of closed-loop corpus-backed cells:
    /// where the policy's shots first left the recorded schedule and how much
    /// re-simulation the divergence repairs cost. `None` for fully simulated
    /// and open-loop cells.
    pub divergence_profile: Option<qec_trace::DivergenceProfile>,
    /// Wall-clock time of the cell in milliseconds; exactly `0.0` when the
    /// sweep ran with timing disabled (determinism-comparison mode).
    pub wall_time_ms: f64,
}

/// A self-describing sweep result: schema version, provenance, the expanded
/// spec and one row per grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// [`SWEEP_SCHEMA_VERSION`] at the time the report was written.
    pub schema_version: u32,
    /// Tool and version that produced the report.
    pub generator: String,
    /// `git describe --always --dirty` of the producing checkout, or `unknown`.
    pub git_describe: String,
    /// Whether wall-times were recorded (false ⇒ every `wall_time_ms` is 0).
    pub timing: bool,
    /// For corpus-backed sweeps ([`run_sweep_with_corpus`]): the label of the
    /// policy that recorded each cell's trace. Cells for that policy are
    /// bit-for-bit live metrics; what other policies' cells mean depends on
    /// `replay_mode`. `None` for fully simulated sweeps.
    pub recorded_policy: Option<String>,
    /// For corpus-backed sweeps: `open-loop` (cross-policy cells are
    /// trace-driven speculation scores whose DLP/LER describe the recorded
    /// execution) or `closed-loop` (every cell is a bit-for-bit exact
    /// counterfactual of its policy, divergence-repaired per shot). `None` for
    /// fully simulated sweeps.
    pub replay_mode: Option<String>,
    /// The sweep specification the report answers.
    pub spec: SweepSpec,
    /// One row per grid cell, in [`SweepSpec::expand`] order.
    pub cells: Vec<SweepCell>,
}

/// Expands and executes a sweep, producing the schema-versioned report.
///
/// With `timing = false` the report is a pure function of the spec: byte-for-
/// byte identical across runs, worker-thread counts and machines (modulo the
/// `git_describe` provenance of the checkout).
///
/// # Errors
/// Returns a message when the spec fails to expand (see [`SweepSpec::expand`]).
pub fn run_sweep(spec: &SweepSpec, timing: bool) -> Result<SweepReport, String> {
    let scenarios = spec.expand()?;
    let cells = run_scenarios(&scenarios, timing);
    Ok(SweepReport {
        schema_version: SWEEP_SCHEMA_VERSION,
        generator: format!("repro sweep {}", env!("CARGO_PKG_VERSION")),
        git_describe: git_describe(),
        timing,
        recorded_policy: None,
        replay_mode: None,
        spec: spec.clone(),
        cells,
    })
}

/// Expands and executes a sweep against a trace corpus: every *policy-free*
/// cell `(family, d, rounds, p, lr, shots, seed)` is **simulated once** — a
/// corpus hit reuses the recorded trace, a miss records it under
/// `record_policy` (default: the grid's first policy) — and every policy of
/// the grid is then *replayed* against that recording.
///
/// The cell whose policy recorded the trace carries bit-for-bit the metrics a
/// fully simulated sweep would report (including the LER when decoding). What
/// the other policies' cells mean depends on `mode`:
///
/// * [`ReplayMode::OpenLoop`] — trace-driven speculation scores: FP/FN and
///   LRC counts answer "what would this policy have speculated on this
///   execution", while DLP (and any LER) describe the recorded execution
///   itself. This is the evaluation methodology of ERASER (arXiv:2309.13143);
///   it turns an `O(policies × shots)` simulation bill into `O(shots)` +
///   cheap replay.
/// * [`ReplayMode::ClosedLoop`] — exact counterfactuals: each shot replays
///   until its first schedule divergence and re-simulates from there under
///   the recorded seed contract, so **every** cell (DLP and LER included) is
///   bit-for-bit what a fully simulated sweep of that policy would report,
///   at replay cost for non-divergent shots. Cells carry per-round
///   [`qec_trace::DivergenceProfile`]s.
///
/// Each recorded cell's whole policy group is evaluated as one candidate set
/// ([`crate::replay::evaluate_cell_set`]); with `shared_checkpoints` (and
/// closed-loop mode) divergent shots re-execute their forced prefix **once
/// per shot** and serve every candidate from shared simulator checkpoints
/// instead of once per `(shot, policy)`. Reports are byte-identical with
/// sharing on or off; with `timing`, cells in a policy group report an equal
/// share of the group's wall time (the shared path evaluates the group
/// jointly, so per-policy time is not separable).
///
/// With `timing = false` the report is byte-identical across worker-thread
/// counts, exactly like [`run_sweep`].
///
/// # Errors
/// Returns a message when the spec fails to expand or the corpus cannot be
/// read or written.
pub fn run_sweep_with_corpus(
    spec: &SweepSpec,
    corpus_dir: &std::path::Path,
    record_policy: Option<PolicyKind>,
    timing: bool,
    mode: ReplayMode,
    shared_checkpoints: bool,
) -> Result<SweepReport, String> {
    use crate::replay::{
        calibration_for, cell_key, evaluate_cell_set, load_entry, record_into_corpus,
    };

    let closed_loop = mode == ReplayMode::ClosedLoop;
    let scenarios = spec.expand()?;
    let mut corpus = qec_trace::Corpus::open(corpus_dir).map_err(|e| e.to_string())?;
    let recording_kind = record_policy
        .or_else(|| scenarios.first().map(|s| s.policy))
        .expect("expansion yields at least one scenario");
    let generator = format!("repro sweep {}", env!("CARGO_PKG_VERSION"));
    let mut cells = Vec::with_capacity(scenarios.len());
    let mut manifest_dirty = false;
    // Shared per-(family, distance) artifacts, exactly like [`run_scenarios`]:
    // the factory is *recalibrated* (code-derived structures survive) when the
    // error-rate axis moves, and decoders are reused per round count.
    let mut shared: Option<(CodeFamily, usize, Arc<PolicyFactory>)> = None;
    let mut decoders: BTreeMap<(usize, Option<DecoderKind>), Arc<dyn DecoderBackend>> =
        BTreeMap::new();
    let mut start = 0usize;
    while start < scenarios.len() {
        // Policies are the innermost expansion axis, so one recorded cell
        // serves a consecutive scenario group.
        let key = cell_key(&scenarios[start]);
        let end = start + scenarios[start..].iter().take_while(|s| cell_key(s) == key).count();
        let entry = match corpus.lookup(&key) {
            Some(entry) => entry.clone(),
            None => {
                let entry =
                    record_into_corpus(&mut corpus, &scenarios[start], recording_kind, &generator)
                        .map_err(|e| format!("cell {key}: {e}"))?;
                manifest_dirty = true;
                entry
            }
        };
        let cell = load_entry(&corpus, &entry)?;
        if cell.header.rounds != scenarios[start].rounds
            || cell.header.shots != scenarios[start].shots
        {
            return Err(format!(
                "cell {key}: corpus trace was recorded with rounds={}, shots={} — delete the \
                 stale entry or use a fresh corpus directory",
                cell.header.rounds, cell.header.shots
            ));
        }
        // A cache hit recorded under a different policy would silently turn the
        // report's "recorded policy" cells into open-loop replays (and drop
        // their LER). Insist the corpus matches the sweep's recording policy.
        if cell.header.policy != recording_kind.label() {
            return Err(format!(
                "cell {key}: corpus trace was recorded with policy `{}`, but this sweep records \
                 with `{}` — pass --record-policy {} or use a fresh corpus directory",
                cell.header.policy,
                recording_kind.label(),
                cell.header.policy
            ));
        }
        let calibration = calibration_for(&cell.header);
        let group_key = (scenarios[start].code, scenarios[start].distance);
        let factory = match shared.take() {
            Some((family, distance, factory)) if (family, distance) == group_key => {
                if factory.config() == &calibration {
                    factory
                } else {
                    Arc::new(factory.recalibrated(&calibration))
                }
            }
            _ => {
                decoders.clear(); // decoders are (family, distance)-specific too
                Arc::new(PolicyFactory::new(&cell.code, &calibration))
            }
        };
        shared = Some((group_key.0, group_key.1, Arc::clone(&factory)));
        let group = &scenarios[start..end];
        let group_start = Instant::now();
        let mut shot_decoders: Vec<Option<Arc<dyn DecoderBackend>>> =
            Vec::with_capacity(group.len());
        for scenario in group {
            let exact = scenario.policy.label() == cell.header.policy;
            // Open-loop decoding is only meaningful for the recording
            // policy; closed-loop cells are exact counterfactuals, so
            // every policy decodes when the scenario asks for it.
            let want_decode = scenario.decode && (closed_loop || exact);
            let decoder = if want_decode {
                let slot = (scenario.rounds, scenario.decoder);
                let backend = match decoders.get(&slot) {
                    Some(backend) => Arc::clone(backend),
                    None => {
                        let built = build_backend(scenario.decoder, &cell.code, scenario.rounds)
                            .map_err(|e| format!("cell {key}: {e}"))?;
                        decoders.insert(slot, Arc::clone(&built));
                        built
                    }
                };
                Some(backend)
            } else {
                None
            };
            shot_decoders.push(decoder);
        }
        let decoder_refs: Vec<Option<&dyn DecoderBackend>> =
            shot_decoders.iter().map(std::option::Option::as_deref).collect();
        let kinds: Vec<PolicyKind> = group.iter().map(|s| s.policy).collect();
        let (replays, _stats) =
            evaluate_cell_set(&cell, &factory, &kinds, &decoder_refs, mode, shared_checkpoints)
                .map_err(|e| format!("cell {key}: {e}"))?;
        let wall_time_ms = if timing {
            group_start.elapsed().as_secs_f64() * 1e3 / group.len() as f64
        } else {
            0.0
        };
        for (scenario, replay) in group.iter().zip(replays) {
            cells.push(SweepCell {
                scenario: *scenario,
                code: cell.code.name().to_string(),
                metrics: replay.metrics,
                divergence_profile: replay.profile,
                wall_time_ms,
            });
        }
        start = end;
    }
    if manifest_dirty {
        corpus.save().map_err(|e| e.to_string())?;
    }
    Ok(SweepReport {
        schema_version: SWEEP_SCHEMA_VERSION,
        generator,
        git_describe: git_describe(),
        timing,
        recorded_policy: Some(recording_kind.label().to_string()),
        replay_mode: Some(mode.label().to_string()),
        spec: spec.clone(),
        cells,
    })
}

/// Executes a list of scenarios in order, sharing the code instance, the
/// policy factory (re-calibrated across error-rate changes) and the decoder
/// across consecutive scenarios with the same `(family, distance)`.
///
/// Scenario lists produced by [`SweepSpec::expand`] maximize that sharing; an
/// arbitrary list still runs correctly, paying one artifact build per
/// `(family, distance)` run.
#[must_use]
pub fn run_scenarios(scenarios: &[Scenario], timing: bool) -> Vec<SweepCell> {
    let mut cells = Vec::with_capacity(scenarios.len());
    let mut start = 0usize;
    while start < scenarios.len() {
        let group_key = (scenarios[start].code, scenarios[start].distance);
        let end = start
            + scenarios[start..].iter().take_while(|s| (s.code, s.distance) == group_key).count();
        let code = scenarios[start].build_code();
        let mut factory: Option<Arc<PolicyFactory>> = None;
        let mut decoders = BTreeMap::new();
        for scenario in &scenarios[start..end] {
            let spec = scenario.to_spec();
            let shared_factory = match factory.take() {
                Some(f) if f.config() == &spec.gladiator => f,
                Some(f) => Arc::new(f.recalibrated(&spec.gladiator)),
                None => Arc::new(PolicyFactory::new(&code, &spec.gladiator)),
            };
            factory = Some(Arc::clone(&shared_factory));
            let decoder = spec.decode.then(|| {
                Arc::clone(decoders.entry((spec.rounds, scenario.decoder)).or_insert_with(|| {
                    build_backend(scenario.decoder, &code, spec.rounds)
                        .expect("expansion validates decoder/code compatibility")
                }))
            });
            let engine = BatchEngine::with_shared(&spec, shared_factory, decoder);
            let cell_start = Instant::now();
            let result = engine.run();
            let wall_time_ms = if timing { cell_start.elapsed().as_secs_f64() * 1e3 } else { 0.0 };
            cells.push(SweepCell {
                scenario: *scenario,
                code: result.code,
                metrics: result.metrics,
                divergence_profile: None,
                wall_time_ms,
            });
        }
        start = end;
    }
    cells
}

/// The pinned spec behind `repro snapshot`: small enough for CI, large enough
/// that per-cell throughput is meaningful. Changing it invalidates the
/// committed baseline (`crates/bench/BENCH_sweep_baseline.json`).
#[must_use]
pub fn snapshot_spec() -> SweepSpec {
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3, 5],
        error_rates: vec![1e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM],
        shots: 16,
        rounds_per_distance: 10,
        seed: 11,
        decode: true,
        decoders: None,
        adaptive: None,
    }
}

/// Runs the pinned snapshot sweep [`SNAPSHOT_SAMPLES`] times per cell and
/// reports per-shot wall-time as [`BenchLine`]s (the `BENCH_baseline.json`
/// shape), one line per grid cell, named `sweep/<scenario id>`.
#[must_use]
pub fn snapshot() -> Vec<BenchLine> {
    let scenarios = snapshot_spec().expand().expect("the pinned snapshot spec is valid");
    scenarios
        .iter()
        .map(|scenario| {
            let code = scenario.build_code();
            let spec = scenario.to_spec();
            // Build once outside the timed region: the snapshot measures
            // steady-state sweep throughput, not artifact construction. One
            // untimed warmup shot-batch settles caches and the allocator.
            let engine = BatchEngine::new(&code, &spec);
            let _ = engine.run();
            let samples: Vec<u64> = (0..SNAPSHOT_SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    let _ = engine.run();
                    (start.elapsed().as_nanos() as u64) / spec.shots as u64
                })
                .collect();
            BenchLine {
                benchmark: format!("sweep/{}", scenario.id()),
                samples: SNAPSHOT_SAMPLES,
                mean_ns: samples.iter().sum::<u64>() / SNAPSHOT_SAMPLES as u64,
                min_ns: samples.iter().copied().min().unwrap_or(0),
                max_ns: samples.iter().copied().max().unwrap_or(0),
            }
        })
        .collect()
}

/// `git describe --always --dirty` of the current checkout, or `"unknown"`
/// when git (or the repository) is unavailable.
#[must_use]
pub fn git_describe() -> String {
    Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            code: CodeFamily::Surface,
            distances: vec![3],
            error_rates: vec![1e-3],
            leakage_ratios: vec![0.1],
            policies: vec![PolicyKind::EraserM],
            shots: 2,
            rounds_per_distance: 1,
            seed: 5,
            decode: false,
            decoders: None,
            adaptive: None,
        }
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_stable_order() {
        let spec = SweepSpec {
            distances: vec![5, 3],
            error_rates: vec![2e-3, 1e-3],
            policies: vec![PolicyKind::GladiatorM, PolicyKind::EraserM],
            ..tiny_spec()
        };
        let scenarios = spec.expand().unwrap();
        assert_eq!(scenarios.len(), 8);
        assert_eq!(spec.cell_count(), 8);
        // Distance-major, then error rate, then policy in listed order.
        assert_eq!(scenarios[0].distance, 3);
        assert_eq!(scenarios[0].p, 1e-3);
        assert_eq!(scenarios[0].policy, PolicyKind::GladiatorM);
        assert_eq!(scenarios[1].policy, PolicyKind::EraserM);
        assert_eq!(scenarios[2].p, 2e-3);
        assert_eq!(scenarios[4].distance, 5);
        // Sorted axes: permuting the input does not change the expansion.
        let permuted =
            SweepSpec { distances: vec![3, 5], error_rates: vec![1e-3, 2e-3], ..spec.clone() };
        assert_eq!(permuted.expand().unwrap(), scenarios);
    }

    #[test]
    fn expansion_deduplicates_every_axis() {
        let spec = SweepSpec {
            distances: vec![3, 3, 5, 3],
            error_rates: vec![1e-3, 1e-3],
            leakage_ratios: vec![0.1, 0.1],
            policies: vec![PolicyKind::EraserM, PolicyKind::EraserM, PolicyKind::Ideal],
            ..tiny_spec()
        };
        let scenarios = spec.expand().unwrap();
        assert_eq!(scenarios.len(), 2 * 2);
        assert_eq!(spec.cell_count(), 4);
    }

    #[test]
    fn expansion_rejects_bad_grids() {
        assert!(SweepSpec { distances: vec![], ..tiny_spec() }.expand().is_err());
        assert!(SweepSpec { policies: vec![], ..tiny_spec() }.expand().is_err());
        assert!(SweepSpec { error_rates: vec![f64::NAN], ..tiny_spec() }.expand().is_err());
        assert!(SweepSpec { distances: vec![4], ..tiny_spec() }.expand().is_err());
        assert!(SweepSpec { shots: 0, ..tiny_spec() }.expand().is_err());
        assert_eq!(SweepSpec { distances: vec![], ..tiny_spec() }.cell_count(), 0);
    }

    #[test]
    fn decoder_axis_expands_outside_policies_and_validates_cells() {
        let spec = SweepSpec {
            policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM],
            decoders: Some(vec![DecoderKind::UnionFind, DecoderKind::Lookup]),
            decode: true,
            ..tiny_spec()
        };
        let scenarios = spec.expand().unwrap();
        assert_eq!(scenarios.len(), 4);
        assert_eq!(spec.cell_count(), 4);
        // Decoder-major over the policy list, so corpus grouping stays intact.
        assert_eq!(scenarios[0].decoder, Some(DecoderKind::UnionFind));
        assert_eq!(scenarios[1].decoder, Some(DecoderKind::UnionFind));
        assert_eq!(scenarios[2].decoder, Some(DecoderKind::Lookup));
        assert_eq!(scenarios[0].policy, PolicyKind::EraserM);
        assert_eq!(scenarios[1].policy, PolicyKind::GladiatorM);
        // Duplicates collapse; an explicitly empty axis is an error.
        let duplicated = SweepSpec {
            decoders: Some(vec![DecoderKind::Lookup, DecoderKind::Lookup]),
            ..tiny_spec()
        };
        assert_eq!(duplicated.expand().unwrap().len(), 1);
        assert!(SweepSpec { decoders: Some(vec![]), ..tiny_spec() }.expand().is_err());
        // The lookup table only exists at d=3: expansion is where the
        // decoder/family mismatch must surface, as a typed error.
        let d5 = SweepSpec {
            distances: vec![5],
            decoders: Some(vec![DecoderKind::Lookup]),
            ..tiny_spec()
        };
        let err = d5.expand().unwrap_err();
        assert!(err.contains("lookup") && err.contains("distance 3"), "{err}");
    }

    #[test]
    fn spec_serde_omits_the_absent_decoder_axis() {
        let legacy = tiny_spec();
        let json = serde_json::to_string(&legacy).unwrap();
        assert!(!json.contains("decoders"), "{json}");
        assert_eq!(serde_json::from_str::<SweepSpec>(&json).unwrap(), legacy);
        let multi = SweepSpec {
            decoders: Some(vec![DecoderKind::UnionFind, DecoderKind::Lookup]),
            ..tiny_spec()
        };
        let json = serde_json::to_string(&multi).unwrap();
        assert!(json.ends_with(r#""decoders":["uf","lookup"]}"#), "{json}");
        assert_eq!(serde_json::from_str::<SweepSpec>(&json).unwrap(), multi);
        let err = serde_json::from_str::<SweepSpec>(&json.replace("lookup", "bp")).unwrap_err();
        assert!(err.to_string().contains("uf, lookup"), "{err}");
    }

    #[test]
    fn live_sweep_runs_the_decoder_axis() {
        let spec = SweepSpec {
            decode: true,
            decoders: Some(vec![DecoderKind::UnionFind, DecoderKind::Lookup]),
            ..tiny_spec()
        };
        let report = run_sweep(&spec, false).unwrap();
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(cell.metrics.logical_error_rate.is_some(), "{:?}", cell.scenario);
        }
        // Identical runs, decoded by an exact table vs union-find: the exact
        // table can only do better or equal on the same shots.
        let uf = report.cells[0].metrics.logical_error_rate.unwrap();
        let lookup = report.cells[1].metrics.logical_error_rate.unwrap();
        assert!(lookup <= uf, "lookup LER {lookup} > union-find LER {uf}");
    }

    #[test]
    fn rounds_scale_with_distance_and_never_vanish() {
        let spec = SweepSpec { distances: vec![3, 7], rounds_per_distance: 2, ..tiny_spec() };
        let scenarios = spec.expand().unwrap();
        assert_eq!(scenarios[0].rounds, 6);
        assert_eq!(scenarios[1].rounds, 14);
        let minimal = SweepSpec { rounds_per_distance: 0, ..tiny_spec() };
        assert!(minimal.expand().unwrap().iter().all(|s| s.rounds == 2));
    }

    #[test]
    fn default_grid_for_scale_has_twelve_cells() {
        let spec = SweepSpec::for_scale(&Scale::smoke());
        assert_eq!(spec.cell_count(), 12);
        assert_eq!(spec.shots, Scale::smoke().shots);
    }

    #[test]
    fn run_sweep_produces_one_cell_per_scenario_with_metrics() {
        let spec = SweepSpec {
            policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM],
            decode: true,
            ..tiny_spec()
        };
        let report = run_sweep(&spec, false).unwrap();
        assert_eq!(report.schema_version, SWEEP_SCHEMA_VERSION);
        assert!(!report.timing);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.code, "surface-d3");
            assert_eq!(cell.metrics.shots, 2);
            assert!(cell.metrics.logical_error_rate.is_some());
            assert_eq!(cell.wall_time_ms, 0.0);
        }
    }

    #[test]
    fn timing_mode_records_nonzero_wall_times() {
        let report = run_sweep(&tiny_spec(), true).unwrap();
        assert!(report.timing);
        assert!(report.cells.iter().all(|c| c.wall_time_ms > 0.0));
    }

    #[test]
    fn snapshot_covers_the_pinned_grid() {
        let expected = snapshot_spec().cell_count();
        let lines = snapshot();
        assert_eq!(lines.len(), expected);
        for line in &lines {
            assert!(line.benchmark.starts_with("sweep/surface_d"));
            assert_eq!(line.samples, SNAPSHOT_SAMPLES);
            assert!(line.min_ns <= line.mean_ns && line.mean_ns <= line.max_ns);
            assert!(line.min_ns > 0);
        }
    }
}
