//! THE oracle suite for adaptive shot allocation: stop/resume at every round
//! boundary must reproduce the uninterrupted report byte-for-byte, an
//! adaptive run at its ceiling must equal the legacy fixed-shot report, the
//! bytes must not depend on the worker count, and a damaged checkpoint must
//! fail loudly — never silently restart a cell from zero. Plus property
//! tests for the estimator core (Wilson interval + stopping rule).

use std::path::PathBuf;

use leakage_speculation::PolicyKind;
use proptest::prelude::*;
use qec_experiments::adaptive::{
    read_checkpoint_state, resume_adaptive, run_adaptive, spec_fingerprint, stop_decision,
    wilson_interval, z_for_confidence, AdaptiveSpec, StopReason, ADAPTIVE_FILE, STATE_FILE,
};
use qec_experiments::report::to_json;
use qec_experiments::scenario::CodeFamily;
use qec_experiments::sweep::{run_sweep, SweepSpec};
use qec_trace::TraceError;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qad-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A two-cell spec tuned so one cell converges before the ceiling (high
/// leakage pressure, loose target) and the other rides to the ceiling — the
/// run exercises both stop reasons and several allocation rounds.
fn oracle_spec() -> SweepSpec {
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![5e-2, 5e-3],
        leakage_ratios: vec![0.5],
        policies: vec![PolicyKind::EraserM],
        shots: 96,
        rounds_per_distance: 4,
        seed: 17,
        decode: false,
        decoders: None,
        adaptive: Some(AdaptiveSpec {
            target_rel_halfwidth: 0.35,
            confidence: 0.9,
            initial_batch: 8,
        }),
    }
}

/// A one-cell spec with an unreachable target: every run ceilings, cheaply.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![1e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM],
        shots: 12,
        rounds_per_distance: 4,
        seed: 23,
        decode: false,
        decoders: None,
        adaptive: Some(AdaptiveSpec {
            target_rel_halfwidth: 1e-9,
            confidence: 0.95,
            initial_batch: 2,
        }),
    }
}

// ---------------------------------------------------------------------------------
// Resume oracles
// ---------------------------------------------------------------------------------

#[test]
fn resume_at_every_round_boundary_reproduces_the_uninterrupted_report() {
    let spec = oracle_spec();
    let base_dir = tmp_dir("oracle-base");
    let outcome = run_adaptive(&spec, &base_dir, None).unwrap().expect("runs to completion");
    // The oracle is only meaningful if the run spans several rounds and
    // exercises both stop reasons.
    assert!(outcome.rounds >= 3, "want >= 3 rounds, got {}", outcome.rounds);
    assert!(outcome.converged >= 1, "want a converged cell");
    assert!(outcome.ceilinged >= 1, "want a ceilinged cell");
    let baseline = to_json(&outcome.report);

    for pause_after in 0..outcome.rounds {
        let dir = tmp_dir(&format!("oracle-pause-{pause_after}"));
        let paused = run_adaptive(&spec, &dir, Some(pause_after)).unwrap();
        assert!(paused.is_none(), "round {pause_after} of {} must pause", outcome.rounds);
        let resumed = resume_adaptive(&dir, None).unwrap().expect("resume completes");
        assert_eq!(
            to_json(&resumed.report),
            baseline,
            "resume after round {pause_after} must reproduce the uninterrupted bytes"
        );
        assert_eq!(resumed.rounds, outcome.rounds);
        assert_eq!(resumed.shots_allocated, outcome.shots_allocated);
        assert_eq!(resumed.converged, outcome.converged);
        assert_eq!(resumed.ceilinged, outcome.ceilinged);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn chained_single_round_sessions_reproduce_the_uninterrupted_report() {
    let spec = oracle_spec();
    let base_dir = tmp_dir("chain-base");
    let outcome = run_adaptive(&spec, &base_dir, None).unwrap().expect("runs to completion");
    let baseline = to_json(&outcome.report);

    // One round per session: kill/restart at its most adversarial cadence.
    let dir = tmp_dir("chain-steps");
    let mut sessions = 1u64;
    let mut done = run_adaptive(&spec, &dir, Some(1)).unwrap();
    while done.is_none() {
        assert!(sessions <= outcome.rounds, "more sessions than rounds");
        done = resume_adaptive(&dir, Some(1)).unwrap();
        sessions += 1;
    }
    let resumed = done.expect("loop exits completed");
    assert_eq!(to_json(&resumed.report), baseline);
    // The session that executes the final round finalizes instead of
    // pausing, so there is exactly one session per allocation round.
    assert_eq!(sessions, outcome.rounds, "one session per round");

    // Resuming an already-completed run re-renders the same report.
    let again = resume_adaptive(&dir, None).unwrap().expect("re-render");
    assert_eq!(to_json(&again.report), baseline);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

#[test]
fn adaptive_run_at_the_ceiling_equals_the_legacy_fixed_shot_report() {
    // An unreachable interval target forces every cell to its ceiling; the
    // report must then be byte-identical to the fixed-shot sweep of the same
    // spec without the adaptive block.
    let mut spec = oracle_spec();
    spec.shots = 24;
    spec.adaptive =
        Some(AdaptiveSpec { target_rel_halfwidth: 1e-9, confidence: 0.95, initial_batch: 8 });
    let dir = tmp_dir("ceiling");
    let outcome = run_adaptive(&spec, &dir, None).unwrap().expect("runs to completion");
    assert_eq!(outcome.converged, 0);
    assert_eq!(outcome.ceilinged, 2);
    assert_eq!(outcome.shots_allocated, 48);

    let mut fixed = spec.clone();
    fixed.adaptive = None;
    let fixed_report = run_sweep(&fixed, false).unwrap();
    assert_eq!(to_json(&outcome.report), to_json(&fixed_report));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let spec = oracle_spec();
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let dir1 = tmp_dir("threads-1");
    let one = run_adaptive(&spec, &dir1, None).unwrap().expect("completes");
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let dir4 = tmp_dir("threads-4");
    let four = run_adaptive(&spec, &dir4, None).unwrap().expect("completes");
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(to_json(&one.report), to_json(&four.report));
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

#[test]
fn a_run_killed_before_the_first_boundary_restarts_from_zero_and_still_matches() {
    let spec = tiny_spec();
    let base_dir = tmp_dir("prefirst-base");
    let baseline =
        to_json(&run_adaptive(&spec, &base_dir, None).unwrap().expect("completes").report);

    // Pause after two rounds, then simulate a death *before the first round
    // boundary of a fresh run*: the descriptor exists but no state file does.
    // Nothing was reported yet, so restarting from round zero is sound — and
    // must still land on the same bytes.
    let dir = tmp_dir("prefirst");
    assert!(run_adaptive(&spec, &dir, Some(2)).unwrap().is_none());
    std::fs::remove_file(dir.join(STATE_FILE)).unwrap();
    let resumed = resume_adaptive(&dir, None).unwrap().expect("restarts from zero");
    assert_eq!(to_json(&resumed.report), baseline);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&base_dir);
}

// ---------------------------------------------------------------------------------
// Corruption: a torn checkpoint never silently restarts a cell from zero
// ---------------------------------------------------------------------------------

#[test]
fn every_single_byte_flip_of_the_state_file_is_detected() {
    let spec = tiny_spec();
    let dir = tmp_dir("flips");
    assert!(run_adaptive(&spec, &dir, Some(2)).unwrap().is_none());
    let good = std::fs::read(dir.join(STATE_FILE)).unwrap();
    let baseline = {
        let base_dir = tmp_dir("flips-base");
        let json =
            to_json(&run_adaptive(&spec, &base_dir, None).unwrap().expect("completes").report);
        let _ = std::fs::remove_dir_all(&base_dir);
        json
    };

    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0xFF;
        std::fs::write(dir.join(STATE_FILE), &bad).unwrap();
        let err = read_checkpoint_state(&dir)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {i} must be detected"));
        assert!(
            matches!(err, TraceError::Corrupt(_) | TraceError::Io(_)),
            "flip at byte {i}: want a typed corruption error, got {err:?}"
        );
        // And the resume path hard-errors too — it must never treat a torn
        // state file as "no progress yet" and restart cells from zero.
        let resumed = resume_adaptive(&dir, None);
        assert!(resumed.is_err(), "resume must refuse the flipped state (byte {i})");
    }

    // Restoring the intact bytes recovers the run and the oracle bytes.
    std::fs::write(dir.join(STATE_FILE), &good).unwrap();
    let recovered = resume_adaptive(&dir, None).unwrap().expect("completes");
    assert_eq!(to_json(&recovered.report), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_of_the_state_file_is_detected() {
    let spec = tiny_spec();
    let dir = tmp_dir("trunc");
    assert!(run_adaptive(&spec, &dir, Some(2)).unwrap().is_none());
    let good = std::fs::read(dir.join(STATE_FILE)).unwrap();

    for len in 0..good.len() {
        std::fs::write(dir.join(STATE_FILE), &good[..len]).unwrap();
        assert!(
            read_checkpoint_state(&dir).is_err(),
            "truncation to {len} of {} bytes must be detected",
            good.len()
        );
        assert!(
            resume_adaptive(&dir, None).is_err(),
            "resume must refuse the truncated state ({len} bytes)"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trailing_garbage_after_the_end_block_is_rejected() {
    let spec = tiny_spec();
    let dir = tmp_dir("trailing");
    assert!(run_adaptive(&spec, &dir, Some(1)).unwrap().is_none());
    let mut bytes = std::fs::read(dir.join(STATE_FILE)).unwrap();
    bytes.push(0);
    std::fs::write(dir.join(STATE_FILE), &bytes).unwrap();
    assert!(matches!(read_checkpoint_state(&dir), Err(TraceError::Corrupt(_))));
    assert!(resume_adaptive(&dir, None).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_state_file_from_a_different_run_is_rejected_by_fingerprint() {
    let spec_a = tiny_spec();
    let mut spec_b = tiny_spec();
    spec_b.seed = 99;
    assert_ne!(spec_fingerprint(&spec_a), spec_fingerprint(&spec_b));

    let dir_a = tmp_dir("fpr-a");
    let dir_b = tmp_dir("fpr-b");
    assert!(run_adaptive(&spec_a, &dir_a, Some(1)).unwrap().is_none());
    assert!(run_adaptive(&spec_b, &dir_b, Some(1)).unwrap().is_none());

    // Graft B's state under A's descriptor: the fingerprint cross-check
    // must refuse to mix tallies across runs.
    std::fs::copy(dir_b.join(STATE_FILE), dir_a.join(STATE_FILE)).unwrap();
    let err = resume_adaptive(&dir_a, None).expect_err("fingerprint mismatch");
    assert!(err.contains("fingerprint"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn a_second_fresh_run_in_a_checkpoint_directory_is_refused() {
    let spec = tiny_spec();
    let dir = tmp_dir("occupied");
    assert!(run_adaptive(&spec, &dir, Some(1)).unwrap().is_none());
    let err = run_adaptive(&spec, &dir, None).expect_err("directory is occupied");
    assert!(err.contains("--resume"), "unexpected error: {err}");
    // A directory with no descriptor at all is not resumable.
    let empty = tmp_dir("empty");
    std::fs::create_dir_all(&empty).unwrap();
    assert!(empty.join(ADAPTIVE_FILE).exists() || resume_adaptive(&empty, None).is_err());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&empty);
}

// ---------------------------------------------------------------------------------
// Estimator core properties
// ---------------------------------------------------------------------------------

/// splitmix64: the test's own deterministic uniform stream for simulating
/// Bernoulli draws (no RNG dependency in this crate's tests).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The Wilson half-width shrinks strictly as the tally scales up at a
    /// fixed observed rate: more shots always tighten the interval, which is
    /// what makes "allocate until tight enough" terminate.
    #[test]
    fn wilson_halfwidth_is_monotone_in_shots(
        failures in 0u64..500,
        successes in 0u64..500,
        doublings in 1u32..6,
        z_pick in 0usize..3,
    ) {
        let trials = failures + successes + 1;
        let z = [1.0, 1.96, 2.576][z_pick];
        let mut prev = wilson_interval(failures, trials, z).halfwidth;
        for k in 1..=doublings {
            let next = wilson_interval(failures << k, trials << k, z).halfwidth;
            prop_assert!(
                next < prev,
                "halfwidth must shrink: {prev} -> {next} at x{}", 1u64 << k
            );
            prev = next;
        }
    }

    /// The interval actually covers the true rate on simulated Bernoulli
    /// streams at (at least roughly) the configured confidence. The bound is
    /// deliberately loose — ~7 sigma below the nominal 95% — so the test is
    /// deterministic-in-practice while still catching a broken interval.
    #[test]
    fn wilson_interval_covers_the_true_rate_on_bernoulli_streams(
        p_milli in 10u64..500,
        seed in any::<u64>(),
    ) {
        let p = p_milli as f64 / 1000.0;
        let z = z_for_confidence(0.95);
        let streams = 64u64;
        let n = 256u64;
        let mut covered = 0u32;
        for stream in 0..streams {
            let mut state = seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
            let failures = (0..n).filter(|_| uniform01(&mut state) < p).count() as u64;
            let interval = wilson_interval(failures, n, z);
            if (interval.center - p).abs() <= interval.halfwidth {
                covered += 1;
            }
        }
        prop_assert!(covered >= 48, "coverage {covered}/{streams} at p={p}");
    }

    /// The stopping rule is a pure function of the tally: recomputing it
    /// yields the same decision, the decision for one cell is independent of
    /// every other cell (any permutation of the cell list), and equal
    /// tallies always produce equal decisions.
    #[test]
    fn stopping_rule_is_a_pure_order_independent_function_of_the_tally(
        seed in any::<u64>(),
        count in 1usize..16,
        ceiling in 1usize..2000,
        target_milli in 1u64..1000,
    ) {
        let adaptive = AdaptiveSpec {
            target_rel_halfwidth: target_milli as f64 / 1000.0,
            confidence: 0.95,
            initial_batch: 8,
        };
        let mut state = seed;
        let tallies: Vec<(u64, u64, usize)> = (0..count)
            .map(|_| {
                let a = splitmix64(&mut state) % 400;
                let b = 1 + splitmix64(&mut state) % 399;
                let shots = (splitmix64(&mut state) % 2000) as usize;
                (a.min(b), a.max(b), shots)
            })
            .collect();
        let forward: Vec<_> = tallies
            .iter()
            .map(|&(f, t, s)| stop_decision(f, t, s, ceiling, &adaptive))
            .collect();
        let reversed: Vec<_> = tallies
            .iter()
            .rev()
            .map(|&(f, t, s)| stop_decision(f, t, s, ceiling, &adaptive))
            .collect();
        for (i, (&fwd, &rev)) in forward.iter().zip(reversed.iter().rev()).enumerate() {
            prop_assert_eq!(fwd, rev, "cell {i}: decision depends on evaluation order");
            // Pure: same tally in, same decision out, every time.
            let (f, t, s) = tallies[i];
            prop_assert_eq!(fwd, stop_decision(f, t, s, ceiling, &adaptive));
        }
        // At or past the ceiling the decision is always Some.
        for &(f, t, _) in &tallies {
            prop_assert!(stop_decision(f, t, ceiling, ceiling, &adaptive).is_some());
        }
    }

    /// A zero-failure tally never "converges" — it can only stop at the
    /// ceiling, because a rate estimate of zero has no relative width.
    #[test]
    fn zero_failure_cells_only_stop_at_the_ceiling(
        trials in 0u64..100_000,
        shots in 0usize..2000,
        ceiling in 1usize..2000,
    ) {
        let adaptive = AdaptiveSpec::default();
        let decision = stop_decision(0, trials, shots, ceiling, &adaptive);
        if shots >= ceiling {
            prop_assert_eq!(decision, Some(StopReason::Ceiling));
        } else {
            prop_assert_eq!(decision, None);
        }
    }
}
