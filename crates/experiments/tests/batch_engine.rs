//! Determinism guarantees of the batch engine (the ISSUE-1 acceptance criteria):
//!
//! 1. For every [`PolicyKind`], `BatchEngine` output is bit-for-bit identical to
//!    the legacy rebuild-everything path (`simulate_shot`) under the `seed + i`
//!    contract.
//! 2. Two runs of the same [`ExperimentSpec`] produce equal
//!    [`PolicyExperimentResult`]s (including across engine instances).
//! 3. The offline GLADIATOR model is built exactly once per experiment and shared,
//!    never once per shot.

use std::sync::Arc;

use leakage_speculation::PolicyKind;
use qec_codes::Code;
use qec_experiments::engine::BatchEngine;
use qec_experiments::harness::{run_policy_experiment, simulate_shot, ExperimentSpec};

fn spec_for(kind: PolicyKind) -> ExperimentSpec {
    ExperimentSpec::quick(kind).with_shots(5).with_rounds(9).with_seed(4242)
}

#[test]
fn engine_matches_legacy_path_for_every_policy_kind() {
    let code = Code::rotated_surface(3);
    for kind in PolicyKind::ALL {
        let spec = spec_for(kind);
        let engine = BatchEngine::new(&code, &spec);
        let records = engine.run_records();
        assert_eq!(records.len(), spec.shots);
        for (shot, engine_record) in records.iter().enumerate() {
            let legacy = simulate_shot(&code, &spec, shot as u64);
            assert_eq!(
                engine_record, &legacy,
                "{kind:?}: engine and legacy path diverge at shot {shot}"
            );
        }
    }
}

#[test]
fn engine_matches_legacy_path_on_the_color_code() {
    let code = Code::color_666(3);
    for kind in [PolicyKind::EraserM, PolicyKind::GladiatorDM, PolicyKind::Staggered] {
        let spec = spec_for(kind).with_shots(3);
        let engine = BatchEngine::new(&code, &spec);
        for (shot, record) in engine.run_records().iter().enumerate() {
            assert_eq!(record, &simulate_shot(&code, &spec, shot as u64), "{kind:?} shot {shot}");
        }
    }
}

#[test]
fn repeated_runs_of_one_spec_are_equal() {
    let code = Code::rotated_surface(3);
    for kind in [PolicyKind::GladiatorM, PolicyKind::EraserM, PolicyKind::Ideal] {
        let spec = spec_for(kind).with_decode(true);
        // Same engine re-run, and a second engine built from the same spec: all equal.
        let engine = BatchEngine::new(&code, &spec);
        let first = engine.run();
        let second = engine.run();
        let third = BatchEngine::new(&code, &spec).run();
        let fourth = run_policy_experiment(&code, &spec);
        assert_eq!(first, second, "{kind:?}: re-running one engine must be stable");
        assert_eq!(first, third, "{kind:?}: a fresh engine must reproduce the result");
        assert_eq!(first, fourth, "{kind:?}: the harness wrapper must agree");
    }
}

#[test]
fn decoded_results_are_identical_between_engine_and_legacy_aggregation() {
    // The logical-error metric runs through the shared prebuilt decoder; pin the
    // whole aggregated result against a hand-rolled legacy aggregation.
    let code = Code::rotated_surface(3);
    let spec = spec_for(PolicyKind::AlwaysLrc).with_decode(true);
    let engine_result = BatchEngine::new(&code, &spec).run();
    assert_eq!(engine_result.shots, spec.shots);
    assert!(engine_result.metrics.logical_error_rate.is_some());
}

#[test]
fn offline_model_is_shared_not_rebuilt_per_shot() {
    let code = Code::rotated_surface(3);
    let spec = spec_for(PolicyKind::GladiatorM).with_shots(16);
    let engine = BatchEngine::new(&code, &spec);
    let model = Arc::clone(engine.policy_factory().model());
    let baseline = Arc::strong_count(&model);
    let _ = engine.run_records();
    // Worker policies all borrowed the same allocation and released it again; a
    // per-shot rebuild would have left the factory's OnceLock pointing elsewhere
    // (impossible) or shown transient foreign allocations — pointer identity and
    // strong-count restoration pin both.
    assert!(Arc::ptr_eq(&model, engine.policy_factory().model()));
    assert_eq!(Arc::strong_count(&model), baseline);
}

#[test]
fn seed_shifts_shift_the_whole_run() {
    let code = Code::rotated_surface(3);
    let a = BatchEngine::new(&code, &spec_for(PolicyKind::EraserM)).run_records();
    let b = BatchEngine::new(&code, &spec_for(PolicyKind::EraserM).with_seed(4243)).run_records();
    // seed+1 aligns shot i of run b with shot i+1 of run a (the `seed + i` contract).
    assert_eq!(a[1..], b[..a.len() - 1]);
}
