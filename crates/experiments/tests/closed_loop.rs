//! The exact-counterfactual contract of closed-loop replay.
//!
//! Open-loop replay scores a candidate policy against the *recorded*
//! execution; once the candidate's planned LRC schedule diverges, every later
//! round is counterfactual and the recorded observables no longer describe
//! what that policy would have caused. Closed-loop replay repairs the
//! divergence by re-simulating from the first divergent round under the
//! recorded `seed + shot` contract — so its metrics must be **bit-identical**
//! to a from-scratch live simulation of the candidate policy on the same cell
//! and seeds. Full re-simulation is therefore an exact oracle; these tests pin
//! every new code path against it, for all 11 policy kinds, across a
//! `(d, rounds, p, lr, seed)` grid, and under randomized cell parameters.

use std::sync::Arc;
use std::time::Instant;

use leakage_speculation::{PolicyFactory, PolicyKind};
use proptest::prelude::*;
use qec_decoder::DecoderBackend;
use qec_experiments::engine::build_decoder;
use qec_experiments::replay::{
    calibration_for, evaluate_cell_set, record_cell, record_into_corpus, replay_cell_closed_loop,
    replay_corpus, replay_corpus_with_stats, spec_from_header, CellReplay, LoadedCell, ReplayMode,
    ReplayOptions,
};
use qec_experiments::report::to_json;
use qec_experiments::sweep::{run_sweep, run_sweep_with_corpus, SweepSpec};
use qec_experiments::{BatchEngine, CodeFamily, Scenario};
use qec_trace::Corpus;

fn cell_scenario(
    distance: usize,
    rounds: usize,
    p: f64,
    leakage_ratio: f64,
    seed: u64,
    policy: PolicyKind,
) -> Scenario {
    Scenario {
        code: CodeFamily::Surface,
        distance,
        rounds,
        p,
        leakage_ratio,
        policy,
        shots: 3,
        seed,
        decode: true,
        decoder: None,
    }
}

/// Records `scenario` closed-loop under its own policy and loads the cell.
fn record_loaded(scenario: &Scenario) -> LoadedCell {
    let code = scenario.build_code();
    let (header, shots) = record_cell(scenario, scenario.policy, "closed-loop test");
    LoadedCell { header, shots, code }
}

/// Closed-loop replays `candidate` against `cell` and asserts the aggregated
/// metrics are bit-identical to a from-scratch live simulation of that
/// candidate on the same cell and seeds — the exact-counterfactual contract.
fn assert_exact_counterfactual(
    cell: &LoadedCell,
    candidate: PolicyKind,
    decode: bool,
) -> CellReplay {
    let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
    let decoder = decode.then(|| build_decoder(&cell.code, cell.header.rounds));
    let decoder_ref = decoder.as_deref().map(|d| d as &dyn DecoderBackend);
    let replay = replay_cell_closed_loop(cell, &factory, candidate, decoder_ref).unwrap();
    let spec = spec_from_header(&cell.header, candidate, decode);
    let live = BatchEngine::new(&cell.code, &spec).run();
    assert_eq!(
        replay.metrics,
        live.metrics,
        "closed-loop metrics of {candidate:?} must be bit-identical to live re-simulation \
         (recorded policy {}, code {}, rounds={} seed={})",
        cell.header.policy,
        cell.code.name(),
        cell.header.rounds,
        cell.header.seed
    );
    if decode {
        assert!(replay.metrics.logical_error_rate.is_some(), "{candidate:?} must decode");
    }
    replay
}

/// THE oracle test: for every one of the 11 policy kinds, closed-loop replay
/// against a GLADIATOR+M recording must reproduce a from-scratch live run of
/// that policy bit-for-bit — DLP series, FP/FN, LRC counts, cycle times *and*
/// the decoded logical error rate.
#[test]
fn closed_loop_replay_is_bit_identical_to_live_simulation_for_all_11_policies() {
    let scenario = cell_scenario(3, 10, 1e-3, 0.1, 29, PolicyKind::GladiatorM);
    let cell = record_loaded(&scenario);
    for candidate in PolicyKind::ALL {
        let replay = assert_exact_counterfactual(&cell, candidate, true);
        let profile = replay.profile.expect("closed-loop replay always profiles");
        assert_eq!(profile.shots, scenario.shots);
        if candidate == PolicyKind::GladiatorM {
            assert_eq!(replay.divergent_shots, 0, "recording policy must never diverge");
            assert_eq!(profile.resimulated_rounds, 0);
        }
    }
}

/// The contract holds across a grid of `(d, rounds, p, lr, seed)` cells and
/// across different recording policies, not just the base cell.
#[test]
fn closed_loop_replay_is_exact_across_a_parameter_grid() {
    let grid = [
        (3, 8, 1e-3, 0.1, 29, PolicyKind::EraserM),
        (3, 12, 2e-3, 0.5, 101, PolicyKind::NoLrc),
        (5, 10, 1e-3, 0.1, 7, PolicyKind::GladiatorM),
        (3, 6, 5e-3, 0.25, 3, PolicyKind::Staggered),
    ];
    for (d, rounds, p, lr, seed, recorded) in grid {
        let scenario = cell_scenario(d, rounds, p, lr, seed, recorded);
        let cell = record_loaded(&scenario);
        for candidate in
            [recorded, PolicyKind::AlwaysLrc, PolicyKind::Ideal, PolicyKind::GladiatorDM]
        {
            let _ = assert_exact_counterfactual(&cell, candidate, true);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized cells: any surface distance/rounds/noise point/seed and any
    /// (recording, candidate) policy pairing must satisfy the contract.
    #[test]
    fn closed_loop_replay_is_exact_on_random_cells(
        distance_index in 0usize..2,
        rounds in 2usize..12,
        p in 1e-4f64..5e-3,
        leakage_ratio in 0.0f64..1.0,
        seed in any::<u32>(),
        recorded_index in 0usize..11,
        candidate_index in 0usize..11,
    ) {
        let distance = [3, 5][distance_index];
        let recorded = PolicyKind::ALL[recorded_index];
        let candidate = PolicyKind::ALL[candidate_index];
        let scenario =
            cell_scenario(distance, rounds, p, leakage_ratio, u64::from(seed), recorded);
        prop_assert!(scenario.validate().is_ok());
        let cell = record_loaded(&scenario);
        // Decoding is covered by the fixed-grid tests; skip it here so the
        // randomized suite stays fast at d=5.
        let _ = assert_exact_counterfactual(&cell, candidate, false);
    }
}

/// Divergence-profile invariants on real replays: counts are conserved, the
/// cumulative curve is monotone, and the same-policy degenerate path reports
/// zero divergence and zero re-simulation.
#[test]
fn divergence_profiles_are_consistent_on_real_replays() {
    let scenario = cell_scenario(3, 10, 2e-3, 0.2, 41, PolicyKind::GladiatorM);
    let cell = record_loaded(&scenario);
    let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
    for candidate in [PolicyKind::GladiatorM, PolicyKind::AlwaysLrc, PolicyKind::EraserM] {
        let replay = replay_cell_closed_loop(&cell, &factory, candidate, None).unwrap();
        let profile = replay.profile.expect("closed-loop replay always profiles");
        assert_eq!(profile.shots, scenario.shots, "{candidate:?}");
        assert_eq!(profile.rounds, scenario.rounds, "{candidate:?}");
        assert_eq!(profile.first_divergence.len(), scenario.rounds, "{candidate:?}");
        assert_eq!(
            profile.first_divergence.iter().sum::<usize>(),
            profile.divergent_shots,
            "{candidate:?}: first-divergence counts must sum to the divergent shots"
        );
        assert_eq!(
            profile.divergent_shots + profile.exact_shots(),
            scenario.shots,
            "{candidate:?}: every shot is either exact or divergent"
        );
        assert_eq!(profile.divergent_shots, replay.divergent_shots, "{candidate:?}");
        let cumulative = profile.cumulative_divergent();
        assert!(
            cumulative.windows(2).all(|w| w[0] <= w[1]),
            "{candidate:?}: cumulative divergence must be monotone in the round index"
        );
        assert_eq!(cumulative.last().copied(), Some(profile.divergent_shots), "{candidate:?}");
        assert!(profile.resimulated_rounds <= (scenario.shots * scenario.rounds) as u64);
        // Every divergent shot pays its full round count on the simulator
        // (forced prefix + live suffix), which is what simulated_fraction
        // reports.
        assert_eq!(
            profile.resimulated_rounds + profile.restored_rounds,
            (profile.divergent_shots * profile.rounds) as u64,
            "{candidate:?}"
        );
        let expected = profile.divergent_shots as f64 / profile.shots as f64;
        assert!((profile.simulated_fraction() - expected).abs() < 1e-12, "{candidate:?}");
        if candidate == PolicyKind::GladiatorM {
            // Degenerate-path regression: same-policy closed-loop replay is
            // pure replay — zero divergences, zero re-simulated rounds.
            assert_eq!(profile.divergent_shots, 0);
            assert_eq!(profile.resimulated_rounds, 0);
            assert!(profile.resimulated_fraction().abs() < 1e-12);
        } else if profile.divergent_shots > 0 {
            assert!(profile.resimulated_rounds > 0, "{candidate:?}");
        }
    }
    // Always-LRC against a speculative recording diverges in round 0 of every
    // shot: the profile concentrates there and everything is re-simulated.
    let always = replay_cell_closed_loop(&cell, &factory, PolicyKind::AlwaysLrc, None).unwrap();
    let profile = always.profile.unwrap();
    assert_eq!(profile.first_divergence[0], scenario.shots);
    assert_eq!(profile.resimulated_rounds, (scenario.shots * scenario.rounds) as u64);
    assert_eq!(profile.restored_rounds, 0, "round-0 divergence leaves no prefix to restore");
    assert!((profile.resimulated_fraction() - 1.0).abs() < 1e-12);
    assert!((profile.simulated_fraction() - 1.0).abs() < 1e-12);
}

/// A closed-loop corpus sweep must reproduce a fully simulated sweep of every
/// grid policy bit-for-bit — every cell, not just the recording policy's —
/// while carrying divergence profiles and the `closed-loop` provenance field.
#[test]
fn closed_loop_corpus_sweep_matches_a_fully_simulated_sweep_for_every_policy() {
    let dir = std::env::temp_dir().join(format!("qtr-closed-loop-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![1e-3, 2e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::Ideal],
        shots: 3,
        rounds_per_distance: 2,
        seed: 13,
        decode: true,
        decoders: None,
        adaptive: None,
    };
    let report =
        run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::ClosedLoop, true).unwrap();
    assert_eq!(report.replay_mode.as_deref(), Some("closed-loop"));
    assert_eq!(report.recorded_policy.as_deref(), Some("eraser+m"));
    let live = run_sweep(&spec, false).unwrap();
    assert_eq!(live.replay_mode, None);
    assert_eq!(report.cells.len(), live.cells.len());
    for (corpus_cell, live_cell) in report.cells.iter().zip(&live.cells) {
        assert_eq!(corpus_cell.scenario, live_cell.scenario);
        // The headline: EVERY policy's cell equals full re-simulation, LER
        // included — not just the recording policy's.
        assert_eq!(corpus_cell.metrics, live_cell.metrics, "{}", corpus_cell.scenario.id());
        let profile =
            corpus_cell.divergence_profile.as_ref().expect("closed-loop cells carry profiles");
        assert_eq!(profile.shots, spec.shots);
        if corpus_cell.scenario.policy == PolicyKind::EraserM {
            assert_eq!(profile.divergent_shots, 0, "recording policy never diverges");
        }
        assert!(live_cell.divergence_profile.is_none(), "simulated cells carry no profile");
    }
    // Deterministic: a rerun from the populated corpus is identical.
    let rerun =
        run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::ClosedLoop, true).unwrap();
    assert_eq!(rerun, report);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `replay_corpus` in closed-loop mode live-verifies **every** pairing (the
/// CLI's `replay --closed-loop --verify-live` gate) and reports profiles.
#[test]
fn closed_loop_replay_corpus_live_verifies_every_policy() {
    let dir = std::env::temp_dir().join(format!("qtr-closed-loop-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenario = cell_scenario(3, 8, 1e-3, 0.1, 57, PolicyKind::GladiatorM);
    let mut corpus = Corpus::open(&dir).unwrap();
    record_into_corpus(&mut corpus, &scenario, PolicyKind::GladiatorM, "closed-loop test").unwrap();
    corpus.save().unwrap();
    let options = ReplayOptions {
        policies: vec![PolicyKind::GladiatorM, PolicyKind::AlwaysLrc, PolicyKind::MlrOnly],
        decode: true,
        decoders: Vec::new(),
        verify_live: true,
        mode: ReplayMode::ClosedLoop,
        shared_checkpoints: true,
    };
    let report = replay_corpus(&dir, &options).unwrap();
    assert_eq!(report.replay_mode, "closed-loop");
    assert_eq!(report.results.len(), 3);
    for row in &report.results {
        assert_eq!(
            row.live_match,
            Some(true),
            "{}: closed-loop metrics must verify against live simulation",
            row.policy
        );
        assert!(row.metrics.logical_error_rate.is_some(), "{}: closed-loop decodes", row.policy);
        let profile = row.divergence_profile.as_ref().expect("closed-loop rows carry profiles");
        assert_eq!(profile.divergent_shots, row.divergent_shots);
    }
    assert!(report.results[0].exact);
    assert_eq!(report.results[0].divergent_shots, 0);
    assert!(!report.results[1].exact);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An empty corpus is a loud error, not a vacuous success.
#[test]
fn replaying_an_empty_corpus_is_an_error() {
    let dir = std::env::temp_dir().join(format!("qtr-empty-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let corpus = Corpus::open(&dir).unwrap();
    corpus.save().unwrap();
    let err = replay_corpus(&dir, &ReplayOptions::default()).unwrap_err();
    assert!(err.contains("empty"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shared-checkpoint oracle: evaluating ALL 11 policy kinds as one
/// candidate set (1 forced pass + N suffixes per divergent shot) must be
/// bit-identical, DLP series and decoded LER included, to (a) the per-policy
/// closed-loop path it replaces and (b) a from-scratch live simulation of
/// each candidate.
#[test]
fn shared_checkpoint_evaluation_matches_per_policy_and_live_for_all_11_policies() {
    let scenario = cell_scenario(3, 10, 1e-3, 0.1, 29, PolicyKind::GladiatorM);
    let cell = record_loaded(&scenario);
    let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
    let decoder = build_decoder(&cell.code, cell.header.rounds);
    let decoders: Vec<Option<&dyn DecoderBackend>> =
        vec![Some(&*decoder as &dyn DecoderBackend); PolicyKind::ALL.len()];
    let (shared, stats) = evaluate_cell_set(
        &cell,
        &factory,
        &PolicyKind::ALL,
        &decoders,
        ReplayMode::ClosedLoop,
        true,
    )
    .unwrap();
    assert_eq!(shared.len(), PolicyKind::ALL.len());
    for (candidate, replay) in PolicyKind::ALL.into_iter().zip(&shared) {
        let per_policy =
            replay_cell_closed_loop(&cell, &factory, candidate, Some(&*decoder)).unwrap();
        assert_eq!(replay, &per_policy, "{candidate:?}: shared must equal per-policy replay");
        let live = assert_exact_counterfactual(&cell, candidate, true);
        assert_eq!(replay.metrics, live.metrics, "{candidate:?}: shared must equal live");
        assert!(replay.metrics.logical_error_rate.is_some(), "{candidate:?} must decode");
    }
    // The candidate set includes the recording policy plus divergent
    // candidates, so the shared pass actually ran and served suffixes.
    assert!(stats.forced_passes > 0, "divergent candidates force prefix passes");
    assert!(stats.suffixes >= stats.forced_passes, "every forced pass serves >= 1 suffix");
    assert!(stats.peak_checkpoints >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized candidate sets over randomized cells: the replay rows must
    /// be identical with checkpoint sharing on and off — sharing is a cost
    /// optimization, never an observable one. Serialized JSON is compared so
    /// the guarantee is byte-level, matching the CI `cmp` gate.
    #[test]
    fn randomized_candidate_sets_report_identically_with_and_without_sharing(
        rounds in 2usize..10,
        p in 1e-4f64..5e-3,
        leakage_ratio in 0.0f64..0.6,
        seed in any::<u32>(),
        recorded_index in 0usize..11,
        candidate_mask in 1u16..(1 << 11),
    ) {
        let recorded = PolicyKind::ALL[recorded_index];
        let candidates: Vec<PolicyKind> = PolicyKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| candidate_mask & (1 << i) != 0)
            .map(|(_, kind)| kind)
            .collect();
        let scenario =
            cell_scenario(3, rounds, p, leakage_ratio, u64::from(seed), recorded);
        let cell = record_loaded(&scenario);
        let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
        let decoders = vec![None; candidates.len()];
        let (with_sharing, _) = evaluate_cell_set(
            &cell, &factory, &candidates, &decoders, ReplayMode::ClosedLoop, true,
        ).unwrap();
        let (without_sharing, _) = evaluate_cell_set(
            &cell, &factory, &candidates, &decoders, ReplayMode::ClosedLoop, false,
        ).unwrap();
        prop_assert_eq!(to_json(&with_sharing.iter().map(|r| &r.metrics).collect::<Vec<_>>()),
            to_json(&without_sharing.iter().map(|r| &r.metrics).collect::<Vec<_>>()));
        prop_assert_eq!(with_sharing, without_sharing);
    }
}

/// Whole-report determinism, CLI-shaped: `replay_corpus` over a corpus must
/// serialize to the exact same JSON document with sharing on and off (the CI
/// smoke job `cmp`s these files), while the out-of-band checkpoint stats
/// record that the shared run actually consolidated its forced passes.
#[test]
fn corpus_replay_reports_are_byte_identical_with_and_without_sharing() {
    let dir = std::env::temp_dir().join(format!("qtr-shared-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenario = cell_scenario(3, 8, 2e-3, 0.2, 71, PolicyKind::GladiatorM);
    let mut corpus = Corpus::open(&dir).unwrap();
    record_into_corpus(&mut corpus, &scenario, PolicyKind::GladiatorM, "closed-loop test").unwrap();
    corpus.save().unwrap();
    let mut options = ReplayOptions {
        policies: vec![
            PolicyKind::GladiatorM,
            PolicyKind::AlwaysLrc,
            PolicyKind::EraserM,
            PolicyKind::MlrOnly,
        ],
        decode: true,
        decoders: Vec::new(),
        verify_live: false,
        mode: ReplayMode::ClosedLoop,
        shared_checkpoints: true,
    };
    let (shared_report, shared_stats) = replay_corpus_with_stats(&dir, &options).unwrap();
    options.shared_checkpoints = false;
    let (unshared_report, unshared_stats) = replay_corpus_with_stats(&dir, &options).unwrap();
    assert_eq!(to_json(&shared_report), to_json(&unshared_report));
    // AlwaysLrc diverges on every shot, so both runs paid forced work — but
    // the shared run paid one forced pass per divergent shot for the whole
    // candidate set, never more than the per-policy run's total.
    let shared_total: u64 = shared_stats.iter().map(|cell| cell.stats.forced_passes).sum();
    let unshared_total: u64 = unshared_stats.iter().map(|cell| cell.stats.forced_passes).sum();
    assert!(shared_total > 0);
    assert!(shared_total <= unshared_total, "{shared_total} vs {unshared_total}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cost claim of the acceptance criteria: evaluating a multi-policy set
/// against a recorded cell closed-loop costs measurably less wall-time than
/// fully re-simulating every policy, because non-divergent shots never touch
/// the simulator and the recording policy's whole evaluation is pure replay.
/// (The perf gate pins absolute numbers via `trace/closed-loop*` snapshot
/// lines against `crates/bench/BENCH_trace_baseline.json`.)
#[test]
fn closed_loop_multi_policy_evaluation_beats_full_resimulation() {
    let scenario = Scenario {
        code: CodeFamily::Surface,
        distance: 5,
        rounds: 30,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy: PolicyKind::GladiatorM,
        shots: 16,
        seed: 11,
        decode: false,
        decoder: None,
    };
    let cell = record_loaded(&scenario);
    let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
    let policies = [PolicyKind::GladiatorM, PolicyKind::EraserM];
    let engines: Vec<BatchEngine> = policies
        .iter()
        .map(|&kind| {
            let spec = spec_from_header(&cell.header, kind, false);
            BatchEngine::with_shared(&spec, Arc::clone(&factory), None)
        })
        .collect();
    // Warm both paths, then compare best-of-N totals so scheduler noise
    // cannot flake the assertion.
    let closed_loop_sweep = || {
        for &kind in &policies {
            let _ = replay_cell_closed_loop(&cell, &factory, kind, None).unwrap();
        }
    };
    let resim_sweep = || {
        for engine in &engines {
            let _ = engine.run();
        }
    };
    closed_loop_sweep();
    resim_sweep();
    let best_of = |body: &dyn Fn()| {
        (0..5)
            .map(|_| {
                let start = Instant::now();
                body();
                start.elapsed()
            })
            .min()
            .expect("five samples")
    };
    let closed = best_of(&closed_loop_sweep);
    let resim = best_of(&resim_sweep);
    assert!(
        closed < resim,
        "closed-loop multi-policy evaluation ({closed:?}) must beat full re-simulation \
         ({resim:?}) on a sweep that includes the recording policy"
    );
}
