//! Corpus-level edge cases: a manifest that disagrees with its shards must
//! produce loud typed errors — no panics, no silent skips, no silently
//! replaying the wrong workload.

use std::path::PathBuf;

use leakage_speculation::PolicyKind;
use qec_experiments::replay::{load_entry, record_into_corpus};
use qec_experiments::{CodeFamily, Scenario};
use qec_trace::Corpus;

fn scenario() -> Scenario {
    Scenario {
        code: CodeFamily::Surface,
        distance: 3,
        rounds: 6,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy: PolicyKind::EraserM,
        shots: 2,
        seed: 19,
        decode: false,
        decoder: None,
    }
}

fn recorded_corpus(name: &str) -> (PathBuf, Corpus) {
    let dir = std::env::temp_dir().join(format!("qtr-edges-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut corpus = Corpus::open(&dir).unwrap();
    record_into_corpus(&mut corpus, &scenario(), PolicyKind::EraserM, "edge test").unwrap();
    corpus.save().unwrap();
    (dir, corpus)
}

#[test]
fn manifest_metadata_that_disagrees_with_the_shard_header_is_rejected() {
    type Edit = fn(&mut qec_trace::CorpusEntry);
    let cases: [(&str, &str, Edit); 5] = [
        ("rounds", "rounds", |e| e.rounds = 99),
        ("shots", "shots", |e| e.shots = 77),
        ("seed", "seed", |e| e.seed = 1234),
        ("policy", "policy", |e| e.policy = "ideal".to_string()),
        ("schema", "trace_schema", |e| e.trace_schema = 42),
    ];
    for (name, field, edit) in cases {
        let (dir, corpus) = recorded_corpus(name);
        let mut entry = corpus.entries()[0].clone();
        edit(&mut entry);
        let err = load_entry(&corpus, &entry).unwrap_err();
        assert!(
            err.contains("manifest") && err.contains(field),
            "{name}: error must name the mismatched {field} field, got: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_manifest_entry_pointing_at_a_missing_shard_is_an_io_error() {
    let (dir, corpus) = recorded_corpus("missing-shard");
    let mut entry = corpus.entries()[0].clone();
    entry.file = "shards/00/0000000000000000.qtr".to_string();
    let err = load_entry(&corpus, &entry).unwrap_err();
    assert!(err.contains("0000000000000000.qtr"), "error must name the missing shard: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_manifest_entry_with_the_wrong_code_family_is_rejected() {
    let (dir, corpus) = recorded_corpus("wrong-code");
    let mut entry = corpus.entries()[0].clone();
    // Claim the shard holds a d=5 recording: the fingerprint check must refuse.
    entry.distance = 5;
    let err = load_entry(&corpus, &entry).unwrap_err();
    assert!(err.contains("does not match"), "{err}");

    let mut family = corpus.entries()[0].clone();
    family.family = "steane".to_string();
    let err = load_entry(&corpus, &family).unwrap_err();
    assert!(err.contains("unknown code family"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupted_shard_fails_the_corpus_load_loudly() {
    let (dir, corpus) = recorded_corpus("bit-rot");
    let entry = corpus.entries()[0].clone();
    let path = corpus.trace_path(&entry);
    let mut bytes = std::fs::read(&path).unwrap();
    let middle = bytes.len() / 2;
    bytes[middle] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let err = load_entry(&corpus, &entry).unwrap_err();
    assert!(err.contains("corrupt") || err.contains("CRC"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
