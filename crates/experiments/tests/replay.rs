//! The record-once / replay-many determinism contract.
//!
//! These tests pin the tentpole guarantee of the trace subsystem: replaying a
//! recorded corpus reproduces the live engine's FP/FN/DLP and LRC-count
//! metrics (and the LER, when decoding) **bit-for-bit** for every
//! [`PolicyKind`], on disk as well as in memory, and corpus-backed sweeps
//! simulate each cell exactly once.

use std::path::PathBuf;
use std::sync::Arc;

use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_experiments::engine::build_decoder;
use qec_experiments::replay::{
    calibration_for, cell_key, load_entry, record_cell, record_into_corpus, replay_cell,
    replay_corpus, spec_from_header, LoadedCell, ReplayMode, ReplayOptions,
};
use qec_experiments::sweep::{run_sweep, run_sweep_with_corpus, SweepSpec};
use qec_experiments::{BatchEngine, CodeFamily, Scenario};
use qec_trace::Corpus;

fn scenario(policy: PolicyKind) -> Scenario {
    Scenario {
        code: CodeFamily::Surface,
        distance: 3,
        rounds: 10,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy,
        shots: 4,
        seed: 29,
        decode: true,
        decoder: None,
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qtr-replay-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// THE acceptance test: for all 11 policy kinds, record a cell with the
/// policy live, replay the same policy against the trace, and require the
/// replayed aggregate metrics — FP/FN, data/ancilla LRC counts, DLP series,
/// cycle times *and* the decoded logical error rate — to equal the live
/// engine's bit for bit, with zero schedule divergence.
#[test]
fn replayed_metrics_match_the_live_engine_bit_for_bit_for_every_policy_kind() {
    for kind in PolicyKind::ALL {
        let scenario = scenario(kind);
        let code = scenario.build_code();
        let spec = scenario.to_spec();
        let live = BatchEngine::new(&code, &spec).run();

        let (header, shots) = record_cell(&scenario, kind, "replay test");
        let cell = LoadedCell { header, shots, code: code.clone() };
        let factory = Arc::new(PolicyFactory::new(&code, &calibration_for(&cell.header)));
        let decoder = build_decoder(&code, scenario.rounds);
        let replay = replay_cell(&cell, &factory, kind, Some(&*decoder)).unwrap();

        assert_eq!(replay.divergent_shots, 0, "{kind:?} must replay its own schedule exactly");
        assert_eq!(replay.metrics, live.metrics, "{kind:?} replayed metrics must be bit-for-bit");
        assert!(
            replay.metrics.logical_error_rate.is_some(),
            "{kind:?} replay must decode the reconstructed runs"
        );
    }
}

/// The same guarantee holds through the full on-disk path: corpus directory,
/// sharded `.qtr` file, manifest lookup, reload, replay.
#[test]
fn corpus_round_trip_preserves_bit_for_bit_replay() {
    let dir = tmp_dir("roundtrip");
    let scenario = scenario(PolicyKind::GladiatorM);
    let mut corpus = Corpus::open(&dir).unwrap();
    let entry =
        record_into_corpus(&mut corpus, &scenario, PolicyKind::GladiatorM, "replay test").unwrap();
    corpus.save().unwrap();
    assert!(corpus.trace_path(&entry).exists(), "sharded trace file on disk");
    assert_eq!(entry.key, cell_key(&scenario));

    let reopened = Corpus::open(&dir).unwrap();
    let cell = load_entry(&reopened, reopened.lookup(&entry.key).unwrap()).unwrap();
    let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
    let decoder = build_decoder(&cell.code, scenario.rounds);
    let replay = replay_cell(&cell, &factory, PolicyKind::GladiatorM, Some(&*decoder)).unwrap();

    let live = BatchEngine::new(&cell.code, &scenario.to_spec()).run();
    assert_eq!(replay.metrics, live.metrics);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `spec_from_header` reconstructs the recording spec exactly, so live
/// verification re-simulates the very same execution.
#[test]
fn spec_from_header_reproduces_the_recording_spec() {
    let scenario = scenario(PolicyKind::EraserM);
    let (header, _) = record_cell(&scenario, PolicyKind::EraserM, "replay test");
    let spec = spec_from_header(&header, PolicyKind::EraserM, true);
    assert_eq!(spec, scenario.to_spec());
}

/// `replay_corpus` with live verification confirms every exact pairing, and
/// cross-policy replay reports open-loop speculation scores with divergence.
#[test]
fn replay_corpus_verifies_live_and_scores_cross_policy_speculation() {
    let dir = tmp_dir("corpus");
    let mut corpus = Corpus::open(&dir).unwrap();
    let scenario = scenario(PolicyKind::EraserM);
    record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "replay test").unwrap();
    corpus.save().unwrap();

    let options = ReplayOptions {
        policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::AlwaysLrc],
        decode: true,
        decoders: Vec::new(),
        verify_live: true,
        mode: ReplayMode::OpenLoop,
        shared_checkpoints: true,
    };
    let report = replay_corpus(&dir, &options).unwrap();
    assert_eq!(report.results.len(), 3);

    let exact = &report.results[0];
    assert!(exact.exact);
    assert_eq!(exact.divergent_shots, 0);
    assert_eq!(exact.live_match, Some(true), "replayed metrics must equal the live engine");
    assert!(exact.metrics.logical_error_rate.is_some());

    for other in &report.results[1..] {
        assert!(!other.exact);
        assert!(other.live_match.is_none(), "live verification only applies to exact pairings");
        // DLP is a property of the recorded execution, identical across policies.
        assert_eq!(other.metrics.dlp_series, exact.metrics.dlp_series);
    }
    // Always-LRC plans a full schedule every round: guaranteed divergence from
    // the recorded ERASER+M trace.
    assert_eq!(report.results[2].divergent_shots, scenario.shots);
    let _ = std::fs::remove_dir_all(&dir);
}

fn corpus_sweep_spec() -> SweepSpec {
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3],
        error_rates: vec![1e-3, 2e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM, PolicyKind::Ideal],
        shots: 3,
        rounds_per_distance: 2,
        seed: 13,
        decode: true,
        decoders: None,
        adaptive: None,
    }
}

/// A corpus-backed sweep records each policy-free cell once and replays every
/// grid policy against it; the recording policy's cells are bit-for-bit the
/// fully simulated sweep's.
#[test]
fn corpus_sweep_records_each_cell_once_and_pins_the_recording_policy_cells() {
    let dir = tmp_dir("sweep");
    let spec = corpus_sweep_spec();
    let report =
        run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::OpenLoop, true).unwrap();
    assert_eq!(report.recorded_policy.as_deref(), Some("eraser+m"));
    assert_eq!(report.cells.len(), 6, "2 error rates x 3 policies");

    // One trace per policy-free cell: 2, not 6.
    let corpus = Corpus::open(&dir).unwrap();
    assert_eq!(corpus.entries().len(), 2, "policies must not trigger extra recordings");

    // Cells of the recording policy match a fully simulated sweep bit for bit.
    let live = run_sweep(&spec, false).unwrap();
    for (corpus_cell, live_cell) in report.cells.iter().zip(&live.cells) {
        assert_eq!(corpus_cell.scenario, live_cell.scenario);
        if corpus_cell.scenario.policy == PolicyKind::EraserM {
            assert_eq!(corpus_cell.metrics, live_cell.metrics, "{}", corpus_cell.scenario.id());
        }
    }

    // Re-running against the populated corpus replays from disk and reproduces
    // the report byte-for-byte (timing disabled).
    let rerun =
        run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::OpenLoop, true).unwrap();
    assert_eq!(rerun, report);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An explicit `--record-policy` overrides the grid's first policy.
#[test]
fn corpus_sweep_honors_an_explicit_recording_policy() {
    let dir = tmp_dir("recpol");
    let spec = corpus_sweep_spec();
    let report = run_sweep_with_corpus(
        &spec,
        &dir,
        Some(PolicyKind::Ideal),
        false,
        ReplayMode::OpenLoop,
        true,
    )
    .unwrap();
    assert_eq!(report.recorded_policy.as_deref(), Some("ideal"));
    let corpus = Corpus::open(&dir).unwrap();
    assert!(corpus.entries().iter().all(|e| e.policy == "ideal"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reusing a corpus with mismatched execution parameters fails loudly instead
/// of silently replaying the wrong workload.
#[test]
fn corpus_sweep_rejects_stale_cells_with_different_shot_counts() {
    let dir = tmp_dir("stale");
    let spec = corpus_sweep_spec();
    let _ = run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::OpenLoop, true).unwrap();
    // Same key components except shots: the key changes, so this records new
    // cells — but a manually altered manifest key must be caught.
    let mut corpus = Corpus::open(&dir).unwrap();
    let mut entry = corpus.entries()[0].clone();
    let other_key = entry.key.replace("shots=3", "shots=5");
    entry.key = other_key;
    corpus.insert(entry);
    corpus.save().unwrap();
    let bigger = SweepSpec { shots: 5, ..spec };
    let err =
        run_sweep_with_corpus(&bigger, &dir, None, false, ReplayMode::OpenLoop, true).unwrap_err();
    assert!(err.contains("recorded with"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corpus value proposition, machine-checked: the trace snapshot's
/// replay-vs-resim benchmark pair shows replay beating re-simulation per
/// additional policy. The committed baseline documents ~4x; this gate asserts
/// a conservative 2x so shared-runner noise cannot flake it.
#[test]
fn trace_snapshot_shows_replay_beating_resimulation() {
    let lines = qec_experiments::replay::trace_snapshot();
    let min_of = |prefix: &str| {
        lines
            .iter()
            .find(|l| l.benchmark.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing {prefix} line"))
            .min_ns
    };
    for prefix in
        ["trace/record/", "trace/encode/", "trace/decode/", "trace/replay/", "trace/resim/"]
    {
        assert!(min_of(prefix) > 0, "{prefix} must time something");
    }
    let (replay, resim) = (min_of("trace/replay/"), min_of("trace/resim/"));
    assert!(
        resim >= 2 * replay,
        "replay must be at least 2x faster than re-simulation per policy \
         (replay {replay} ns/shot vs resim {resim} ns/shot)"
    );
    // Encoding and decoding are cheap relative to simulation: the corpus pays
    // for itself within its first replayed policy.
    assert!(min_of("trace/encode/") + min_of("trace/decode/") < resim);
}

/// A cache hit recorded under a different policy than the sweep's recording
/// policy must error (it would silently mislabel the report's exact cells).
#[test]
fn corpus_sweep_rejects_cells_recorded_under_a_different_policy() {
    let dir = tmp_dir("polmismatch");
    let spec = corpus_sweep_spec();
    // Populate the corpus under `ideal`, then sweep with the default
    // recording policy (the grid's first: eraser+m).
    let _ = run_sweep_with_corpus(
        &spec,
        &dir,
        Some(PolicyKind::Ideal),
        false,
        ReplayMode::OpenLoop,
        true,
    )
    .unwrap();
    let err =
        run_sweep_with_corpus(&spec, &dir, None, false, ReplayMode::OpenLoop, true).unwrap_err();
    assert!(err.contains("recorded with policy `ideal`"), "{err}");
    assert!(err.contains("--record-policy"), "{err}");
    // Passing the matching recording policy replays the cached cells fine.
    let ok = run_sweep_with_corpus(
        &spec,
        &dir,
        Some(PolicyKind::Ideal),
        false,
        ReplayMode::OpenLoop,
        true,
    )
    .unwrap();
    assert_eq!(ok.recorded_policy.as_deref(), Some("ideal"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Read-only corpus consumers fail loudly on a path that is not a corpus,
/// instead of verifying an empty one vacuously.
#[test]
fn replaying_a_nonexistent_corpus_is_an_error() {
    let dir = tmp_dir("missing"); // created by nobody
    let err = replay_corpus(&dir, &ReplayOptions::default()).unwrap_err();
    assert!(err.contains("not a corpus"), "{err}");
}

/// The cross-decoder oracle: a corpus replayed once per backend produces,
/// for **every** policy kind under closed-loop repair, rows bit-identical to
/// a from-scratch live simulation decoding with that same backend
/// (`verify_live` re-runs the live engine per pairing and compares metrics
/// bit for bit). Decoder-invariant metrics agree across backends, and the
/// exact d=3 lookup decoder is never worse than union-find on the recorded
/// pairing.
#[test]
fn cross_decoder_closed_loop_rows_match_from_scratch_live_runs_for_every_policy() {
    use qec_decoder::DecoderKind;
    use qec_experiments::replay::replay_corpus_with_stats;

    let dir = tmp_dir("oracle");
    let mut corpus = Corpus::open(&dir).unwrap();
    let scenario = scenario(PolicyKind::EraserM);
    record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "replay test").unwrap();
    corpus.save().unwrap();

    let options = ReplayOptions {
        policies: PolicyKind::ALL.to_vec(),
        decode: true,
        decoders: vec![DecoderKind::UnionFind, DecoderKind::Lookup],
        verify_live: true,
        mode: ReplayMode::ClosedLoop,
        shared_checkpoints: true,
    };
    let (report, _) = replay_corpus_with_stats(&dir, &options).unwrap();
    assert_eq!(report.results.len(), 2 * PolicyKind::ALL.len(), "decoder-major × policies");

    for row in &report.results {
        assert_eq!(
            row.live_match,
            Some(true),
            "{} with {:?} must match its live run bit for bit",
            row.policy,
            row.decoder
        );
        assert!(row.metrics.logical_error_rate.is_some(), "{} must decode", row.policy);
    }

    let (uf, lookup) = report.results.split_at(PolicyKind::ALL.len());
    for (u, l) in uf.iter().zip(lookup) {
        assert_eq!(u.policy, l.policy, "decoder-major row order");
        assert_eq!(u.decoder.as_deref(), Some("uf"));
        assert_eq!(l.decoder.as_deref(), Some("lookup"));
        // Everything upstream of decoding is a property of the replayed
        // execution: identical whichever backend scores it.
        assert_eq!(u.metrics.false_negatives, l.metrics.false_negatives, "{}", u.policy);
        assert_eq!(u.metrics.false_positives, l.metrics.false_positives, "{}", u.policy);
        assert_eq!(u.metrics.dlp_series, l.metrics.dlp_series, "{}", u.policy);
        assert_eq!(u.divergent_shots, l.divergent_shots, "{}", u.policy);
        // The lookup table is the exact maximum-likelihood decoder at d=3:
        // it can only match or beat union-find (deterministic fixed seed).
        assert!(
            l.metrics.logical_error_rate <= u.metrics.logical_error_rate,
            "{}: lookup LER {:?} must not exceed union-find LER {:?}",
            u.policy,
            l.metrics.logical_error_rate,
            u.metrics.logical_error_rate
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
