//! End-to-end tests of the `repro` binary: strict argument handling (exit 2 on
//! any unknown input), the sweep subcommand's report contract, and worker-count
//! determinism of the report bytes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    cmd
}

fn run(args: &[&str]) -> Output {
    repro(args).output().expect("spawn repro")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[track_caller]
fn assert_usage_error(args: &[&str]) {
    let output = run(args);
    assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
    let stderr = stderr_of(&output);
    assert!(stderr.contains("usage: repro"), "{args:?} must print usage to stderr: {stderr}");
}

#[test]
fn unknown_inputs_exit_2_with_usage_on_stderr() {
    assert_usage_error(&[]); // no command
    assert_usage_error(&["frobnicate"]); // unknown command
    assert_usage_error(&["run", "--frobnicate"]); // unknown flag
    assert_usage_error(&["run", "fig99"]); // unknown experiment name
    assert_usage_error(&["run", "--scale", "galactic"]); // bad flag value
    assert_usage_error(&["run", "--scale"]); // missing flag value
    assert_usage_error(&["sweep", "--grid", "warp=9"]); // unknown grid key
    assert_usage_error(&["sweep", "--grid", "policy=bogus"]); // unknown policy
    assert_usage_error(&["sweep", "--spec", "/nonexistent/spec.json"]);
    assert_usage_error(&["sweep", "--spec", "x.json", "--grid", "d=3"]); // exclusive
    assert_usage_error(&["sweep", "--spec", "x.json", "--scale", "smoke"]); // scale is grid-only
    assert_usage_error(&["sweep", "--shots", "many"]);
    assert_usage_error(&["sweep", "--out", "--no-timing"]); // flag where a value belongs
    assert_usage_error(&["list", "extra"]);
    assert_usage_error(&["snapshot", "--frobnicate"]);
}

#[test]
fn help_exits_0_with_usage_on_stdout() {
    let output = run(&["--help"]);
    assert_eq!(output.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&output.stdout).contains("usage: repro"));
}

#[test]
fn list_names_every_experiment_policy_and_code_family() {
    let output = run(&["list"]);
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    for needle in ["fig1", "table6", "gladiator+m", "surface", "bpc"] {
        assert!(stdout.contains(needle), "list output missing {needle}: {stdout}");
    }
}

fn tmp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("repro-cli-{}-{name}", std::process::id()));
    path
}

fn sweep_json(out: &Path, threads: &str) -> String {
    let output = repro(&[
        "sweep",
        "--scale",
        "smoke",
        "--no-timing",
        "--out",
        out.to_str().expect("utf-8 temp path"),
    ])
    .env("RAYON_NUM_THREADS", threads)
    .output()
    .expect("spawn repro sweep");
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    std::fs::read_to_string(out).expect("sweep report written")
}

#[test]
fn default_sweep_writes_a_twelve_cell_schema_versioned_report() {
    let out = tmp_path("default.json");
    let json = sweep_json(&out, "2");
    let report: qec_experiments::SweepReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(report.schema_version, qec_experiments::sweep::SWEEP_SCHEMA_VERSION);
    assert_eq!(report.cells.len(), 12, "3 distances x 2 error rates x 2 policies");
    assert!(!report.timing);
    assert!(report.cells.iter().all(|c| c.metrics.logical_error_rate.is_some()));
    let _ = std::fs::remove_file(out);
}

#[test]
fn sweep_reports_are_byte_identical_across_worker_counts() {
    let out1 = tmp_path("t1.json");
    let out4 = tmp_path("t4.json");
    let single = sweep_json(&out1, "1");
    let quad = sweep_json(&out4, "4");
    assert_eq!(single, quad, "seed+shot contract must make worker count invisible");
    let _ = std::fs::remove_file(out1);
    let _ = std::fs::remove_file(out4);
}

#[test]
fn sweep_to_stdout_keeps_stdout_pure_json() {
    let output = run(&["sweep", "--scale", "smoke", "--grid", "d=3", "--no-timing", "--out", "-"]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    let report: qec_experiments::SweepReport =
        serde_json::from_str(&stdout).expect("stdout must be nothing but the JSON report");
    assert_eq!(report.cells.len(), 4);
    assert!(stderr_of(&output).contains("LRC/round"), "summary table must move to stderr");
}

#[test]
fn grid_flags_restrict_the_sweep() {
    let out = tmp_path("grid.json");
    let output = run(&[
        "sweep",
        "--scale",
        "smoke",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m,ideal",
        "--no-timing",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(0), "stderr: {}", stderr_of(&output));
    let report: qec_experiments::SweepReport =
        serde_json::from_str(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.cells.len(), 2);
    assert!(report.cells.iter().all(|c| c.scenario.distance == 3));
    let _ = std::fs::remove_file(out);
}
