//! Integration tests for the sweep orchestration subsystem: grid expansion,
//! JSON round-trips through the vendored serde stack, and bit-for-bit
//! equivalence between the sweep executor and the single-experiment harness.

use leakage_speculation::PolicyKind;
use qec_experiments::report::to_json;
use qec_experiments::runners::Scale;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_experiments::sweep::{run_scenarios, run_sweep, SweepReport, SweepSpec};
use qec_experiments::{run_policy_experiment, BatchEngine};

fn small_spec() -> SweepSpec {
    SweepSpec {
        code: CodeFamily::Surface,
        distances: vec![3, 5],
        error_rates: vec![1e-3, 2e-3],
        leakage_ratios: vec![0.1],
        policies: vec![PolicyKind::EraserM, PolicyKind::GladiatorM],
        shots: 3,
        rounds_per_distance: 1,
        seed: 9,
        decode: true,
        decoders: None,
        adaptive: None,
    }
}

#[test]
fn sweep_spec_round_trips_through_json() {
    let spec = small_spec();
    let json = to_json(&spec);
    let parsed: SweepSpec = serde_json::from_str(&json).expect("spec JSON parses back");
    assert_eq!(parsed, spec);
}

#[test]
fn scenario_round_trips_through_json() {
    let scenario = small_spec().expand().unwrap()[0];
    let json = to_json(&scenario);
    let parsed: Scenario = serde_json::from_str(&json).expect("scenario JSON parses back");
    assert_eq!(parsed, scenario);
}

#[test]
fn full_report_round_trips_through_json() {
    let report = run_sweep(&small_spec(), false).unwrap();
    let json = to_json(&report);
    let parsed: SweepReport = serde_json::from_str(&json).expect("report JSON parses back");
    assert_eq!(parsed, report);
    // And the re-serialized report is byte-identical: rendering is canonical.
    assert_eq!(to_json(&parsed), json);
}

#[test]
fn single_cell_sweep_equals_run_policy_experiment_bit_for_bit() {
    let scenario = Scenario {
        code: CodeFamily::Surface,
        distance: 3,
        rounds: 6,
        p: 1e-3,
        leakage_ratio: 0.1,
        policy: PolicyKind::GladiatorDM,
        shots: 5,
        seed: 31,
        decode: true,
        decoder: None,
    };
    let cells = run_scenarios(&[scenario], false);
    assert_eq!(cells.len(), 1);
    let direct = run_policy_experiment(&scenario.build_code(), &scenario.to_spec());
    assert_eq!(cells[0].metrics, direct.metrics);
    assert_eq!(cells[0].code, direct.code);
}

#[test]
fn shared_artifact_sweep_matches_independent_engines_for_every_cell() {
    let spec = small_spec();
    let report = run_sweep(&spec, false).unwrap();
    assert_eq!(report.cells.len(), 8);
    for cell in &report.cells {
        let scenario = cell.scenario;
        let independent = BatchEngine::new(&scenario.build_code(), &scenario.to_spec()).run();
        assert_eq!(
            cell.metrics,
            independent.metrics,
            "cell {} must not be perturbed by artifact sharing",
            scenario.id()
        );
    }
}

#[test]
fn sweep_reports_are_deterministic_without_timing() {
    let spec = small_spec();
    let a = run_sweep(&spec, false).unwrap();
    let b = run_sweep(&spec, false).unwrap();
    assert_eq!(to_json(&a), to_json(&b));
}

#[test]
fn ler_runner_rows_survive_the_scenario_rebase() {
    // fig12's LER sweep now routes through the scenario executor; its rows
    // must still be one per (distance, policy) with decoded error rates.
    let scale = Scale::smoke();
    let rows = qec_experiments::runners::fig12_ler_vs_distance(&scale);
    assert_eq!(rows.len(), 3 * 4);
    assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.logical_error_rate)));
    let direct = run_policy_experiment(
        &qec_codes::Code::rotated_surface(3),
        &Scenario {
            code: CodeFamily::Surface,
            distance: 3,
            rounds: scale.rounds(10 * 3).max(2),
            p: 1e-3,
            leakage_ratio: 0.1,
            policy: PolicyKind::NoLrc,
            shots: scale.shots,
            seed: scale.seed,
            decode: true,
            decoder: None,
        }
        .to_spec(),
    );
    assert_eq!(
        rows[0].logical_error_rate,
        direct.metrics.logical_error_rate.unwrap_or(0.0),
        "rebased runner must reproduce the direct harness result bit for bit"
    );
    assert_eq!(rows[0].lrcs_per_round, direct.metrics.lrcs_per_round);
}

#[test]
fn default_scale_grid_expands_to_twelve_cells() {
    let spec = SweepSpec::for_scale(&Scale::smoke());
    let scenarios = spec.expand().unwrap();
    assert_eq!(scenarios.len(), 12);
    // 3 distances x 2 error rates x 2 policies, distance-major.
    let distances: Vec<usize> = scenarios.iter().map(|s| s.distance).collect();
    assert_eq!(distances, vec![3, 3, 3, 3, 5, 5, 5, 5, 7, 7, 7, 7]);
}
