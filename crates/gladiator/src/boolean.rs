//! Prefix-tagged patterns and Quine–McCluskey Boolean minimization (Appendix B).
//!
//! The sequence checker has to match patterns of different widths (2-, 3- and 4-bit for
//! the surface code) with one piece of combinational logic. The paper normalizes the
//! widths by prefix tagging — a `w`-bit pattern is padded to `W+1` bits with a run of
//! ones followed by a zero — builds a truth table over the tagged space, and minimizes
//! it symbolically. This module reproduces that flow with a from-scratch
//! Quine–McCluskey implementation and a greedy prime-implicant cover.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

use crate::labeling::PatternTable;

/// A pattern padded to a uniform width with the paper's index-tag prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaggedPattern {
    bits: u32,
    len: usize,
}

impl TaggedPattern {
    /// Encodes a `width`-bit `pattern` into the tagged space of `max_width`-bit
    /// patterns (total length `max_width + 1`): bits `[0, width)` hold the pattern,
    /// bit `width` is the `0` separator and the remaining high bits are ones.
    ///
    /// # Panics
    /// Panics if `width` is zero, exceeds `max_width`, or the pattern has stray bits.
    #[must_use]
    pub fn encode(width: usize, pattern: u32, max_width: usize) -> Self {
        assert!(width >= 1 && width <= max_width, "width {width} out of range");
        assert!(pattern < (1 << width), "pattern {pattern:#b} wider than {width} bits");
        let len = max_width + 1;
        let ones = ((1u32 << (max_width - width)) - 1) << (width + 1);
        TaggedPattern { bits: pattern | ones, len }
    }

    /// The tagged bit string as an integer (LSB = first adjacent site).
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total length of the tagged pattern in bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` only for the (impossible) zero-length pattern; present for API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl fmt::Display for TaggedPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.len).rev() {
            write!(f, "{}", (self.bits >> i) & 1)?;
        }
        Ok(())
    }
}

/// One product term of a DNF expression: the input matches when
/// `input & mask == value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Term {
    /// Bits that the term constrains.
    pub mask: u32,
    /// Required values on the constrained bits.
    pub value: u32,
}

impl Term {
    /// Number of literals (constrained bits) in the term.
    #[must_use]
    pub fn literals(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// `true` when `input` satisfies the term.
    #[must_use]
    pub fn matches(&self, input: u32) -> bool {
        input & self.mask == self.value
    }
}

/// A minimized disjunctive-normal-form expression over `num_bits` inputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BooleanExpression {
    num_bits: usize,
    terms: Vec<Term>,
}

impl BooleanExpression {
    /// Builds (and minimizes) the expression that is true exactly on `minterms`.
    #[must_use]
    pub fn minimize(num_bits: usize, minterms: &BTreeSet<u32>) -> Self {
        let terms = quine_mccluskey(num_bits, minterms);
        BooleanExpression { num_bits, terms }
    }

    /// Number of input bits.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The product terms of the expression.
    #[must_use]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Total number of literals across all terms.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        self.terms.iter().map(Term::literals).sum()
    }

    /// Evaluates the expression on an input.
    #[must_use]
    pub fn evaluate(&self, input: u32) -> bool {
        self.terms.iter().any(|t| t.matches(input))
    }
}

impl fmt::Display for BooleanExpression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "false");
        }
        let rendered: Vec<String> = self
            .terms
            .iter()
            .map(|t| {
                let literals: Vec<String> = (0..self.num_bits)
                    .filter(|&i| t.mask >> i & 1 == 1)
                    .map(|i| if t.value >> i & 1 == 1 { format!("x{i}") } else { format!("!x{i}") })
                    .collect();
                format!("({})", literals.join(" & "))
            })
            .collect();
        write!(f, "{}", rendered.join(" | "))
    }
}

/// Quine–McCluskey: derive prime implicants and cover the minterms greedily
/// (essential implicants first).
fn quine_mccluskey(num_bits: usize, minterms: &BTreeSet<u32>) -> Vec<Term> {
    if minterms.is_empty() {
        return Vec::new();
    }
    let full_mask = if num_bits >= 32 { u32::MAX } else { (1u32 << num_bits) - 1 };

    // Implicant = (mask of cared bits, value). Start with the minterms themselves.
    let mut current: BTreeSet<(u32, u32)> = minterms.iter().map(|&m| (full_mask, m)).collect();
    let mut primes: BTreeSet<(u32, u32)> = BTreeSet::new();

    while !current.is_empty() {
        let list: Vec<(u32, u32)> = current.iter().copied().collect();
        let mut combined_away: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut next: BTreeSet<(u32, u32)> = BTreeSet::new();
        for (i, &(mask_a, val_a)) in list.iter().enumerate() {
            for &(mask_b, val_b) in list.iter().skip(i + 1) {
                if mask_a != mask_b {
                    continue;
                }
                let diff = val_a ^ val_b;
                if diff.count_ones() == 1 {
                    next.insert((mask_a & !diff, val_a & !diff));
                    combined_away.insert((mask_a, val_a));
                    combined_away.insert((mask_b, val_b));
                }
            }
        }
        for implicant in &list {
            if !combined_away.contains(implicant) {
                primes.insert(*implicant);
            }
        }
        current = next;
    }

    // Greedy cover: essential primes first, then the prime covering the most remaining
    // minterms.
    let prime_list: Vec<(u32, u32)> = primes.into_iter().collect();
    let covers = |p: &(u32, u32), m: u32| m & p.0 == p.1;
    let mut uncovered: BTreeSet<u32> = minterms.clone();
    let mut chosen: Vec<(u32, u32)> = Vec::new();

    // Essential primes.
    for &m in minterms {
        let covering: Vec<&(u32, u32)> = prime_list.iter().filter(|p| covers(p, m)).collect();
        if covering.len() == 1 {
            let p = *covering[0];
            if !chosen.contains(&p) {
                chosen.push(p);
            }
        }
    }
    for p in &chosen {
        uncovered.retain(|&m| !covers(p, m));
    }
    while !uncovered.is_empty() {
        let best = prime_list
            .iter()
            .filter(|p| !chosen.contains(p))
            .max_by_key(|p| uncovered.iter().filter(|&&m| covers(p, m)).count())
            .copied();
        let Some(best) = best else { break };
        uncovered.retain(|&m| !covers(&best, m));
        chosen.push(best);
    }

    chosen.into_iter().map(|(mask, value)| Term { mask, value }).collect()
}

/// Builds the minimized expression that recognizes the flagged patterns of a set of
/// single-round tables of different widths, over the prefix-tagged input space.
#[must_use]
pub fn minimize_tagged<'a>(
    tables: impl Iterator<Item = (usize, &'a PatternTable)>,
) -> BooleanExpression {
    let collected: Vec<(usize, &PatternTable)> = tables.collect();
    let max_width = collected.iter().map(|(w, _)| *w).max().unwrap_or(1);
    let mut minterms = BTreeSet::new();
    for (width, table) in collected {
        for pattern in table.flagged_patterns() {
            minterms.insert(TaggedPattern::encode(width, pattern, max_width).bits());
        }
    }
    BooleanExpression::minimize(max_width + 1, &minterms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GladiatorConfig;
    use crate::labeling::build_single_round_table;
    use proptest::prelude::*;

    #[test]
    fn tagging_matches_paper_prefixes() {
        // 4-bit patterns are prefixed with "0", 3-bit with "10", 2-bit with "110".
        let four = TaggedPattern::encode(4, 0b1010, 4);
        assert_eq!(format!("{four}"), "01010");
        let three = TaggedPattern::encode(3, 0b011, 4);
        assert_eq!(format!("{three}"), "10011");
        let two = TaggedPattern::encode(2, 0b01, 4);
        assert_eq!(format!("{two}"), "11001");
        assert_eq!(four.len(), 5);
        assert!(!four.is_empty());
    }

    #[test]
    fn tagged_patterns_of_different_widths_never_collide() {
        let mut seen = BTreeSet::new();
        for width in 1..=4usize {
            for pattern in 0..(1u32 << width) {
                let tagged = TaggedPattern::encode(width, pattern, 4).bits();
                assert!(seen.insert(tagged), "collision for width {width} pattern {pattern:b}");
            }
        }
    }

    #[test]
    fn minimization_of_full_space_is_single_empty_term() {
        let minterms: BTreeSet<u32> = (0..8).collect();
        let expr = BooleanExpression::minimize(3, &minterms);
        assert_eq!(expr.terms().len(), 1);
        assert_eq!(expr.terms()[0].literals(), 0);
        assert!(expr.evaluate(0b101));
    }

    #[test]
    fn minimization_of_classic_example() {
        // f = x&y | !x&!y (XNOR) cannot be reduced below two 2-literal terms.
        let minterms: BTreeSet<u32> = [0b00, 0b11].into_iter().collect();
        let expr = BooleanExpression::minimize(2, &minterms);
        assert_eq!(expr.terms().len(), 2);
        assert_eq!(expr.literal_count(), 4);
    }

    #[test]
    fn empty_minterm_set_is_false() {
        let expr = BooleanExpression::minimize(4, &BTreeSet::new());
        assert!(expr.terms().is_empty());
        assert!(!expr.evaluate(0b1111));
        assert_eq!(format!("{expr}"), "false");
    }

    #[test]
    fn display_contains_literals() {
        let minterms: BTreeSet<u32> = [0b10].into_iter().collect();
        let expr = BooleanExpression::minimize(2, &minterms);
        let rendered = format!("{expr}");
        assert!(rendered.contains("x1"));
        assert!(rendered.contains("!x0"));
    }

    #[test]
    fn minimize_tagged_agrees_with_tables() {
        let config = GladiatorConfig::default();
        let tables: Vec<(usize, PatternTable)> =
            [2usize, 3, 4].iter().map(|&w| (w, build_single_round_table(w, &config))).collect();
        let expr = minimize_tagged(tables.iter().map(|(w, t)| (*w, t)));
        for (width, table) in &tables {
            for pattern in 0..(1u32 << width) {
                let tagged = TaggedPattern::encode(*width, pattern, 4).bits();
                assert_eq!(expr.evaluate(tagged), table.is_flagged(pattern));
            }
        }
        // The paper's minimized surface-code checker has five product terms; ours must
        // land in the same ballpark for the same calibration.
        assert!(expr.terms().len() <= 10, "expression should stay compact");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn minimized_expression_is_equivalent_to_truth_table(
            bits in 2usize..6,
            seed in any::<u64>(),
        ) {
            let size = 1u32 << bits;
            let mut state = seed | 1;
            let mut minterms = BTreeSet::new();
            for value in 0..size {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if state >> 63 == 1 {
                    minterms.insert(value);
                }
            }
            let expr = BooleanExpression::minimize(bits, &minterms);
            for value in 0..size {
                prop_assert_eq!(expr.evaluate(value), minterms.contains(&value));
            }
        }
    }
}
