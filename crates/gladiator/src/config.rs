//! Calibration inputs of the offline GLADIATOR model.

use serde::{Deserialize, Serialize};

/// Calibration data and modelling switches used when building the error-propagation
/// graphs. These correspond to the "device calibration data (leakage rate, non-leakage
/// noise, readout error)" the paper feeds into the offline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GladiatorConfig {
    /// Physical (non-leakage) error rate `p`.
    pub p: f64,
    /// Leakage ratio `lr`, so `p_leak = lr · p`.
    pub leakage_ratio: f64,
    /// A pattern is flagged as leakage when `W_leak > threshold · W_nonleak`.
    pub threshold: f64,
    /// Include first-order data errors occurring *between* the CNOTs of a round (the
    /// suffix patterns such as "0011"). The paper includes these for the surface code.
    pub mid_round_data_errors: bool,
    /// Include second-order (two independent fault) non-leakage events.
    pub second_order: bool,
    /// Relative weight of a single CNOT depolarizing fault that flips only its own
    /// ancilla (per non-identity outcome class).
    pub gate_fault_fraction: f64,
    /// Background non-leakage weight `background_fault_factor · p²` added to every
    /// pattern, accounting for the aggregate probability of multi-fault combinations
    /// that are not enumerated explicitly (crosstalk, hook-error chains, ≥3 faults).
    /// Keeps extremely unlikely leakage explanations from winning by default.
    pub background_fault_factor: f64,
}

impl GladiatorConfig {
    /// Per-location leakage probability `p_leak = lr · p`.
    #[must_use]
    pub fn p_leak(&self) -> f64 {
        self.leakage_ratio * self.p
    }

    /// Background non-leakage weight added to every pattern.
    #[must_use]
    pub fn background_weight(&self) -> f64 {
        self.background_fault_factor * self.p * self.p
    }

    /// Returns a copy with a different physical error rate (recalibration only changes
    /// edge weights, never the graph structure — Section 4.3).
    #[must_use]
    pub fn with_error_rate(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Returns a copy with a different leakage ratio.
    #[must_use]
    pub fn with_leakage_ratio(mut self, lr: f64) -> Self {
        self.leakage_ratio = lr;
        self
    }

    /// Returns a copy with a different decision threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Validates that the calibration values are probabilities / positive factors.
    ///
    /// # Errors
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.p) {
            return Err(format!("p = {} is not a probability", self.p));
        }
        if self.leakage_ratio < 0.0 || !(0.0..=1.0).contains(&self.p_leak()) {
            return Err(format!("leakage ratio {} out of range", self.leakage_ratio));
        }
        if self.threshold <= 0.0 || self.threshold.is_nan() {
            return Err(format!("threshold {} must be positive", self.threshold));
        }
        if !(0.0..=1.0).contains(&self.gate_fault_fraction) {
            return Err(format!("gate fault fraction {} out of range", self.gate_fault_fraction));
        }
        if self.background_fault_factor < 0.0 || self.background_fault_factor.is_nan() {
            return Err(format!(
                "background fault factor {} must be non-negative",
                self.background_fault_factor
            ));
        }
        Ok(())
    }
}

impl Default for GladiatorConfig {
    fn default() -> Self {
        GladiatorConfig {
            p: 1e-3,
            leakage_ratio: 0.1,
            threshold: 1.0,
            mid_round_data_errors: true,
            second_order: true,
            gate_fault_fraction: 0.25,
            background_fault_factor: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_calibration() {
        let c = GladiatorConfig::default();
        assert!((c.p - 1e-3).abs() < 1e-12);
        assert!((c.p_leak() - 1e-4).abs() < 1e-12);
        assert!((c.threshold - 1.0).abs() < 1e-12);
        assert!(c.mid_round_data_errors);
        assert!(c.second_order);
        c.validate().expect("defaults are valid");
    }

    #[test]
    fn with_methods_produce_modified_copies() {
        let base = GladiatorConfig::default();
        let changed = base.with_error_rate(1e-4).with_leakage_ratio(1.0).with_threshold(2.0);
        assert!((changed.p - 1e-4).abs() < 1e-15);
        assert!((changed.p_leak() - 1e-4).abs() < 1e-15);
        assert!((changed.threshold - 2.0).abs() < 1e-12);
        // base unchanged
        assert!((base.p - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(GladiatorConfig { p: 2.0, ..GladiatorConfig::default() }.validate().is_err());
        assert!(GladiatorConfig { threshold: 0.0, ..GladiatorConfig::default() }
            .validate()
            .is_err());
        assert!(GladiatorConfig { leakage_ratio: -1.0, ..GladiatorConfig::default() }
            .validate()
            .is_err());
    }
}
