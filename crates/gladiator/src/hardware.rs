//! FPGA resource model for the online sequence checker (Table 3 of the paper).
//!
//! The paper synthesizes GLADIATOR's combinational pattern matcher and ERASER's
//! per-qubit FSM on a Kintex UltraScale+ FPGA. Synthesis tooling is not available in
//! this environment, so we model the resource usage analytically:
//!
//! * **GLADIATOR** — the minimized DNF is packed into 6-input LUTs (one per product
//!   term plus an OR-reduction stage plus the data-parity adjacency multiplexers), and
//!   the checker is replicated `⌈d²/100⌉` times so every data qubit is evaluated within
//!   the 100 ns budget. This reproduces the paper's `LUTs = 10·⌈d²/100⌉` law exactly.
//! * **ERASER** — a per-data-qubit finite-state machine whose LUT cost was measured in
//!   the paper; we use a least-squares affine fit in `d²` of the published numbers.

use serde::{Deserialize, Serialize};

use crate::boolean::BooleanExpression;

/// LUT usage of one design point (one code distance).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LutReport {
    /// Code distance.
    pub distance: usize,
    /// GLADIATOR LUTs per logical qubit.
    pub gladiator: usize,
    /// ERASER LUTs per logical qubit (calibrated model).
    pub eraser: usize,
}

impl LutReport {
    /// Relative LUT reduction of GLADIATOR over ERASER.
    #[must_use]
    pub fn reduction_factor(&self) -> f64 {
        if self.gladiator == 0 {
            return f64::INFINITY;
        }
        self.eraser as f64 / self.gladiator as f64
    }
}

/// LUT cost of one replicated GLADIATOR sequence checker evaluated from its minimized
/// Boolean expression: one LUT6 per product term, an OR-reduction LUT per six terms,
/// and four LUTs for the data-parity adjacency generator mux network.
#[must_use]
pub fn checker_luts(expression: &BooleanExpression) -> usize {
    let terms = expression.terms().len();
    if terms == 0 {
        return 1;
    }
    terms + terms.div_ceil(6) + 4
}

/// Total GLADIATOR LUTs per logical qubit at code distance `d`, given the per-checker
/// cost: the checker is shared by up to 100 data qubits (one evaluation per ns within
/// the ≈100 ns syndrome window), so it is replicated `⌈d²/100⌉` times.
#[must_use]
pub fn gladiator_lut_estimate(d: usize, luts_per_checker: usize) -> usize {
    luts_per_checker * (d * d).div_ceil(100)
}

/// ERASER LUTs per logical qubit at code distance `d`: affine fit `8.693·d² − 40.3`
/// calibrated against the measurements reported in Table 3 of the paper
/// (177 / 633 / 1382 / 2434 / 3786 / 5393 LUTs at d = 5 / 9 / 13 / 17 / 21 / 25).
#[must_use]
pub fn eraser_lut_estimate(d: usize) -> usize {
    let estimate = 8.693 * (d * d) as f64 - 40.3;
    estimate.max(1.0).round() as usize
}

/// Builds the full Table 3 comparison for a list of distances, assuming the paper's
/// 10-LUT checker (the value our default calibration also produces).
#[must_use]
pub fn lut_table(distances: &[usize], luts_per_checker: usize) -> Vec<LutReport> {
    distances
        .iter()
        .map(|&d| LutReport {
            distance: d,
            gladiator: gladiator_lut_estimate(d, luts_per_checker),
            eraser: eraser_lut_estimate(d),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::minimize_tagged;
    use crate::config::GladiatorConfig;
    use crate::labeling::build_single_round_table;

    #[test]
    fn gladiator_lut_law_matches_table3() {
        // Paper Table 3, GLADIATOR row: 10, 10, 20, 30, 50, 70 for d = 5..25.
        let expected = [(5, 10), (9, 10), (13, 20), (17, 30), (21, 50), (25, 70)];
        for (d, luts) in expected {
            assert_eq!(gladiator_lut_estimate(d, 10), luts, "d = {d}");
        }
    }

    #[test]
    fn eraser_fit_is_within_ten_percent_of_published_values() {
        let published =
            [(5usize, 177usize), (9, 633), (13, 1382), (17, 2434), (21, 3786), (25, 5393)];
        for (d, luts) in published {
            let model = eraser_lut_estimate(d);
            let rel = (model as f64 - luts as f64).abs() / luts as f64;
            assert!(rel < 0.10, "d={d}: model {model} vs published {luts} ({rel:.3})");
        }
    }

    #[test]
    fn reduction_factor_exceeds_17x_at_all_published_distances() {
        let table = lut_table(&[5, 9, 13, 17, 21, 25], 10);
        for report in table {
            assert!(
                report.reduction_factor() >= 17.0,
                "d={} factor {:.1}",
                report.distance,
                report.reduction_factor()
            );
        }
    }

    #[test]
    fn checker_cost_from_default_calibration_is_about_ten_luts() {
        let config = GladiatorConfig::default();
        let tables: Vec<(usize, _)> =
            [2usize, 3, 4].iter().map(|&w| (w, build_single_round_table(w, &config))).collect();
        let expr = minimize_tagged(tables.iter().map(|(w, t)| (*w, t)));
        let luts = checker_luts(&expr);
        assert!(
            (6..=14).contains(&luts),
            "checker should cost ~10 LUTs like the paper's, got {luts}"
        );
    }

    #[test]
    fn empty_expression_still_occupies_one_lut() {
        let expr = BooleanExpression::minimize(5, &std::collections::BTreeSet::new());
        assert_eq!(checker_luts(&expr), 1);
    }

    #[test]
    fn lut_table_covers_requested_distances() {
        let table = lut_table(&[5, 7], 10);
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].distance, 5);
        assert_eq!(table[1].distance, 7);
    }
}
