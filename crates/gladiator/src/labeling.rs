//! Graph merging and node labeling: the lookup table the QEC controller queries.

use serde::{Deserialize, Serialize};

use crate::config::GladiatorConfig;
use crate::propagation::PropagationGraph;
use crate::site_class::SiteClass;

/// A labeled syndrome-pattern table for one degree class.
///
/// `is_flagged(pattern)` answers the online question "should this observation trigger
/// an LRC?" in O(1) — the runtime equivalent of the paper's combinational sequence
/// checker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternTable {
    width: usize,
    leakage_weight: Vec<f64>,
    nonleakage_weight: Vec<f64>,
    flagged: Vec<bool>,
    threshold: f64,
}

impl PatternTable {
    /// Builds a table from explicit leakage / non-leakage graphs.
    ///
    /// # Panics
    /// Panics if the graphs disagree on the pattern width.
    #[must_use]
    pub fn from_graphs(
        leakage: &PropagationGraph,
        non_leakage: &PropagationGraph,
        threshold: f64,
    ) -> Self {
        assert_eq!(
            leakage.width(),
            non_leakage.width(),
            "leakage and non-leakage graphs must share a width"
        );
        let width = leakage.width();
        let size = 1usize << width;
        let mut leakage_weight = vec![0.0; size];
        let mut nonleakage_weight = vec![0.0; size];
        for pattern in 0..size as u32 {
            leakage_weight[pattern as usize] = leakage.weight_into(pattern, None);
            nonleakage_weight[pattern as usize] = non_leakage.weight_into(pattern, None);
        }
        let flagged =
            (0..size).map(|i| leakage_weight[i] > threshold * nonleakage_weight[i]).collect();
        PatternTable { width, leakage_weight, nonleakage_weight, flagged, threshold }
    }

    /// Builds a table directly from raw per-pattern weights (used by the two-round
    /// enumerator).
    ///
    /// # Panics
    /// Panics if the weight vectors do not have `2^width` entries.
    #[must_use]
    pub fn from_weights(
        width: usize,
        leakage_weight: Vec<f64>,
        nonleakage_weight: Vec<f64>,
        threshold: f64,
    ) -> Self {
        let size = 1usize << width;
        assert_eq!(leakage_weight.len(), size, "leakage weights must have 2^width entries");
        assert_eq!(nonleakage_weight.len(), size, "non-leakage weights must have 2^width entries");
        let flagged =
            (0..size).map(|i| leakage_weight[i] > threshold * nonleakage_weight[i]).collect();
        PatternTable { width, leakage_weight, nonleakage_weight, flagged, threshold }
    }

    /// Pattern width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Decision threshold used for labeling.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// `true` when `pattern` is labeled as leakage-dominated.
    ///
    /// # Panics
    /// Panics if `pattern` has bits outside the table width.
    #[must_use]
    pub fn is_flagged(&self, pattern: u32) -> bool {
        assert!(
            (pattern as usize) < self.flagged.len(),
            "pattern {pattern:#b} wider than table width {}",
            self.width
        );
        self.flagged[pattern as usize]
    }

    /// Accumulated leakage weight of a pattern (the super-edge `W_L`).
    #[must_use]
    pub fn leakage_weight(&self, pattern: u32) -> f64 {
        self.leakage_weight[pattern as usize]
    }

    /// Accumulated non-leakage weight of a pattern (`W_NL`).
    #[must_use]
    pub fn nonleakage_weight(&self, pattern: u32) -> f64 {
        self.nonleakage_weight[pattern as usize]
    }

    /// Number of flagged patterns.
    #[must_use]
    pub fn flagged_count(&self) -> usize {
        self.flagged.iter().filter(|&&f| f).count()
    }

    /// All flagged patterns, ascending.
    #[must_use]
    pub fn flagged_patterns(&self) -> Vec<u32> {
        (0..self.flagged.len() as u32).filter(|&p| self.flagged[p as usize]).collect()
    }

    /// The number of patterns ERASER's "at least half the bits flipped" heuristic would
    /// flag at this width — the baseline GLADIATOR is compared against.
    #[must_use]
    pub fn eraser_flagged_count(&self) -> usize {
        (0..self.flagged.len() as u32).filter(|&p| eraser_flags(self.width, p)).count()
    }
}

/// ERASER's heuristic: flag when at least 50 % of the adjacent syndrome bits flipped.
#[must_use]
pub fn eraser_flags(width: usize, pattern: u32) -> bool {
    let flips = pattern.count_ones() as usize;
    2 * flips >= width && flips > 0
}

/// Builds the single-round table for a degree class in the simplified basis-agnostic
/// model (every site detects every Pauli).
#[must_use]
pub fn build_single_round_table(width: usize, config: &GladiatorConfig) -> PatternTable {
    build_single_round_table_for_class(&SiteClass::uniform(width), config)
}

/// Builds the single-round table for an explicit [`SiteClass`] (basis-aware model).
#[must_use]
pub fn build_single_round_table_for_class(
    site_class: &SiteClass,
    config: &GladiatorConfig,
) -> PatternTable {
    let leakage = PropagationGraph::leakage(site_class.width, config);
    let non_leakage = PropagationGraph::non_leakage_for_class(site_class, config);
    PatternTable::from_graphs(&leakage, &non_leakage, config.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eraser_heuristic_counts_match_paper() {
        // 4-bit: 11/16 flagged; 3-bit: 4/8; 8-bit joint: 2 rounds handled elsewhere.
        let four: usize = (0..16u32).filter(|&p| eraser_flags(4, p)).count();
        assert_eq!(four, 11);
        let three: usize = (0..8u32).filter(|&p| eraser_flags(3, p)).count();
        assert_eq!(three, 4);
        let two: usize = (0..4u32).filter(|&p| eraser_flags(2, p)).count();
        assert_eq!(two, 3);
    }

    #[test]
    fn surface_bulk_table_flags_fewer_patterns_than_eraser() {
        let table = build_single_round_table(4, &GladiatorConfig::default());
        assert_eq!(table.flagged_count(), 8);
        assert_eq!(table.eraser_flagged_count(), 11);
        // Frequently occurring non-leakage patterns must not be flagged.
        assert!(!table.is_flagged(0));
        assert!(!table.is_flagged(0b1111));
        assert!(!table.is_flagged(0b1100)); // time-ordered "0011"
        assert!(!table.is_flagged(0b0001));
    }

    #[test]
    fn flagged_patterns_have_higher_leakage_weight() {
        let table = build_single_round_table(4, &GladiatorConfig::default());
        for pattern in table.flagged_patterns() {
            assert!(table.leakage_weight(pattern) > table.nonleakage_weight(pattern));
        }
    }

    #[test]
    fn three_bit_table_flags_only_multi_flip_non_first_order_patterns() {
        let table = build_single_round_table(3, &GladiatorConfig::default());
        // The weight-2 patterns 101 and 011 (time order) that are not suffixes are
        // leakage-dominated; singles and the all-ones pattern are not.
        assert!(table.flagged_count() <= 4);
        assert!(table.flagged_count() >= 2);
        assert!(!table.is_flagged(0b111));
        assert!(!table.is_flagged(0b001));
        assert!(table.is_flagged(0b101));
    }

    #[test]
    fn one_bit_patterns_are_never_flagged_at_default_calibration() {
        // A single adjacent check cannot distinguish leakage from a measurement error,
        // so a 1-bit site never speculates (matches the color-code corner qubits).
        let table = build_single_round_table(1, &GladiatorConfig::default());
        assert_eq!(table.flagged_count(), 0);
    }

    #[test]
    fn higher_leakage_ratio_flags_more_patterns() {
        let low = build_single_round_table(4, &GladiatorConfig::default().with_leakage_ratio(0.01));
        let high = build_single_round_table(4, &GladiatorConfig::default().with_leakage_ratio(1.0));
        assert!(high.flagged_count() >= low.flagged_count());
    }

    #[test]
    fn raising_the_threshold_only_removes_flags() {
        let lenient = build_single_round_table(4, &GladiatorConfig::default().with_threshold(1.0));
        let strict = build_single_round_table(4, &GladiatorConfig::default().with_threshold(10.0));
        for p in 0..16u32 {
            if strict.is_flagged(p) {
                assert!(lenient.is_flagged(p), "pattern {p:04b} flagged only at strict threshold");
            }
        }
        assert!(strict.flagged_count() <= lenient.flagged_count());
    }

    #[test]
    #[should_panic(expected = "wider than table width")]
    fn out_of_range_pattern_panics() {
        let table = build_single_round_table(3, &GladiatorConfig::default());
        let _ = table.is_flagged(0b10000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn gladiator_never_flags_more_than_eraser_at_default_calibration(width in 2usize..7) {
            let table = build_single_round_table(width, &GladiatorConfig::default());
            prop_assert!(table.flagged_count() <= table.eraser_flagged_count());
        }

        #[test]
        fn zero_pattern_is_never_flagged(width in 1usize..9, lr in 0.01f64..1.0) {
            let table = build_single_round_table(width, &GladiatorConfig::default().with_leakage_ratio(lr));
            prop_assert!(!table.is_flagged(0));
        }
    }
}
