//! GLADIATOR: graphical-model leakage speculation for quantum error correction.
//!
//! This crate is the paper's primary contribution: an **offline**, code-aware model
//! that decides which syndrome patterns around a data qubit are *leakage-dominated*
//! and should trigger a leakage-reduction circuit (LRC), and which are better explained
//! by ordinary Pauli noise and can be ignored.
//!
//! The pipeline mirrors Section 4 of the paper:
//!
//! 1. [`propagation`] builds, for every data-qubit degree class of a code, a
//!    **leakage graph** and a **non-leakage graph** whose nodes are syndrome patterns
//!    and whose weighted edges are error events calibrated by the device error rates.
//! 2. [`labeling`] merges the two graphs and labels each pattern as *leakage* when the
//!    accumulated leakage weight exceeds the non-leakage weight by a threshold factor,
//!    producing a [`PatternTable`] (the runtime lookup table).
//! 3. [`two_round`] extends the enumeration to a two-round sliding window
//!    (GLADIATOR-D), which the paper uses for sparse-syndrome codes such as the color
//!    code.
//! 4. [`boolean`] converts the flagged pattern set into a minimized disjunctive normal
//!    form via Quine–McCluskey (the paper uses SymPy), matching Appendix B.
//! 5. [`hardware`] estimates the FPGA LUT cost of the resulting sequence checker and of
//!    ERASER's per-qubit FSM (Table 3).
//! 6. [`mobility`] implements the leakage-mobility estimator of Section 7.6 (Table 6).
//!
//! The entry point is [`GladiatorModel::for_code`], which builds every table a runtime
//! policy needs for a given [`qec_codes::Code`].
//!
//! # Example
//!
//! ```
//! use gladiator::{GladiatorConfig, GladiatorModel};
//! use qec_codes::Code;
//!
//! let code = Code::rotated_surface(5);
//! let model = GladiatorModel::for_code(&code, GladiatorConfig::default());
//! // The four-neighbour (bulk) table flags strictly fewer patterns than ERASER's
//! // "at least half the bits flipped" heuristic (11 of 16).
//! let table = model.single_round_table(4).expect("bulk degree class exists");
//! assert!(table.flagged_count() < 11);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod boolean;
pub mod config;
pub mod hardware;
pub mod labeling;
pub mod mobility;
pub mod propagation;
pub mod site_class;
pub mod two_round;

pub use boolean::{BooleanExpression, TaggedPattern};
pub use config::GladiatorConfig;
pub use hardware::{eraser_lut_estimate, gladiator_lut_estimate, LutReport};
pub use labeling::PatternTable;
pub use mobility::{MobilityEstimator, MobilityRegime};
pub use propagation::{ErrorClass, PropagationGraph};
pub use site_class::SiteClass;

use std::collections::BTreeMap;

use qec_codes::Code;

/// The complete offline GLADIATOR model for one code: a single-round pattern table per
/// data-qubit degree class, and a two-round table per class for GLADIATOR-D.
#[derive(Debug, Clone, PartialEq)]
pub struct GladiatorModel {
    config: GladiatorConfig,
    single_round: BTreeMap<usize, PatternTable>,
    two_round: BTreeMap<usize, PatternTable>,
    single_round_by_class: BTreeMap<SiteClass, PatternTable>,
    two_round_by_class: BTreeMap<SiteClass, PatternTable>,
}

impl GladiatorModel {
    /// Builds the model for every parity-site class occurring in `code`: one
    /// basis-aware table per distinct (width, detection-signature) class, plus the
    /// simplified width-keyed tables used for reporting and hardware synthesis.
    #[must_use]
    pub fn for_code(code: &Code, config: GladiatorConfig) -> Self {
        let adjacency = code.site_adjacency();
        let mut model = Self::for_degrees(&adjacency.degree_classes(), config);
        for class in SiteClass::classes_of(code) {
            model
                .single_round_by_class
                .insert(class, labeling::build_single_round_table_for_class(&class, &config));
            model
                .two_round_by_class
                .insert(class, two_round::build_two_round_table_for_class(&class, &config));
        }
        model
    }

    /// Builds the model for an explicit list of degree classes (pattern widths) in the
    /// simplified basis-agnostic form.
    #[must_use]
    pub fn for_degrees(degrees: &[usize], config: GladiatorConfig) -> Self {
        let mut single_round = BTreeMap::new();
        let mut two_round_tables = BTreeMap::new();
        for &width in degrees {
            single_round.insert(width, labeling::build_single_round_table(width, &config));
            two_round_tables.insert(width, two_round::build_two_round_table(width, &config));
        }
        GladiatorModel {
            config,
            single_round,
            two_round: two_round_tables,
            single_round_by_class: BTreeMap::new(),
            two_round_by_class: BTreeMap::new(),
        }
    }

    /// The configuration used to build this model.
    #[must_use]
    pub fn config(&self) -> &GladiatorConfig {
        &self.config
    }

    /// Single-round pattern table for a data qubit with `width` adjacent checks.
    #[must_use]
    pub fn single_round_table(&self, width: usize) -> Option<&PatternTable> {
        self.single_round.get(&width)
    }

    /// Two-round (GLADIATOR-D) pattern table for `width` adjacent checks.
    #[must_use]
    pub fn two_round_table(&self, width: usize) -> Option<&PatternTable> {
        self.two_round.get(&width)
    }

    /// Degree classes covered by this model, ascending.
    #[must_use]
    pub fn widths(&self) -> Vec<usize> {
        self.single_round.keys().copied().collect()
    }

    /// Classifies a single-round pattern: `true` means "leakage-dominated, schedule an
    /// LRC". Patterns for unknown widths are conservatively classified as non-leakage.
    #[must_use]
    pub fn classify(&self, width: usize, pattern: u32) -> bool {
        self.single_round.get(&width).is_some_and(|t| t.is_flagged(pattern))
    }

    /// Basis-aware single-round classification for a specific site class (falls back to
    /// the width-keyed table when the class was not prebuilt).
    #[must_use]
    pub fn classify_class(&self, site_class: &SiteClass, pattern: u32) -> bool {
        match self.single_round_by_class.get(site_class) {
            Some(table) => table.is_flagged(pattern),
            None => self.classify(site_class.width, pattern),
        }
    }

    /// Basis-aware two-round classification for a specific site class.
    #[must_use]
    pub fn classify_two_round_class(
        &self,
        site_class: &SiteClass,
        round1: u32,
        round2: u32,
    ) -> bool {
        match self.two_round_by_class.get(site_class) {
            Some(table) => {
                let pattern = (u64::from(round2) << site_class.width) | u64::from(round1);
                table.is_flagged(pattern as u32)
            }
            None => self.classify_two_round(site_class.width, round1, round2),
        }
    }

    /// The basis-aware single-round table for a site class, if it was prebuilt.
    #[must_use]
    pub fn class_table(&self, site_class: &SiteClass) -> Option<&PatternTable> {
        self.single_round_by_class.get(site_class)
    }

    /// Classifies a two-round pattern (`round1` in the low bits, `round2` shifted by
    /// `width`), as used by GLADIATOR-D.
    #[must_use]
    pub fn classify_two_round(&self, width: usize, round1: u32, round2: u32) -> bool {
        let pattern = (u64::from(round2) << width) | u64::from(round1);
        self.two_round.get(&width).is_some_and(|t| t.is_flagged(pattern as u32))
    }

    /// The minimized Boolean expression over prefix-tagged patterns covering every
    /// single-round degree class (the content of the paper's sequence checker).
    #[must_use]
    pub fn minimized_expression(&self) -> BooleanExpression {
        boolean::minimize_tagged(self.single_round.iter().map(|(&w, t)| (w, t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_covers_surface_code_degree_classes() {
        let code = Code::rotated_surface(5);
        let model = GladiatorModel::for_code(&code, GladiatorConfig::default());
        assert_eq!(model.widths(), vec![2, 3, 4]);
        assert!(model.single_round_table(4).is_some());
        assert!(model.two_round_table(4).is_some());
        assert!(model.single_round_table(7).is_none());
    }

    #[test]
    fn surface_bulk_class_flags_eight_of_sixteen_patterns() {
        // Paper, Section 1: "eraser flags 11/16 syndrome patterns as leakage-causing
        // patterns, whereas gladiator flags only 8/16".
        let model = GladiatorModel::for_degrees(&[4], GladiatorConfig::default());
        let table = model.single_round_table(4).expect("table exists");
        assert_eq!(table.flagged_count(), 8);
    }

    #[test]
    fn pattern_0011_is_not_flagged_but_1001_is() {
        // Paper, Section 1: "pattern 0011 is more likely to be caused by non-leakage
        // ... while the pattern 1001 most likely indicates a leakage".
        // Bit 0 is the first adjacent check in CNOT order, so the time-ordered string
        // "0011" (A1=0, A2=0, A3=1, A4=1) is the mask 0b1100.
        let model = GladiatorModel::for_degrees(&[4], GladiatorConfig::default());
        assert!(!model.classify(4, 0b1100), "suffix pattern 0011 must not be flagged");
        assert!(model.classify(4, 0b1001), "pattern 1001 must be flagged");
    }

    #[test]
    fn unknown_width_classifies_as_non_leakage() {
        let model = GladiatorModel::for_degrees(&[4], GladiatorConfig::default());
        assert!(!model.classify(9, 0b111111111));
    }

    #[test]
    fn two_round_classification_uses_both_rounds() {
        let model = GladiatorModel::for_degrees(&[4], GladiatorConfig::default());
        // A one-shot burst of flips explained by a round-1 data error that re-announces
        // itself as a prefix in round 2 is non-leakage; random-looking flips in both
        // rounds indicate leakage.
        let non_leak = model.classify_two_round(4, 0b1100, 0b0011);
        let leak = model.classify_two_round(4, 0b0000, 0b1001);
        assert!(!non_leak);
        assert!(leak);
    }

    #[test]
    fn minimized_expression_matches_flagged_sets() {
        let model = GladiatorModel::for_degrees(&[2, 3, 4], GladiatorConfig::default());
        let expr = model.minimized_expression();
        for &width in &[2usize, 3, 4] {
            let table = model.single_round_table(width).expect("table");
            for pattern in 0..(1u32 << width) {
                let tagged = boolean::TaggedPattern::encode(width, pattern, 4);
                assert_eq!(
                    expr.evaluate(tagged.bits()),
                    table.is_flagged(pattern),
                    "width {width} pattern {pattern:0width$b}"
                );
            }
        }
    }
}
