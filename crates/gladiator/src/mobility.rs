//! Leakage-mobility estimation (Section 7.6, Table 6).
//!
//! The choice between open-loop and closed-loop mitigation depends on how easily
//! leakage hops between qubits. The paper estimates mobility online by combining
//! GLADIATOR's speculative flags on data qubits with the multi-level-readout (MLR)
//! verdicts on the neighbouring parity qubits: the conditional probability
//! `P(adjacent ancilla MLR-leaked | data qubit flagged)` tracks the physical transport
//! probability, and a 5 % threshold separates the low- and high-mobility regimes.

use serde::{Deserialize, Serialize};

/// Mobility regime classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MobilityRegime {
    /// Leakage rarely transports; structured open-loop policies (staggered LRCs,
    /// walking codes) are competitive.
    Low,
    /// Leakage spreads readily; closed-loop speculation is required.
    High,
}

/// Accumulates (flagged data qubit, adjacent ancilla MLR) co-observations and estimates
/// the leakage mobility.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityEstimator {
    flagged_observations: usize,
    flagged_with_leaked_neighbor: usize,
    threshold: f64,
}

impl MobilityEstimator {
    /// Creates an estimator with the paper's 5 % decision threshold.
    #[must_use]
    pub fn new() -> Self {
        MobilityEstimator {
            flagged_observations: 0,
            flagged_with_leaked_neighbor: 0,
            threshold: 0.05,
        }
    }

    /// Creates an estimator with a custom decision threshold.
    ///
    /// # Panics
    /// Panics unless `threshold` lies in `(0, 1)`.
    #[must_use]
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold > 0.0 && threshold < 1.0, "threshold must be in (0, 1)");
        MobilityEstimator { flagged_observations: 0, flagged_with_leaked_neighbor: 0, threshold }
    }

    /// Records one round of observations.
    ///
    /// * `flagged_data` — data qubits the speculation policy flagged as leaked this round,
    /// * `ancilla_mlr` — per-check MLR verdicts of the same round,
    /// * `adjacency` — for every data qubit, the ids of its adjacent checks.
    pub fn observe_round(
        &mut self,
        flagged_data: &[usize],
        ancilla_mlr: &[bool],
        adjacency: &[Vec<usize>],
    ) {
        for &q in flagged_data {
            let Some(neighbors) = adjacency.get(q) else { continue };
            if neighbors.is_empty() {
                continue;
            }
            self.flagged_observations += 1;
            let any_leaked =
                neighbors.iter().any(|&c| ancilla_mlr.get(c).copied().unwrap_or(false));
            if any_leaked {
                self.flagged_with_leaked_neighbor += 1;
            }
        }
    }

    /// Number of flagged-data observations accumulated so far.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.flagged_observations
    }

    /// The estimated conditional probability
    /// `P(adjacent ancilla leaked | data qubit flagged)`, or `None` before any
    /// observation.
    #[must_use]
    pub fn conditional_probability(&self) -> Option<f64> {
        if self.flagged_observations == 0 {
            return None;
        }
        Some(self.flagged_with_leaked_neighbor as f64 / self.flagged_observations as f64)
    }

    /// Classifies the mobility regime, or `None` before any observation.
    #[must_use]
    pub fn classify(&self) -> Option<MobilityRegime> {
        self.conditional_probability().map(|p| {
            if p < self.threshold {
                MobilityRegime::Low
            } else {
                MobilityRegime::High
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_adjacency(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|q| vec![q]).collect()
    }

    #[test]
    fn no_observations_yields_no_classification() {
        let est = MobilityEstimator::new();
        assert_eq!(est.classify(), None);
        assert_eq!(est.conditional_probability(), None);
        assert_eq!(est.observations(), 0);
    }

    #[test]
    fn frequent_neighbor_leakage_classifies_as_high() {
        let mut est = MobilityEstimator::new();
        let adjacency = line_adjacency(4);
        for round in 0..100 {
            let mlr = vec![round % 10 != 0, false, false, false];
            est.observe_round(&[0], &mlr, &adjacency);
        }
        assert_eq!(est.classify(), Some(MobilityRegime::High));
        assert!(est.conditional_probability().expect("has data") > 0.5);
    }

    #[test]
    fn rare_neighbor_leakage_classifies_as_low() {
        let mut est = MobilityEstimator::new();
        let adjacency = line_adjacency(4);
        for round in 0..100 {
            let mlr = vec![round == 7, false, false, false];
            est.observe_round(&[0], &mlr, &adjacency);
        }
        assert_eq!(est.classify(), Some(MobilityRegime::Low));
    }

    #[test]
    fn threshold_is_configurable() {
        let mut strict = MobilityEstimator::with_threshold(0.5);
        let adjacency = line_adjacency(2);
        for round in 0..10 {
            strict.observe_round(&[0], &[round % 5 == 0, false], &adjacency);
        }
        // 20% conditional probability: High at the default 5% threshold, Low at 50%.
        assert_eq!(strict.classify(), Some(MobilityRegime::Low));
        let mut default = MobilityEstimator::new();
        for round in 0..10 {
            default.observe_round(&[0], &[round % 5 == 0, false], &adjacency);
        }
        assert_eq!(default.classify(), Some(MobilityRegime::High));
    }

    #[test]
    fn qubits_without_neighbors_are_ignored() {
        let mut est = MobilityEstimator::new();
        let adjacency = vec![vec![], vec![0]];
        est.observe_round(&[0, 1], &[true], &adjacency);
        assert_eq!(est.observations(), 1);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn invalid_threshold_is_rejected() {
        let _ = MobilityEstimator::with_threshold(1.5);
    }
}
