//! Error-propagation graphs: how leakage and ordinary faults transform syndrome
//! patterns (Figure 6 of the paper).
//!
//! For a data qubit with `n` adjacent parity sites (checks measured in CNOT time order
//! `A1 … An`), a *pattern* is an `n`-bit mask whose bit `i` (LSB = `A1`) records whether
//! the detector of site `i` flipped this round. Starting from the error-free base
//! pattern, every fault location either
//!
//! * **leaks the data qubit**, after which every remaining CNOT of the round
//!   malfunctions and flips its site with probability ½ (so all suffix sub-patterns
//!   become reachable with geometric weights), or
//! * is an **ordinary (non-leakage) fault** — a data Pauli before/between CNOTs, a
//!   readout/reset flip on one site, or a CNOT depolarizing fault — which produces a
//!   *deterministic* pattern.
//!
//! The two enumerations form the leakage and non-leakage graphs; the labeling stage
//! merges them and compares the accumulated edge weights per node.

use serde::{Deserialize, Serialize};

use crate::config::GladiatorConfig;
use crate::site_class::SiteClass;

/// The kind of fault an edge of the propagation graph represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    /// The data qubit leaves the computational subspace at some point of the round.
    Leakage,
    /// A Pauli error on the data qubit (start-of-round or between CNOTs).
    DataPauli,
    /// A readout, reset or ancilla-side gate fault flipping a single site.
    CheckFault,
    /// A CNOT depolarizing fault propagating onto the data qubit mid-round.
    GateFault,
    /// Two independent non-leakage faults in the same round.
    SecondOrder,
    /// The explicit "nothing happened" edge into the all-zero pattern.
    NoFault,
}

/// One weighted, directed edge of a propagation graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationEdge {
    /// Source pattern (the base node; always the error-free pattern here).
    pub source: u32,
    /// Resulting pattern after the fault.
    pub target: u32,
    /// Fault category.
    pub class: ErrorClass,
    /// Probability weight of the fault (prior × transformation probability).
    pub weight: f64,
}

/// A propagation graph for one data-qubit degree class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PropagationGraph {
    width: usize,
    edges: Vec<PropagationEdge>,
}

impl PropagationGraph {
    /// Pattern width (number of adjacent parity sites).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// All edges.
    #[must_use]
    pub fn edges(&self) -> &[PropagationEdge] {
        &self.edges
    }

    /// Number of pattern nodes (`2^width`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        1 << self.width
    }

    /// Sum of the incoming edge weights of `pattern` (the paper's super-edge weight
    /// `W`), optionally restricted to a single error class.
    #[must_use]
    pub fn weight_into(&self, pattern: u32, class: Option<ErrorClass>) -> f64 {
        self.edges
            .iter()
            .filter(|e| e.target == pattern && class.map_or(true, |c| e.class == c))
            .map(|e| e.weight)
            .sum()
    }

    /// Total weight of all edges.
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Builds the **leakage graph**: every location at which the data qubit can leak
    /// during the round, and the resulting distribution over syndrome patterns.
    ///
    /// # Panics
    /// Panics if `width` is zero or larger than 16.
    #[must_use]
    pub fn leakage(width: usize, config: &GladiatorConfig) -> Self {
        assert!((1..=16).contains(&width), "pattern width {width} out of range 1..=16");
        let p_leak = config.p_leak();
        let mut edges = Vec::new();

        // Leak before the round (or carried over from an earlier round): every one of
        // the `width` CNOTs malfunctions, so all 2^width patterns are equally likely.
        let all = 1u32 << width;
        for target in 0..all {
            edges.push(PropagationEdge {
                source: 0,
                target,
                class: ErrorClass::Leakage,
                weight: p_leak / f64::from(all),
            });
        }
        // Leak after the CNOT with site i (i = 0 .. width-1): sites 0..=i already
        // recorded the clean value, the remaining sites flip at random. `i = width-1`
        // is a leak just before measurement — invisible until the next round.
        for i in 0..width {
            let random_bits = width - 1 - i;
            let combos = 1u32 << random_bits;
            for sub in 0..combos {
                let target = sub << (i + 1);
                edges.push(PropagationEdge {
                    source: 0,
                    target,
                    class: ErrorClass::Leakage,
                    weight: p_leak / f64::from(combos),
                });
            }
        }
        PropagationGraph { width, edges }
    }

    /// Builds the **non-leakage graph** for the simplified, basis-agnostic class in
    /// which every site detects every data Pauli (the paper's Figure 6 exposition).
    ///
    /// # Panics
    /// Panics if `width` is zero or larger than 16.
    #[must_use]
    pub fn non_leakage(width: usize, config: &GladiatorConfig) -> Self {
        Self::non_leakage_for_class(&SiteClass::uniform(width), config)
    }

    /// Builds the **non-leakage graph** for an explicit site class: data Pauli errors
    /// only flip the sites that actually detect that Pauli component (an X error is
    /// seen by Z-type checks only), which is what separates GLADIATOR's flagged set
    /// from ERASER's on the surface code.
    ///
    /// # Panics
    /// Panics if the class width is zero or larger than 16.
    #[must_use]
    pub fn non_leakage_for_class(site_class: &SiteClass, config: &GladiatorConfig) -> Self {
        let width = site_class.width;
        assert!((1..=16).contains(&width), "pattern width {width} out of range 1..=16");
        let p = config.p;
        let mut first_order: Vec<PropagationEdge> = Vec::new();

        let suffix = |i: usize| ((1u32 << width) - 1) & !((1u32 << (i + 1)) - 1);
        // One third of the depolarizing weight per Pauli component.
        let paulis = [(true, false), (false, true), (true, true)];

        for &(x, z) in &paulis {
            let mask = site_class.detection_mask(x, z);
            // Data Pauli at the start of the round: flips every detecting site.
            first_order.push(PropagationEdge {
                source: 0,
                target: mask,
                class: ErrorClass::DataPauli,
                weight: p / 3.0,
            });
            // Data Pauli between CNOTs: flips only the detecting sites measured later.
            if config.mid_round_data_errors {
                for i in 0..width.saturating_sub(1) {
                    first_order.push(PropagationEdge {
                        source: 0,
                        target: mask & suffix(i),
                        class: ErrorClass::DataPauli,
                        weight: p / 3.0,
                    });
                }
                // After the last CNOT: invisible this round.
                first_order.push(PropagationEdge {
                    source: 0,
                    target: 0,
                    class: ErrorClass::DataPauli,
                    weight: p / 3.0,
                });
            }
        }
        // Readout / reset fault on one site.
        for i in 0..width {
            first_order.push(PropagationEdge {
                source: 0,
                target: 1 << i,
                class: ErrorClass::CheckFault,
                weight: p,
            });
        }
        // CNOT depolarizing faults: ancilla-only flip, data-propagating part, or both.
        let g = config.gate_fault_fraction * p;
        if g > 0.0 {
            for i in 0..width {
                first_order.push(PropagationEdge {
                    source: 0,
                    target: 1 << i,
                    class: ErrorClass::GateFault,
                    weight: g,
                });
                for &(x, z) in &paulis {
                    let mask = site_class.detection_mask(x, z) & suffix(i);
                    first_order.push(PropagationEdge {
                        source: 0,
                        target: mask,
                        class: ErrorClass::GateFault,
                        weight: g / 3.0,
                    });
                    first_order.push(PropagationEdge {
                        source: 0,
                        target: (1 << i) | mask,
                        class: ErrorClass::GateFault,
                        weight: g / 3.0,
                    });
                }
            }
        }

        let mut edges = first_order.clone();

        // Second-order: two independent faults in the same round.
        if config.second_order {
            for (a, ea) in first_order.iter().enumerate() {
                for eb in first_order.iter().skip(a + 1) {
                    edges.push(PropagationEdge {
                        source: 0,
                        target: ea.target ^ eb.target,
                        class: ErrorClass::SecondOrder,
                        weight: ea.weight * eb.weight,
                    });
                }
            }
        }

        // Background weight for unenumerated multi-fault combinations: every pattern
        // keeps a small residual non-leakage explanation.
        let background = config.background_weight();
        if background > 0.0 {
            for target in 0..(1u32 << width) {
                edges.push(PropagationEdge {
                    source: 0,
                    target,
                    class: ErrorClass::SecondOrder,
                    weight: background,
                });
            }
        }

        // The dominant "no fault" edge keeps the all-zero node firmly non-leakage.
        let used: f64 = edges.iter().map(|e| e.weight).sum();
        edges.push(PropagationEdge {
            source: 0,
            target: 0,
            class: ErrorClass::NoFault,
            weight: (1.0 - used).max(0.0),
        });

        PropagationGraph { width, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn config() -> GladiatorConfig {
        GladiatorConfig::default()
    }

    #[test]
    fn leakage_graph_total_weight_counts_all_locations() {
        let g = PropagationGraph::leakage(4, &config());
        // width + 1 leak locations (round start + after each of the 4 CNOTs), each with
        // prior p_leak.
        let expected = 5.0 * config().p_leak();
        assert!((g.total_weight() - expected).abs() < 1e-12);
        assert_eq!(g.num_nodes(), 16);
    }

    #[test]
    fn leakage_graph_prefers_low_prefix_patterns() {
        // Patterns whose early (low-index) bits are zero are reachable from more leak
        // locations, so they accumulate more leakage weight.
        let g = PropagationGraph::leakage(4, &config());
        let late_only = g.weight_into(0b1000, None);
        let early = g.weight_into(0b0001, None);
        assert!(late_only > early, "late-bit patterns should carry more leakage weight");
    }

    #[test]
    fn pattern_with_first_bit_set_only_reachable_from_round_start_leak() {
        let g = PropagationGraph::leakage(4, &config());
        let w = g.weight_into(0b1001, None);
        assert!((w - config().p_leak() / 16.0).abs() < 1e-15);
    }

    #[test]
    fn non_leakage_first_order_targets_are_suffixes_singles_and_all_ones() {
        let g = PropagationGraph::non_leakage(4, &config());
        // "0011" in the paper's time order (A3, A4 flipped) is the mask 0b1100 and must
        // be a strong first-order pattern.
        let w_0011 = g.weight_into(0b1100, Some(ErrorClass::DataPauli));
        assert!(w_0011 >= config().p * 0.99);
        // An alternating pattern like A1,A3 (mask 0b0101) must have no first-order
        // weight at all.
        for class in [ErrorClass::DataPauli, ErrorClass::CheckFault, ErrorClass::GateFault] {
            assert_eq!(g.weight_into(0b0101, Some(class)), 0.0, "class {class:?}");
        }
        assert!(g.weight_into(0b0101, Some(ErrorClass::SecondOrder)) > 0.0);
    }

    #[test]
    fn no_fault_edge_dominates_the_zero_pattern() {
        let g = PropagationGraph::non_leakage(4, &config());
        let zero_weight = g.weight_into(0, None);
        assert!(zero_weight > 0.9, "zero pattern should carry the no-fault prior");
    }

    #[test]
    fn disabling_mid_round_errors_removes_suffix_patterns() {
        let cfg = GladiatorConfig { mid_round_data_errors: false, ..GladiatorConfig::default() };
        let g = PropagationGraph::non_leakage(4, &cfg);
        assert_eq!(g.weight_into(0b1100, Some(ErrorClass::DataPauli)), 0.0);
        // The all-ones start-of-round error remains.
        assert!(g.weight_into(0b1111, Some(ErrorClass::DataPauli)) > 0.0);
    }

    #[test]
    fn second_order_can_be_disabled() {
        let cfg = GladiatorConfig {
            second_order: false,
            background_fault_factor: 0.0,
            ..GladiatorConfig::default()
        };
        let g = PropagationGraph::non_leakage(4, &cfg);
        assert!(g.edges().iter().all(|e| e.class != ErrorClass::SecondOrder));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn leakage_weights_are_probability_like(width in 1usize..9) {
            let g = PropagationGraph::leakage(width, &config());
            for e in g.edges() {
                prop_assert!(e.weight > 0.0 && e.weight <= config().p_leak());
            }
            // Every pattern is reachable by leakage (round-start leak randomizes all bits).
            for pattern in 0..(1u32 << width) {
                prop_assert!(g.weight_into(pattern, None) > 0.0);
            }
        }

        #[test]
        fn non_leakage_graph_weight_is_close_to_one(width in 1usize..9) {
            let g = PropagationGraph::non_leakage(width, &config());
            let total = g.total_weight();
            prop_assert!((total - 1.0).abs() < 1e-6, "total weight {total}");
        }
    }
}
