//! Site classes: the per-data-qubit environment the offline model is built for.
//!
//! The propagation graphs need to know, for every adjacent parity site, *which data
//! Pauli errors it detects*: a Z-type check detects X errors, an X-type check detects Z
//! errors, and a self-dual face (color code) detects both. Two data qubits whose
//! adjacent sites have the same width and the same detection signature share one
//! lookup table, so the model is built per [`SiteClass`] rather than per qubit.

use serde::{Deserialize, Serialize};

use qec_codes::{CheckBasis, Code};

/// The detection signature of one data qubit's adjacent parity sites, in CNOT time
/// order (bit `i` = `i`-th adjacent site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteClass {
    /// Number of adjacent parity sites (pattern width).
    pub width: usize,
    /// Bit `i` set when site `i` detects data **X** errors (i.e. hosts a Z-type check).
    pub detects_x: u32,
    /// Bit `i` set when site `i` detects data **Z** errors (i.e. hosts an X-type check).
    pub detects_z: u32,
}

impl SiteClass {
    /// The class in which every site detects every Pauli — the paper's simplified
    /// exposition (Figure 6) and the correct model for self-dual faces.
    #[must_use]
    pub fn uniform(width: usize) -> Self {
        let all = if width == 0 { 0 } else { (1u32 << width) - 1 };
        SiteClass { width, detects_x: all, detects_z: all }
    }

    /// Sites that detect the given single-qubit Pauli component.
    #[must_use]
    pub fn detection_mask(&self, x_component: bool, z_component: bool) -> u32 {
        let mut mask = 0;
        if x_component {
            mask |= self.detects_x;
        }
        if z_component {
            mask |= self.detects_z;
        }
        mask
    }

    /// Per-data-qubit site classes of a code, in data-qubit order.
    #[must_use]
    pub fn per_qubit(code: &Code) -> Vec<SiteClass> {
        let sites = code.parity_sites();
        let adjacency = code.site_adjacency();
        (0..code.num_data())
            .map(|q| {
                let neighbors = adjacency.neighbors(q);
                let mut detects_x = 0u32;
                let mut detects_z = 0u32;
                for (bit, entry) in neighbors.iter().enumerate() {
                    for &check in sites.checks_of(entry.site) {
                        match code.check(check).basis {
                            CheckBasis::Z => detects_x |= 1 << bit,
                            CheckBasis::X => detects_z |= 1 << bit,
                        }
                    }
                }
                SiteClass { width: neighbors.len(), detects_x, detects_z }
            })
            .collect()
    }

    /// The distinct site classes of a code, sorted.
    #[must_use]
    pub fn classes_of(code: &Code) -> Vec<SiteClass> {
        let mut classes = Self::per_qubit(code);
        classes.sort_unstable();
        classes.dedup();
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_class_detects_everything() {
        let class = SiteClass::uniform(4);
        assert_eq!(class.detects_x, 0b1111);
        assert_eq!(class.detects_z, 0b1111);
        assert_eq!(class.detection_mask(true, false), 0b1111);
        assert_eq!(class.detection_mask(false, false), 0);
    }

    #[test]
    fn surface_bulk_qubits_split_detection_between_bases() {
        let code = Code::rotated_surface(5);
        let per_qubit = SiteClass::per_qubit(&code);
        // Bulk qubit: 4 sites, 2 detect X and 2 detect Z, with disjoint masks.
        let bulk = per_qubit.iter().find(|c| c.width == 4).expect("bulk class exists");
        assert_eq!(bulk.detects_x.count_ones(), 2);
        assert_eq!(bulk.detects_z.count_ones(), 2);
        assert_eq!(bulk.detects_x & bulk.detects_z, 0);
        assert_eq!(bulk.detects_x | bulk.detects_z, 0b1111);
    }

    #[test]
    fn color_code_faces_detect_both_paulis() {
        let code = Code::color_666(5);
        for class in SiteClass::classes_of(&code) {
            assert_eq!(class.detects_x, class.detects_z, "face sites are self-dual");
            assert_eq!(class.detects_x, (1 << class.width) - 1);
        }
    }

    #[test]
    fn classes_are_deduplicated_and_cover_all_widths() {
        let code = Code::rotated_surface(5);
        let classes = SiteClass::classes_of(&code);
        let widths: Vec<usize> = classes.iter().map(|c| c.width).collect();
        assert!(widths.contains(&2) && widths.contains(&3) && widths.contains(&4));
        let mut sorted = classes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), classes.len());
    }
}
