//! GLADIATOR-D: two-round (sliding window) pattern enumeration.
//!
//! Sparse-syndrome codes (color code edge/corner qubits, qLDPC codes) expose too few
//! bits per round to separate leakage from ordinary noise. GLADIATOR-D defers the
//! decision by one round and classifies the concatenated pattern
//! `(round₁ flips, round₂ flips)` instead (Section 5.2): a persistent Pauli fault
//! re-announces itself deterministically in the second round (e.g. a mid-round data
//! error shows the complementary prefix), while a leaked qubit keeps producing random
//! flips.

use crate::config::GladiatorConfig;
use crate::labeling::PatternTable;
use crate::site_class::SiteClass;

/// Builds the two-round table for a degree class of `width` adjacent sites in the
/// simplified basis-agnostic model. The table is indexed by `round2 << width | round1`.
///
/// # Panics
/// Panics if `width` is zero or larger than 12 (two-round tables grow as `4^width`).
#[must_use]
pub fn build_two_round_table(width: usize, config: &GladiatorConfig) -> PatternTable {
    build_two_round_table_for_class(&SiteClass::uniform(width), config)
}

/// Builds the two-round table for an explicit [`SiteClass`] (basis-aware model).
///
/// # Panics
/// Panics if the class width is zero or larger than 12.
#[must_use]
pub fn build_two_round_table_for_class(
    site_class: &SiteClass,
    config: &GladiatorConfig,
) -> PatternTable {
    let width = site_class.width;
    assert!((1..=12).contains(&width), "two-round width {width} out of range 1..=12");
    let total_bits = 2 * width;
    let size = 1usize << total_bits;
    let p = config.p;
    let p_leak = config.p_leak();
    let all = (1u32 << width) - 1;
    let suffix = |i: usize| all & !((1u32 << (i + 1)) - 1);
    let prefix = |i: usize| (1u32 << (i + 1)) - 1;
    let join = |r1: u32, r2: u32| ((r2 as usize) << width) | r1 as usize;

    // ---------------- leakage weights -------------------------------------------------
    let mut w_leak = vec![0.0f64; size];
    // Leak at the start of round 1 (or carried in): both rounds fully random.
    {
        let share = p_leak / (1u64 << total_bits) as f64;
        for slot in w_leak.iter_mut() {
            *slot += share;
        }
    }
    // Leak after CNOT i of round 1: round-1 sites > i random, round 2 fully random.
    for i in 0..width {
        let random1 = width - 1 - i;
        let share = p_leak / (1u64 << (random1 + width)) as f64;
        for sub in 0..(1u32 << random1) {
            let r1 = sub << (i + 1);
            for r2 in 0..=all {
                w_leak[join(r1, r2)] += share;
            }
        }
    }
    // Leak at the start of round 2: round 1 clean, round 2 fully random.
    {
        let share = p_leak / (1u64 << width) as f64;
        for r2 in 0..=all {
            w_leak[join(0, r2)] += share;
        }
    }
    // Leak after CNOT i of round 2: round 1 clean, round-2 sites > i random.
    for i in 0..width {
        let random2 = width - 1 - i;
        let share = p_leak / (1u64 << random2) as f64;
        for sub in 0..(1u32 << random2) {
            let r2 = sub << (i + 1);
            w_leak[join(0, r2)] += share;
        }
    }

    // ---------------- non-leakage weights ----------------------------------------------
    // First-order events as (round1 mask, round2 mask, weight). Data Pauli errors only
    // flip the sites that detect the corresponding component.
    let paulis = [(true, false), (false, true), (true, true)];
    let mut first_order: Vec<(u32, u32, f64)> = Vec::new();
    for &(x, z) in &paulis {
        let mask = site_class.detection_mask(x, z);
        // Data Pauli at the start of round 1: detecting sites flip in round 1; the
        // detectors of round 2 are silent because the error is persistent.
        first_order.push((mask, 0, p / 3.0));
        if config.mid_round_data_errors {
            for i in 0..width.saturating_sub(1) {
                // Mid-round data error: detecting suffix now, complementary detecting
                // prefix next round.
                first_order.push((mask & suffix(i), mask & prefix(i), p / 3.0));
            }
            // After the last CNOT of round 1: invisible now, full pattern next round.
            first_order.push((0, mask, p / 3.0));
        }
        // Data Pauli at the start of round 2.
        first_order.push((0, mask, p / 3.0));
        if config.mid_round_data_errors {
            for i in 0..width.saturating_sub(1) {
                // Mid-round error in round 2: its echo lands outside the window.
                first_order.push((0, mask & suffix(i), p / 3.0));
            }
            first_order.push((0, 0, p / 3.0));
        }
    }
    // Measurement / reset faults: a flipped readout toggles the detector of its own
    // round and of the following one.
    for i in 0..width {
        first_order.push((1 << i, 1 << i, p));
        first_order.push((0, 1 << i, p));
    }
    // Gate faults.
    let g = config.gate_fault_fraction * p;
    if g > 0.0 {
        for i in 0..width {
            first_order.push((1 << i, 1 << i, g));
            first_order.push((0, 1 << i, g));
            for &(x, z) in &paulis {
                let mask = site_class.detection_mask(x, z);
                first_order.push((mask & suffix(i), mask & prefix(i), g / 3.0));
                first_order.push((
                    (mask & suffix(i)) | (1 << i),
                    (mask & prefix(i)) ^ (1 << i),
                    g / 3.0,
                ));
                first_order.push((0, mask & suffix(i), g / 3.0));
                first_order.push((0, (mask & suffix(i)) | (1 << i), g / 3.0));
            }
        }
    }

    let mut w_nonleak = vec![0.0f64; size];
    for &(r1, r2, w) in &first_order {
        w_nonleak[join(r1, r2)] += w;
    }
    if config.second_order {
        for (a, &(r1a, r2a, wa)) in first_order.iter().enumerate() {
            for &(r1b, r2b, wb) in first_order.iter().skip(a + 1) {
                w_nonleak[join(r1a ^ r1b, r2a ^ r2b)] += wa * wb;
            }
        }
    }
    // Background weight for unenumerated multi-fault combinations.
    let background = config.background_weight();
    if background > 0.0 {
        for slot in w_nonleak.iter_mut() {
            *slot += background;
        }
    }
    // "Nothing happened" prior keeps the all-zero window non-leakage.
    let used: f64 = w_nonleak.iter().sum();
    w_nonleak[0] += (1.0 - used).max(0.0);

    PatternTable::from_weights(total_bits, w_leak, w_nonleak, config.threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{build_single_round_table, eraser_flags};

    fn config() -> GladiatorConfig {
        GladiatorConfig::default()
    }

    /// ERASER applied independently to both rounds of the window.
    fn eraser_two_round_count(width: usize) -> usize {
        let all = 1u32 << width;
        let mut count = 0;
        for r1 in 0..all {
            for r2 in 0..all {
                if eraser_flags(width, r1) && eraser_flags(width, r2) {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn eraser_two_round_surface_count_is_121() {
        // Paper, Section 5.2: ERASER flags 121 of 256 two-round patterns.
        assert_eq!(eraser_two_round_count(4), 121);
    }

    #[test]
    fn surface_two_round_table_flags_fewer_than_eraser() {
        let table = build_two_round_table(4, &config());
        let flagged = table.flagged_count();
        assert!(
            flagged < 121,
            "GLADIATOR-D must flag fewer two-round patterns than ERASER (got {flagged})"
        );
        assert!(flagged >= 30, "GLADIATOR-D should still flag a substantial set (got {flagged})");
    }

    #[test]
    fn color_code_two_round_table_flags_a_small_rare_pattern_set() {
        // Paper: 11/64 for GLADIATOR-D vs 16/64 for ERASER on 3-bit sites. Our
        // enumeration lands at a comparable size (the exact count depends on the set of
        // second-order events modelled; EXPERIMENTS.md records the difference). What
        // matters operationally is that the flagged patterns are the *rare*
        // random-looking ones, not the common deterministic fault signatures ERASER
        // reacts to.
        let table = build_two_round_table(3, &config());
        assert_eq!(eraser_two_round_count(3), 16);
        assert!(table.flagged_count() >= 8);
        assert!(table.flagged_count() <= 20);
        // Deterministic data-error and measurement-echo signatures stay unflagged.
        // (`| 0b000` spells out the empty round-1 pattern half on purpose.)
        #[allow(clippy::identity_op)]
        let burst_then_silence = (0b111 << 3) | 0b000;
        assert!(!table.is_flagged(burst_then_silence));
        assert!(!table.is_flagged((0b001 << 3) | 0b001));
    }

    #[test]
    fn persistent_data_error_signature_is_not_flagged() {
        // suffix in round 1, complementary prefix in round 2 (paper's "0011 -> 1111"
        // temporal argument expressed on detectors).
        let table = build_two_round_table(4, &config());
        let r1 = 0b1100u32;
        let r2 = 0b0011u32;
        assert!(!table.is_flagged((r2 << 4) | r1));
    }

    #[test]
    fn random_flip_signature_is_flagged() {
        let table = build_two_round_table(4, &config());
        // Round 1 shows only the last site flipped (compatible with a leak landing
        // mid-round), round 2 keeps flipping random sites: leakage-dominated.
        let r1 = 0b1000u32;
        let r2 = 0b0110u32;
        assert!(table.is_flagged((r2 << 4) | r1));
    }

    #[test]
    fn measurement_error_echo_is_not_flagged() {
        let table = build_two_round_table(4, &config());
        // same single bit in both rounds = classic measurement-error echo
        let r1 = 0b0010u32;
        let r2 = 0b0010u32;
        assert!(!table.is_flagged((r2 << 4) | r1));
    }

    #[test]
    fn deferring_helps_sparse_sites_more_than_single_round() {
        // For 2-bit sites the single-round table cannot flag anything, but the
        // two-round table can.
        let single = build_single_round_table(2, &config());
        let double = build_two_round_table(2, &config());
        assert_eq!(single.flagged_count(), 0);
        assert!(double.flagged_count() > 0);
    }

    #[test]
    fn zero_window_is_never_flagged() {
        for width in 1..=6 {
            let table = build_two_round_table(width, &config());
            assert!(!table.is_flagged(0), "width {width}");
        }
    }
}
