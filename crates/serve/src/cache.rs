//! LRU-bounded in-memory cache of corpus cells and their evaluation
//! artifacts.
//!
//! The daemon's whole value proposition is that repeated queries against the
//! same cell skip process startup, corpus open **and** artifact construction.
//! A [`CachedCell`] therefore bundles everything one cell's evaluations need:
//! the loaded trace ([`LoadedCell`]), the calibrated [`PolicyFactory`] (every
//! policy built from it shares the offline GLADIATOR model, pattern extractor
//! and coloring), and lazily built decoder backends — one slot per
//! [`DecoderKind`] plus the unlabeled legacy default (union-find). Cells are
//! keyed by the manifest's policy-free cell key and evicted
//! least-recently-used.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use leakage_speculation::{PolicyFactory, PolicyKind};
use qec_decoder::{DecoderBackend, DecoderKind};
use qec_experiments::engine::build_backend;
use qec_experiments::replay::{calibration_for, load_entry};
use qec_experiments::LoadedCell;
use qec_trace::{Corpus, CorpusEntry};

/// One corpus cell resident in memory with its shared evaluation artifacts.
#[derive(Debug)]
pub struct CachedCell {
    /// The corpus cell key this entry was loaded under.
    pub key: String,
    /// The loaded trace: header, shot-ordered shots, fingerprint-checked code.
    pub cell: LoadedCell,
    /// Factory calibrated for the cell's recorded noise model; shared across
    /// every evaluation of the cell.
    pub factory: Arc<PolicyFactory>,
    /// The policy that recorded the trace.
    pub recorded: PolicyKind,
    /// The unlabeled legacy slot (union-find) requests without a `decoder`
    /// field decode through.
    decoder: OnceLock<Arc<dyn DecoderBackend>>,
    /// One lazily filled slot per explicitly selectable [`DecoderKind`],
    /// index-aligned with [`DecoderKind::ALL`].
    backends: [OnceLock<Arc<dyn DecoderBackend>>; DecoderKind::ALL.len()],
}

impl CachedCell {
    /// The cell's legacy default decoder (union-find), built on first use
    /// (decoding is optional per request, and the matching-graph build is not
    /// free) and shared by every later decode of the cell.
    ///
    /// # Panics
    /// Panics when the cell's code is not matchable — the pre-backend
    /// behavior of decoding such a cell, preserved for legacy requests.
    #[must_use]
    pub fn decoder(&self) -> Arc<dyn DecoderBackend> {
        Arc::clone(self.decoder.get_or_init(|| {
            build_backend(None, &self.cell.code, self.cell.header.rounds)
                .expect("the legacy union-find build does not validate")
        }))
    }

    /// The cell's decoder backend for `kind` — the legacy default slot when
    /// `None` — built on first use and shared by every later decode of the
    /// cell under that selection.
    ///
    /// # Errors
    /// Returns the backend's validation message when `kind` cannot serve this
    /// cell's code/distance (e.g. the lookup table against d>3); the caller
    /// maps it to a typed `bad-request`.
    pub fn backend(&self, kind: Option<DecoderKind>) -> Result<Arc<dyn DecoderBackend>, String> {
        let Some(kind) = kind else { return Ok(self.decoder()) };
        let slot = &self.backends[DecoderKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("DecoderKind::ALL holds every kind")];
        if let Some(backend) = slot.get() {
            return Ok(Arc::clone(backend));
        }
        // Validate *before* filling the slot: a failed build must stay
        // reportable on every retry, and OnceLock has no fallible init.
        let backend = build_backend(Some(kind), &self.cell.code, self.cell.header.rounds)
            .map_err(|e| format!("{}: {e}", self.key))?;
        Ok(Arc::clone(slot.get_or_init(|| backend)))
    }
}

/// Cache occupancy and traffic counters (all totals since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the cell resident.
    pub hits: u64,
    /// Lookups that loaded the cell from disk.
    pub misses: u64,
    /// Cells evicted to make room.
    pub evictions: u64,
    /// Cells currently resident.
    pub cached_cells: usize,
    /// Maximum resident cells.
    pub capacity: usize,
}

/// Most-recently-used-last queue of resident cells.
struct Inner {
    /// `(key, cell)`; front = least recently used.
    entries: VecDeque<(String, Arc<CachedCell>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The LRU-bounded cell cache. Loads are serialized under the cache lock, so
/// concurrent requests for the same cold cell load it exactly once (and the
/// hit/miss/eviction history is a deterministic function of the lookup
/// sequence, never of thread timing).
pub struct CellCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for CellCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("CellCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl CellCache {
    /// Creates a cache holding at most `capacity` cells (at least one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        CellCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { entries: VecDeque::new(), hits: 0, misses: 0, evictions: 0 }),
        }
    }

    /// Creates an **empty** cache whose traffic counters start from
    /// `baseline` instead of zero. A hot corpus reload swaps in a fresh cache
    /// (the old snapshot's cells describe the old manifest), but the daemon's
    /// `stats` counters are documented as totals-since-start — carrying the
    /// old cache's counters forward keeps them monotone across swaps.
    #[must_use]
    pub fn with_baseline(capacity: usize, baseline: CacheStats) -> Self {
        CellCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: VecDeque::new(),
                hits: baseline.hits,
                misses: baseline.misses,
                evictions: baseline.evictions,
            }),
        }
    }

    /// Returns the resident cell for `entry`, loading (and possibly evicting)
    /// on a miss. The boolean is `true` on a hit — the request paid no corpus
    /// I/O.
    ///
    /// # Errors
    /// Returns a message when the shard fails to load or verify, or when the
    /// recorded policy label is unknown to this build.
    pub fn get_or_load(
        &self,
        corpus: &Corpus,
        entry: &CorpusEntry,
    ) -> Result<(Arc<CachedCell>, bool), String> {
        // Recover (rather than cascade) from a poisoned lock: the cache's
        // invariants are a consistent LRU queue plus monotone counters, both
        // upheld at every await-free step, so the state a panicking thread
        // left behind is safe to keep serving.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(position) = inner.entries.iter().position(|(key, _)| *key == entry.key) {
            let resident = inner.entries.remove(position).expect("position is in range");
            let cell = Arc::clone(&resident.1);
            inner.entries.push_back(resident);
            inner.hits += 1;
            return Ok((cell, true));
        }
        let cell = load_entry(corpus, entry)?;
        let recorded = PolicyKind::from_label(&cell.header.policy).ok_or_else(|| {
            format!("{}: unknown recorded policy `{}`", entry.key, cell.header.policy)
        })?;
        let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
        let cached = Arc::new(CachedCell {
            key: entry.key.clone(),
            cell,
            factory,
            recorded,
            decoder: OnceLock::new(),
            backends: std::array::from_fn(|_| OnceLock::new()),
        });
        inner.misses += 1;
        while inner.entries.len() >= self.capacity {
            inner.entries.pop_front();
            inner.evictions += 1;
        }
        inner.entries.push_back((entry.key.clone(), Arc::clone(&cached)));
        Ok((cached, false))
    }

    /// Current occupancy and traffic counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            cached_cells: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakage_speculation::PolicyKind;
    use qec_experiments::replay::record_into_corpus;
    use qec_experiments::scenario::{CodeFamily, Scenario};

    fn tiny_corpus(name: &str, distances: &[usize]) -> Corpus {
        let dir = std::env::temp_dir().join(format!("serve-cache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut corpus = Corpus::open(&dir).unwrap();
        for &distance in distances {
            let scenario = Scenario {
                code: CodeFamily::Surface,
                distance,
                rounds: 3,
                p: 1e-3,
                leakage_ratio: 0.1,
                policy: PolicyKind::EraserM,
                shots: 2,
                seed: 5,
                decode: false,
                decoder: None,
            };
            record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "cache test").unwrap();
        }
        corpus.save().unwrap();
        corpus
    }

    #[test]
    fn hits_misses_and_lru_eviction_are_counted() {
        let corpus = tiny_corpus("lru", &[3, 5]);
        let entries: Vec<CorpusEntry> = corpus.entries().to_vec();
        let cache = CellCache::new(1);
        let (first, hit) = cache.get_or_load(&corpus, &entries[0]).unwrap();
        assert!(!hit);
        let (again, hit) = cache.get_or_load(&corpus, &entries[0]).unwrap();
        assert!(hit, "second lookup of the same cell must be a hit");
        assert!(Arc::ptr_eq(&first, &again), "a hit returns the resident cell");
        // Capacity 1: loading the second cell evicts the first.
        let (_, hit) = cache.get_or_load(&corpus, &entries[1]).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_load(&corpus, &entries[0]).unwrap();
        assert!(!hit, "evicted cell must reload");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 2));
        assert_eq!(stats.cached_cells, 1);
        let _ = std::fs::remove_dir_all(corpus.dir());
    }

    #[test]
    fn evicted_cells_stay_usable_through_existing_handles() {
        let corpus = tiny_corpus("handles", &[3, 5]);
        let entries: Vec<CorpusEntry> = corpus.entries().to_vec();
        let cache = CellCache::new(1);
        let (first, _) = cache.get_or_load(&corpus, &entries[0]).unwrap();
        let (_second, _) = cache.get_or_load(&corpus, &entries[1]).unwrap();
        // `first` was evicted but the Arc keeps its shots alive.
        assert_eq!(first.cell.shots.len(), 2);
        assert_eq!(first.recorded, PolicyKind::EraserM);
        let _ = std::fs::remove_dir_all(corpus.dir());
    }

    #[test]
    fn a_baseline_cache_starts_empty_but_keeps_the_old_counters() {
        let corpus = tiny_corpus("baseline", &[3]);
        let entry = corpus.entries()[0].clone();
        let old = CellCache::new(2);
        let _ = old.get_or_load(&corpus, &entry).unwrap();
        let _ = old.get_or_load(&corpus, &entry).unwrap();
        let carried = CellCache::with_baseline(2, old.stats());
        let stats = carried.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "counters carry across the swap");
        assert_eq!(stats.cached_cells, 0, "no cells carry across the swap");
        let (_, hit) = carried.get_or_load(&corpus, &entry).unwrap();
        assert!(!hit, "the new cache reloads from the new corpus");
        assert_eq!(carried.stats().misses, 2);
        let _ = std::fs::remove_dir_all(corpus.dir());
    }

    #[test]
    fn decoder_is_built_once_and_shared() {
        let corpus = tiny_corpus("decoder", &[3]);
        let entry = corpus.entries()[0].clone();
        let cache = CellCache::new(2);
        let (cell, _) = cache.get_or_load(&corpus, &entry).unwrap();
        let a = cell.decoder();
        let b = cell.decoder();
        assert!(Arc::ptr_eq(&a, &b));
        let _ = std::fs::remove_dir_all(corpus.dir());
    }

    #[test]
    fn backend_slots_are_per_kind_shared_and_validated() {
        let corpus = tiny_corpus("backend", &[3, 5]);
        let entries: Vec<CorpusEntry> = corpus.entries().to_vec();
        let cache = CellCache::new(2);
        let (d3, _) = cache.get_or_load(&corpus, &entries[0]).unwrap();
        // The unlabeled slot and the explicit `uf` slot are distinct builds...
        let legacy = d3.backend(None).unwrap();
        assert!(Arc::ptr_eq(&legacy, &d3.backend(None).unwrap()));
        let uf = d3.backend(Some(DecoderKind::UnionFind)).unwrap();
        assert_eq!(uf.label(), "uf");
        // ...while repeated selections of one kind share one backend.
        let lookup = d3.backend(Some(DecoderKind::Lookup)).unwrap();
        assert_eq!(lookup.label(), "lookup");
        assert!(Arc::ptr_eq(&lookup, &d3.backend(Some(DecoderKind::Lookup)).unwrap()));
        // A backend that cannot serve the cell is a typed error naming the
        // cell, and stays an error on retry (the slot never fills).
        let (d5, _) = cache.get_or_load(&corpus, &entries[1]).unwrap();
        for _ in 0..2 {
            let err = d5.backend(Some(DecoderKind::Lookup)).unwrap_err();
            assert!(err.contains(&d5.key), "error names the cell: {err}");
            assert!(err.contains("distance 3"), "error is actionable: {err}");
        }
        let _ = std::fs::remove_dir_all(corpus.dir());
    }
}
