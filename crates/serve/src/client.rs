//! A minimal blocking client for the `qec-serve` protocol.
//!
//! One TCP connection, one request line out, one response line back — the
//! transport behind `repro query` and the daemon's end-to-end tests. The
//! client checks the response envelope's protocol version and hands back the
//! payload (or the raw line, for byte-comparison tooling).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    parse_response, request_line, BatchItem, EvalResult, EvalSpec, Request, RequestKind, Response,
    ResponseKind, WireError, PROTOCOL_VERSION,
};

/// Connection deadlines. The zero-value default (`None` everywhere) blocks
/// forever, exactly as [`Client::connect`] always has — tests and local
/// tooling that own both ends keep that behavior; anything talking to a
/// daemon it does not control (`repro query`, the `qec-cluster` router)
/// should set both, so a hung or partitioned peer yields a typed error
/// instead of a wedged process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each blocking read **and** each blocking write on the
    /// established connection (applied as both `SO_RCVTIMEO` and
    /// `SO_SNDTIMEO`). An expired deadline surfaces as an I/O error from
    /// [`Client::send_raw`]; the connection is unusable afterwards (a late
    /// response line would desynchronize the request/response pairing), so
    /// callers reconnect.
    pub io_timeout: Option<Duration>,
}

impl ClientConfig {
    /// Both deadlines set to `timeout`.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        ClientConfig { connect_timeout: Some(timeout), io_timeout: Some(timeout) }
    }
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon with no deadlines (blocks indefinitely on
    /// an unresponsive peer). Shorthand for [`Client::connect_with`] and the
    /// default [`ClientConfig`].
    ///
    /// # Errors
    /// Returns a message when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, String> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a running daemon under the deadlines in `config`.
    ///
    /// With a `connect_timeout`, `addr` is resolved first (DNS resolution has
    /// no portable deadline) and each resolved address is tried in turn under
    /// the deadline; without one, the OS default connect behavior applies.
    ///
    /// # Errors
    /// Returns a message when resolution fails, no resolved address accepts
    /// the connection within the deadline, or socket setup fails.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, String> {
        let writer = match config.connect_timeout {
            None => TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?,
            Some(timeout) => {
                let addrs: Vec<_> =
                    addr.to_socket_addrs().map_err(|e| format!("connect: {e}"))?.collect();
                let mut last_err = "connect: address resolved to nothing".to_string();
                let mut connected = None;
                for resolved in addrs {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(stream) => {
                            connected = Some(stream);
                            break;
                        }
                        Err(e) => last_err = format!("connect {resolved}: {e}"),
                    }
                }
                connected.ok_or(last_err)?
            }
        };
        // One-line requests must leave immediately, not sit in Nagle's buffer.
        let _ = writer.set_nodelay(true);
        writer.set_read_timeout(config.io_timeout).map_err(|e| format!("connect: {e}"))?;
        writer.set_write_timeout(config.io_timeout).map_err(|e| format!("connect: {e}"))?;
        let read_half = writer.try_clone().map_err(|e| format!("connect: {e}"))?;
        Ok(Client { reader: BufReader::new(read_half), writer })
    }

    /// Sends one raw line (newline appended) and returns the raw response
    /// line. This is the byte-level escape hatch: `repro query` uses it so
    /// stdout carries the server's bytes verbatim, and tests use it to probe
    /// malformed-input handling.
    ///
    /// # Errors
    /// Returns a message on I/O failure or a closed connection.
    pub fn send_raw(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        self.writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Ok(response.trim_end_matches(['\r', '\n']).to_string())
    }

    /// Sends a full request envelope and parses the response envelope,
    /// checking the protocol version.
    ///
    /// # Errors
    /// Returns a message on I/O failure, an unparsable response, or a
    /// protocol-version mismatch.
    pub fn send(&mut self, request: &Request) -> Result<Response, String> {
        let line = self.send_raw(&request_line(request))?;
        let response = parse_response(&line).map_err(|e| e.to_string())?;
        if response.v != PROTOCOL_VERSION {
            return Err(format!(
                "server speaks protocol v{}, this client v{PROTOCOL_VERSION}",
                response.v
            ));
        }
        Ok(response)
    }

    /// Convenience wrapper: sends `kind` with no correlation id and returns
    /// the response payload.
    ///
    /// # Errors
    /// As [`Client::send`].
    pub fn request(&mut self, kind: RequestKind) -> Result<ResponseKind, String> {
        Ok(self.send(&Request { id: None, request: kind })?.response)
    }

    /// Typed per-item batch evaluation: one `Result` per requested pairing,
    /// in request order — a failing pairing carries its own typed
    /// [`WireError`] (unknown error codes from newer servers parse as
    /// [`crate::ErrorCode::Other`], never as a parse failure) and leaves its
    /// siblings intact.
    ///
    /// The request is sent with `per_item: true`. A server predating the
    /// per-item protocol ignores the unknown field and answers the legacy
    /// all-or-nothing shape; this client folds that answer into the same
    /// return type (all `Ok`, or the whole call failing with the batch
    /// error's display form), so callers are compatible in both directions.
    ///
    /// # Errors
    /// Returns a message on transport failure, an unexpected response kind,
    /// or a whole-request refusal (e.g. an empty batch, or an `overloaded`
    /// shed — per the protocol, shed requests are refused as a whole and
    /// nothing is evaluated).
    pub fn batch_eval(
        &mut self,
        evals: Vec<EvalSpec>,
    ) -> Result<Vec<Result<EvalResult, WireError>>, String> {
        match self.request(RequestKind::BatchEval { evals, per_item: Some(true) })? {
            ResponseKind::BatchItems(items) => {
                Ok(items.into_iter().map(BatchItem::into_result).collect())
            }
            ResponseKind::Batch(results) => Ok(results.into_iter().map(Ok).collect()),
            ResponseKind::Error(error) => Err(format!("batch-eval: {error}")),
            other => Err(format!("unexpected batch-eval answer: {other:?}")),
        }
    }
}
