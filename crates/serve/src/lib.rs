//! `qec-serve` — a long-running speculation-evaluation daemon over hot trace
//! corpora.
//!
//! PR 3/4 made policy comparison cheap *offline*: record a scenario cell once
//! (`qec-trace`), replay any candidate policy against it, closed-loop replay
//! bit-identical to live simulation. But every CLI invocation still pays
//! process startup, corpus open and artifact construction (offline GLADIATOR
//! model, pattern extractor, decoder graphs). This crate removes that tax for
//! the many-queries-one-corpus workflow — the "evaluate many candidate
//! policies against one recorded execution" loop that ERASER-style adaptive
//! suppression needs at scale:
//!
//! * [`server`] — a daemon over `std::net::TcpListener` speaking a
//!   newline-delimited JSON protocol, with a **bounded** connection model: an
//!   acceptor thread feeding a fixed pool of connection workers (hard
//!   connection limit), evaluation work fanned out on a persistent
//!   `rayon::ThreadPool` behind a bounded admission queue (explicit
//!   `overloaded` backpressure instead of stalling), and a hot-swappable
//!   corpus snapshot (the daemon watches `manifest.json` and atomically
//!   swaps the cell index without dropping connections). It holds an
//!   LRU-bounded in-memory cache of corpus cells ([`cache`]) with their
//!   shared evaluation artifacts (calibrated `PolicyFactory`, lazily built
//!   union-find decoder) and answers `cell × policy → metrics` queries
//!   without reloading anything, streaming shard bytes shot-at-a-time on a
//!   cache miss.
//! * [`protocol`] — the wire types: `ping`/`version`/`stats`,
//!   `list-cells`/`stat-cell`/`verify-cell`, `eval`/`batch-eval` (all-or-
//!   nothing or per-item result-or-error entries), `shutdown`, plus typed
//!   error codes. The format is frozen by `docs/SERVE_PROTOCOL.md`, in the
//!   same spirit as `docs/TRACE_FORMAT.md` for `.qtr`.
//! * [`client`] — the blocking client behind `repro query` and the e2e
//!   tests, including the typed per-item [`Client::batch_eval`] API.
//!
//! Served evaluations go through the *same* entry points as `repro replay`
//! (`qec_experiments::replay::{evaluate_cell, evaluation_row}`), so a served
//! `eval` row is byte-identical to the CLI's replay-report row for the same
//! `corpus × cell × policy × mode × decode` — the e2e tests in
//! `crates/cluster/tests/server.rs` pin exactly that, and the CI `serve-smoke`
//! job additionally pins responses across `RAYON_NUM_THREADS=1` vs `4`.
//!
//! The `repro` binary (moved on to `qec-cluster` so the CLI can host the
//! `corpus shard`/`route` subcommands without a dependency cycle) remains the
//! workspace's single command-line entry point; this crate keeps the daemon
//! library the router and the CLI both build on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod server;

pub use cache::{CacheStats, CachedCell, CellCache};
pub use client::Client;
pub use protocol::{
    parse_request, parse_response, request_line, response_line, BatchItem, CellStat, ErrorCode,
    EvalResult, EvalSpec, Request, RequestKind, Response, ResponseKind, ServerStats, VerifiedCell,
    VersionInfo, WireError, PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server};
