//! The `qec-serve` wire protocol: newline-delimited JSON requests and
//! responses.
//!
//! The full wire format — framing, every request/response type, error codes
//! and the versioning rules — is specified in `docs/SERVE_PROTOCOL.md`; this
//! module is its executable counterpart, and the serde round-trip tests in
//! `crates/serve/tests/protocol.rs` pin each documented shape.
//!
//! Shape conventions (mirroring the workspace's derive conventions, but with
//! stable kebab-case wire tags that are **frozen** by the protocol doc):
//!
//! * requests and responses are one JSON object per line (LF-terminated);
//! * payload-free kinds are bare strings (`"ping"`), payload-carrying kinds
//!   are single-entry objects (`{"eval": {...}}`);
//! * every response envelope carries the protocol version in `v`, the same
//!   schema-versioned-provenance discipline as sweep/replay reports.

use serde::{de, Deserialize, Serialize, Value};

use qec_experiments::ReplayCellResult;
use qec_trace::CorpusEntry;

/// Version of the wire protocol. Additive changes (new request kinds, new
/// optional fields) do **not** bump it; anything that changes the meaning or
/// shape of an existing line does. See `docs/SERVE_PROTOCOL.md` for the exact
/// rules.
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------------

/// One request line: an optional client-chosen correlation id plus the request
/// itself. The server echoes `id` verbatim in the response envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response (`null`/absent is
    /// fine: responses arrive in request order on each connection).
    pub id: Option<u64>,
    /// The request itself.
    pub request: RequestKind,
}

/// Everything the daemon can be asked to do.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestKind {
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Server, schema and protocol versions plus git provenance.
    Version,
    /// Request/eval counters and cache occupancy (the cache-hit counters live
    /// here).
    Stats,
    /// The corpus manifest: every recorded cell.
    ListCells,
    /// Manifest entry + shard provenance for one cell, at `O(header)` cost
    /// (the shard's shot blocks are not read).
    StatCell {
        /// The corpus cell key.
        key: String,
    },
    /// Full integrity check of one cell's shard: every block re-read from
    /// disk, CRCs and code identity verified.
    VerifyCell {
        /// The corpus cell key.
        key: String,
    },
    /// Evaluate one `cell × policy` pairing.
    Eval(EvalSpec),
    /// Evaluate many pairings on the server's persistent worker pool; results
    /// come back in request order.
    BatchEval {
        /// The pairings to evaluate, in the order results are wanted.
        evals: Vec<EvalSpec>,
        /// `Some(true)` requests the per-item answer shape (`batch-items`):
        /// one result-**or**-typed-error entry per pairing, so one bad
        /// pairing no longer poisons the batch. Absent or `false` keeps the
        /// original all-or-nothing `batch` answer. Additive optional field —
        /// servers predating it ignore it and answer all-or-nothing, which
        /// clients must tolerate.
        per_item: Option<bool>,
    },
    /// Finish open connections' in-flight requests and exit the accept loop.
    Shutdown,
}

/// One `cell × policy` evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// The corpus cell key (as listed by `list-cells`).
    pub key: String,
    /// Policy label to evaluate (as printed by `repro list`).
    pub policy: String,
    /// Replay mode label: `"open-loop"` (default when absent) or
    /// `"closed-loop"`.
    pub mode: Option<String>,
    /// Decode the replayed runs and report the LER (default `false`). As in
    /// `repro replay`, open-loop decoding only applies to recording-policy
    /// pairings; closed-loop decodes every pairing.
    pub decode: Option<bool>,
    /// Decoder backend label (`"uf"` or `"lookup"`; default when absent:
    /// union-find, the legacy behavior — responses to decoder-free requests
    /// are byte-identical to servers predating this field). Unknown labels
    /// and backends that cannot serve the cell's code/distance are answered
    /// with typed `bad-request` errors, never `internal` and never a closed
    /// connection. Additive optional field — no protocol version bump.
    pub decoder: Option<String>,
}

// Hand-written (not derived) so absent optional fields are *omitted* rather
// than serialized as `null`: an `EvalSpec` without a `decoder` (or without
// `mode`/`decode`) renders exactly like one from a client predating the
// field, so old servers accept new clients' decoder-free requests unchanged.
impl Serialize for EvalSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("key".to_string(), Value::Str(self.key.clone())),
            ("policy".to_string(), Value::Str(self.policy.clone())),
        ];
        if let Some(mode) = &self.mode {
            fields.push(("mode".to_string(), Value::Str(mode.clone())));
        }
        if let Some(decode) = self.decode {
            fields.push(("decode".to_string(), Value::Bool(decode)));
        }
        if let Some(decoder) = &self.decoder {
            fields.push(("decoder".to_string(), Value::Str(decoder.clone())));
        }
        Value::Object(fields)
    }
}

impl Deserialize for EvalSpec {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let fields = de::as_object(value, "EvalSpec")?;
        Ok(EvalSpec {
            key: de::field(fields, "EvalSpec", "key")?,
            policy: de::field(fields, "EvalSpec", "policy")?,
            mode: de::field(fields, "EvalSpec", "mode")?,
            decode: de::field(fields, "EvalSpec", "decode")?,
            decoder: de::field(fields, "EvalSpec", "decoder")?,
        })
    }
}

// ---------------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------------

/// One response line: the echoed request id, the protocol version, and the
/// response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request's `id`, echoed verbatim.
    pub id: Option<u64>,
    /// [`PROTOCOL_VERSION`] of the answering server.
    pub v: u32,
    /// The response payload.
    pub response: ResponseKind,
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseKind {
    /// Answer to `ping`.
    Pong,
    /// Answer to `version`.
    Version(VersionInfo),
    /// Answer to `stats`.
    Stats(ServerStats),
    /// Answer to `list-cells`: the manifest entries, in manifest order.
    Cells(Vec<CorpusEntry>),
    /// Answer to `stat-cell`.
    CellStat(CellStat),
    /// Answer to `verify-cell` (success; failures are `error` responses with
    /// code `corrupt-corpus`).
    Verified(VerifiedCell),
    /// Answer to `eval`.
    Eval(EvalResult),
    /// Answer to `batch-eval`: one result per requested pairing, in request
    /// order.
    Batch(Vec<EvalResult>),
    /// Answer to `batch-eval` with `per_item: true`: one entry per requested
    /// pairing, in request order, each either a result or a typed error —
    /// sibling pairings are unaffected by a failing one. Additive response
    /// kind (only ever sent when explicitly requested), so it does not bump
    /// [`PROTOCOL_VERSION`].
    BatchItems(Vec<BatchItem>),
    /// Answer to `shutdown`; the server exits after this line is written.
    ShuttingDown,
    /// Any failure: a stable machine-readable code plus a human-readable
    /// message. Malformed input never closes the connection or crashes the
    /// server — it produces this.
    Error(WireError),
}

/// Server, schema and protocol versions plus git provenance — the per-session
/// form of the provenance block every sweep/replay report carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VersionInfo {
    /// Server name and crate version, e.g. `qec-serve 0.1.0`.
    pub server: String,
    /// `git describe --always --dirty` of the serving build, or `unknown`.
    pub git_describe: String,
    /// [`PROTOCOL_VERSION`].
    pub protocol: u32,
    /// `.qtr` trace schema the server reads.
    pub trace_schema: u32,
    /// Corpus manifest schema the server reads.
    pub manifest_schema: u32,
    /// Replay-report schema of `eval` result rows.
    pub replay_schema: u32,
}

/// Counters since server start. All counters are totals, never reset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests handled (all kinds, malformed lines included).
    pub requests: u64,
    /// `cell × policy` evaluations successfully computed (batch members
    /// counted individually).
    pub evals: u64,
    /// `batch-eval` requests answered with a `batch` response.
    pub batch_evals: u64,
    /// Evaluations that found their cell already resident (no corpus I/O).
    pub cache_hits: u64,
    /// Evaluations that had to load their cell's shard from disk.
    pub cache_misses: u64,
    /// Cells evicted to make room (least recently used first).
    pub cache_evictions: u64,
    /// Cells currently resident.
    pub cached_cells: usize,
    /// Maximum resident cells.
    pub cache_capacity: usize,
    /// Cells in the corpus manifest.
    pub corpus_cells: usize,
    /// Forced prefix passes run by the shared-checkpoint batch path (one per
    /// divergent shot, shared by every same-cell candidate in the batch).
    /// Added after protocol v1 froze — additive response fields do not bump
    /// [`PROTOCOL_VERSION`]; clients ignore unknown fields.
    pub shared_passes: u64,
    /// Candidate policy suffixes resumed from shared checkpoints (additive,
    /// like [`ServerStats::shared_passes`]).
    pub suffixes_served: u64,
    /// Most simulator checkpoints held at once by any shared evaluation
    /// (additive, like [`ServerStats::shared_passes`]).
    pub peak_checkpoints: u64,
    /// Connections currently being served (a gauge, not a total; additive
    /// field like [`ServerStats::shared_passes`], as are all fields below).
    pub active_connections: u64,
    /// The daemon's hard connection limit (`--max-connections`).
    pub max_connections: usize,
    /// Most evaluation units (batch members count individually) in flight at
    /// once since start — the queue-depth high-water mark.
    pub queue_depth_hwm: u64,
    /// The daemon's evaluation-queue capacity (`--queue-limit`).
    pub queue_limit: usize,
    /// Evaluation requests refused with an `overloaded` error because the
    /// queue was full (the connection survives; nothing was evaluated).
    pub shed_requests: u64,
    /// Connections refused with an `overloaded` greeting because the
    /// connection limit was reached.
    pub shed_connections: u64,
    /// Times the daemon swapped in a changed `manifest.json` (hot corpus
    /// reloads). Cache counters carry across a swap.
    pub corpus_reloads: u64,
    /// Requests this process answered by routing to replica daemons. Always
    /// `0` on a plain daemon; the `qec-cluster` router counts every request it
    /// resolves against its shard map here (additive field, as all router
    /// counters below — clients ignore unknown fields, so no version bump).
    pub routed_requests: u64,
    /// Most replicas any single routed request fanned out to at once — `1`
    /// for solo requests, up to the replica count for a `batch-eval` spanning
    /// every shard. Always `0` on a plain daemon.
    pub fanout_hwm: u64,
    /// Replica calls that failed (connect/transport failure or timeout) and
    /// were answered with typed `unavailable` errors after bounded retry.
    /// Always `0` on a plain daemon.
    pub replica_errors: u64,
    /// Replicas the router currently considers reachable (a gauge: replica
    /// count minus those whose last call failed). On a plain daemon this is
    /// `0` — a daemon is not its own replica.
    pub replicas_up: u64,
    /// Allocation rounds completed by an adaptive sweep checkpointed **in the
    /// served corpus directory** (`state.qad` colocated with `manifest.json`;
    /// see `docs/ADAPTIVE.md`). `0` when no checkpoint is present. Read fresh
    /// on every `stats` request, so a daemon serving a corpus that an
    /// adaptive sweep is growing reports live progress. The router sums the
    /// field across replicas (total rounds executed cluster-wide). Additive
    /// field, like [`ServerStats::shared_passes`].
    pub adaptive_rounds: u64,
    /// Total shots allocated across every cell of that checkpointed adaptive
    /// sweep (`0` without a checkpoint; summed across replicas by the
    /// router). Additive field, like [`ServerStats::shared_passes`].
    pub shots_allocated: u64,
}

/// Manifest entry plus shard-header provenance for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellStat {
    /// The manifest entry.
    pub entry: CorpusEntry,
    /// Size of the `.qtr` shard file in bytes.
    pub file_bytes: u64,
    /// Generator string recorded in the shard header.
    pub generator: String,
    /// Git provenance recorded in the shard header.
    pub git_describe: String,
}

/// Successful `verify-cell` summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedCell {
    /// The verified cell key.
    pub key: String,
    /// Shots decoded (CRC-checked) from the shard.
    pub shots: usize,
}

/// One evaluated `cell × policy` pairing. `result` is **the same row type,
/// built by the same code path** (`qec_experiments::replay::evaluation_row`)
/// as a `repro replay` report row, so served metrics are byte-identical to the
/// CLI's for the same pairing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Whether the cell was already resident in the server's cache (`true`
    /// means the request paid no corpus I/O).
    pub cached: bool,
    /// The evaluation row (identical to a replay-report row; `live_match` is
    /// always `null` — the daemon never re-simulates for verification).
    pub result: ReplayCellResult,
}

/// One entry of a `batch-items` answer: the pairing's result, or the typed
/// error that kept *this pairing alone* from being answered. The wire shape
/// mirrors the solo response kinds — `{"eval": {...}}` or `{"error": {...}}`
/// — so a per-item entry parses with the same vocabulary as a whole response.
// Entries are overwhelmingly `Eval` in practice, so boxing the large variant
// would buy nothing but an extra allocation per served row.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum BatchItem {
    /// The pairing evaluated successfully.
    Eval(EvalResult),
    /// The pairing failed; siblings are unaffected.
    Error(WireError),
}

impl BatchItem {
    /// The entry as a `Result`, borrowing.
    pub fn as_result(&self) -> Result<&EvalResult, &WireError> {
        match self {
            BatchItem::Eval(result) => Ok(result),
            BatchItem::Error(error) => Err(error),
        }
    }

    /// The entry as a `Result`, consuming.
    pub fn into_result(self) -> Result<EvalResult, WireError> {
        match self {
            BatchItem::Eval(result) => Ok(result),
            BatchItem::Error(error) => Err(error),
        }
    }
}

impl From<Result<EvalResult, WireError>> for BatchItem {
    fn from(outcome: Result<EvalResult, WireError>) -> Self {
        match outcome {
            Ok(result) => BatchItem::Eval(result),
            Err(error) => BatchItem::Error(error),
        }
    }
}

impl Serialize for BatchItem {
    fn to_value(&self) -> Value {
        match self {
            BatchItem::Eval(result) => tagged("eval", result.to_value()),
            BatchItem::Error(error) => tagged("error", error.to_value()),
        }
    }
}

impl Deserialize for BatchItem {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Object(entries) if entries.len() == 1 => {
                let (tag, payload) = &entries[0];
                let context = |e: de::Error| e.in_context(tag);
                match tag.as_str() {
                    "eval" => {
                        Ok(BatchItem::Eval(EvalResult::from_value(payload).map_err(context)?))
                    }
                    "error" => {
                        Ok(BatchItem::Error(WireError::from_value(payload).map_err(context)?))
                    }
                    other => Err(de::unknown_variant("batch item", other)),
                }
            }
            other => Err(de::expected("batch item (single-entry object)", other)),
        }
    }
}

/// Machine-readable failure categories. The code set may grow (an additive,
/// non-version-bumping change); existing codes never change meaning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON, not a valid request shape, or carried an
    /// invalid field value (e.g. an unknown replay mode).
    BadRequest,
    /// The request named a cell key the corpus manifest does not hold.
    UnknownCell,
    /// The request named a policy label this build does not know.
    UnknownPolicy,
    /// The cell's shard failed to load or verify (I/O error, CRC mismatch,
    /// manifest/shard disagreement, stale corpus).
    CorruptCorpus,
    /// Load was shed: the daemon's bounded evaluation queue (or connection
    /// limit) was full, and the request was refused **without** being
    /// evaluated. Retry later; the error never reflects anything wrong with
    /// the request itself. Added after protocol v1 froze — an additive code
    /// per the versioning rules, so no version bump.
    Overloaded,
    /// The cell's owning replica daemon could not be reached (connect or
    /// transport failure, or no answer within the router's per-replica
    /// timeout) after bounded retry. Only the `qec-cluster` router emits this;
    /// the request itself was valid and may succeed once the replica returns.
    /// Added after protocol v1 froze — an additive code, so no version bump.
    Unavailable,
    /// Anything else that failed server-side.
    Internal,
    /// A code this build does not know (from a newer server). Never sent by
    /// this server; it exists so clients honor the versioning rule that
    /// unknown error codes are opaque failures, not parse errors.
    Other(String),
}

impl ErrorCode {
    /// Every code this build can emit, in documentation order.
    pub const ALL: [ErrorCode; 7] = [
        ErrorCode::BadRequest,
        ErrorCode::UnknownCell,
        ErrorCode::UnknownPolicy,
        ErrorCode::CorruptCorpus,
        ErrorCode::Overloaded,
        ErrorCode::Unavailable,
        ErrorCode::Internal,
    ];

    /// The stable wire label of the code.
    #[must_use]
    pub fn label(&self) -> &str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownCell => "unknown-cell",
            ErrorCode::UnknownPolicy => "unknown-policy",
            ErrorCode::CorruptCorpus => "corrupt-corpus",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Unavailable => "unavailable",
            ErrorCode::Internal => "internal",
            ErrorCode::Other(label) => label,
        }
    }

    /// Parses a wire label into a **known** code; `None` for labels this
    /// build does not know (deserialization maps those to
    /// [`ErrorCode::Other`] instead, so future additive codes stay parsable).
    #[must_use]
    pub fn from_label(label: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.into_iter().find(|code| code.label() == label)
    }
}

impl Serialize for ErrorCode {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

impl Deserialize for ErrorCode {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(label) => {
                Ok(ErrorCode::from_label(label).unwrap_or_else(|| ErrorCode::Other(label.clone())))
            }
            other => Err(de::expected("error-code string", other)),
        }
    }
}

/// A typed failure: stable code plus human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail (free-form; never parse it).
    pub message: String,
}

impl WireError {
    /// Builds an error of `code` with `message`.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError { code, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.label(), self.message)
    }
}

// ---------------------------------------------------------------------------------
// Hand-written enum serde: the derive macro would use CamelCase variant names;
// the protocol freezes kebab-case tags instead, so the two kind enums (and
// nothing else) are implemented by hand. tests/protocol.rs pins every tag.
// ---------------------------------------------------------------------------------

/// `{tag: payload}` single-entry object.
fn tagged(tag: &str, payload: Value) -> Value {
    Value::Object(vec![(tag.to_string(), payload)])
}

/// `{"key": <key>}` payload for the by-key request kinds.
fn key_payload(key: &str) -> Value {
    Value::Object(vec![("key".to_string(), Value::Str(key.to_string()))])
}

impl Serialize for RequestKind {
    fn to_value(&self) -> Value {
        match self {
            RequestKind::Ping => Value::Str("ping".to_string()),
            RequestKind::Version => Value::Str("version".to_string()),
            RequestKind::Stats => Value::Str("stats".to_string()),
            RequestKind::ListCells => Value::Str("list-cells".to_string()),
            RequestKind::Shutdown => Value::Str("shutdown".to_string()),
            RequestKind::StatCell { key } => tagged("stat-cell", key_payload(key)),
            RequestKind::VerifyCell { key } => tagged("verify-cell", key_payload(key)),
            RequestKind::Eval(spec) => tagged("eval", spec.to_value()),
            RequestKind::BatchEval { evals, per_item } => {
                let mut fields = vec![("evals".to_string(), evals.to_value())];
                if let Some(per_item) = per_item {
                    fields.push(("per_item".to_string(), Value::Bool(*per_item)));
                }
                tagged("batch-eval", Value::Object(fields))
            }
        }
    }
}

impl Deserialize for RequestKind {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(tag) => match tag.as_str() {
                "ping" => Ok(RequestKind::Ping),
                "version" => Ok(RequestKind::Version),
                "stats" => Ok(RequestKind::Stats),
                "list-cells" => Ok(RequestKind::ListCells),
                "shutdown" => Ok(RequestKind::Shutdown),
                other => Err(de::unknown_variant("request", other)),
            },
            Value::Object(entries) if entries.len() == 1 => {
                let (tag, payload) = &entries[0];
                match tag.as_str() {
                    "stat-cell" => {
                        let fields = de::as_object(payload, "stat-cell")?;
                        Ok(RequestKind::StatCell { key: de::field(fields, "stat-cell", "key")? })
                    }
                    "verify-cell" => {
                        let fields = de::as_object(payload, "verify-cell")?;
                        Ok(RequestKind::VerifyCell {
                            key: de::field(fields, "verify-cell", "key")?,
                        })
                    }
                    "eval" => Ok(RequestKind::Eval(
                        EvalSpec::from_value(payload).map_err(|e| e.in_context("eval"))?,
                    )),
                    "batch-eval" => {
                        let fields = de::as_object(payload, "batch-eval")?;
                        Ok(RequestKind::BatchEval {
                            evals: de::field(fields, "batch-eval", "evals")?,
                            per_item: de::field(fields, "batch-eval", "per_item")?,
                        })
                    }
                    other => Err(de::unknown_variant("request", other)),
                }
            }
            other => Err(de::expected("request (string or single-entry object)", other)),
        }
    }
}

impl Serialize for ResponseKind {
    fn to_value(&self) -> Value {
        match self {
            ResponseKind::Pong => Value::Str("pong".to_string()),
            ResponseKind::ShuttingDown => Value::Str("shutting-down".to_string()),
            ResponseKind::Version(info) => tagged("version", info.to_value()),
            ResponseKind::Stats(stats) => tagged("stats", stats.to_value()),
            ResponseKind::Cells(cells) => tagged("cells", cells.to_value()),
            ResponseKind::CellStat(stat) => tagged("cell-stat", stat.to_value()),
            ResponseKind::Verified(verified) => tagged("verified", verified.to_value()),
            ResponseKind::Eval(result) => tagged("eval", result.to_value()),
            ResponseKind::Batch(results) => tagged("batch", results.to_value()),
            ResponseKind::BatchItems(items) => tagged("batch-items", items.to_value()),
            ResponseKind::Error(error) => tagged("error", error.to_value()),
        }
    }
}

impl Deserialize for ResponseKind {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Str(tag) => match tag.as_str() {
                "pong" => Ok(ResponseKind::Pong),
                "shutting-down" => Ok(ResponseKind::ShuttingDown),
                other => Err(de::unknown_variant("response", other)),
            },
            Value::Object(entries) if entries.len() == 1 => {
                let (tag, payload) = &entries[0];
                let context = |e: de::Error| e.in_context(tag);
                match tag.as_str() {
                    "version" => Ok(ResponseKind::Version(
                        VersionInfo::from_value(payload).map_err(context)?,
                    )),
                    "stats" => {
                        Ok(ResponseKind::Stats(ServerStats::from_value(payload).map_err(context)?))
                    }
                    "cells" => Ok(ResponseKind::Cells(
                        Vec::<CorpusEntry>::from_value(payload).map_err(context)?,
                    )),
                    "cell-stat" => {
                        Ok(ResponseKind::CellStat(CellStat::from_value(payload).map_err(context)?))
                    }
                    "verified" => Ok(ResponseKind::Verified(
                        VerifiedCell::from_value(payload).map_err(context)?,
                    )),
                    "eval" => {
                        Ok(ResponseKind::Eval(EvalResult::from_value(payload).map_err(context)?))
                    }
                    "batch" => Ok(ResponseKind::Batch(
                        Vec::<EvalResult>::from_value(payload).map_err(context)?,
                    )),
                    "batch-items" => Ok(ResponseKind::BatchItems(
                        Vec::<BatchItem>::from_value(payload).map_err(context)?,
                    )),
                    "error" => {
                        Ok(ResponseKind::Error(WireError::from_value(payload).map_err(context)?))
                    }
                    other => Err(de::unknown_variant("response", other)),
                }
            }
            other => Err(de::expected("response (string or single-entry object)", other)),
        }
    }
}

// ---------------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------------

/// Renders a request as one compact-JSON wire line (no trailing newline; the
/// transport adds the LF).
#[must_use]
pub fn request_line(request: &Request) -> String {
    serde_json::to_string(request).expect("requests are always serializable")
}

/// Renders a response as one compact-JSON wire line (no trailing newline).
#[must_use]
pub fn response_line(response: &Response) -> String {
    serde_json::to_string(response).expect("responses are always serializable")
}

/// Parses one wire line into a request. Any failure — bad JSON, wrong
/// envelope, unknown request tag — maps to a `bad-request` error the server
/// answers with instead of dropping the connection.
///
/// # Errors
/// Returns a [`WireError`] with code [`ErrorCode::BadRequest`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    serde_json::from_str(line)
        .map_err(|e| WireError::new(ErrorCode::BadRequest, format!("malformed request: {e}")))
}

/// Parses one wire line into a response (the client side of
/// [`parse_request`]).
///
/// # Errors
/// Returns a [`WireError`] with code [`ErrorCode::BadRequest`] describing the
/// first mismatch.
pub fn parse_response(line: &str) -> Result<Response, WireError> {
    serde_json::from_str(line)
        .map_err(|e| WireError::new(ErrorCode::BadRequest, format!("malformed response: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_free_requests_are_bare_strings() {
        for (kind, tag) in [
            (RequestKind::Ping, "\"ping\""),
            (RequestKind::Version, "\"version\""),
            (RequestKind::Stats, "\"stats\""),
            (RequestKind::ListCells, "\"list-cells\""),
            (RequestKind::Shutdown, "\"shutdown\""),
        ] {
            assert_eq!(serde_json::to_string(&kind).unwrap(), tag);
        }
    }

    #[test]
    fn eval_request_uses_the_documented_shape() {
        let request = Request {
            id: Some(7),
            request: RequestKind::Eval(EvalSpec {
                key: "surface d=3".to_string(),
                policy: "gladiator+m".to_string(),
                mode: Some("closed-loop".to_string()),
                decode: Some(true),
                decoder: None,
            }),
        };
        let line = request_line(&request);
        assert_eq!(
            line,
            r#"{"id":7,"request":{"eval":{"key":"surface d=3","policy":"gladiator+m","mode":"closed-loop","decode":true}}}"#
        );
        assert_eq!(parse_request(&line).unwrap(), request);
    }

    #[test]
    fn optional_eval_fields_may_be_omitted() {
        let parsed =
            parse_request(r#"{"id":null,"request":{"eval":{"key":"k","policy":"ideal"}}}"#)
                .unwrap();
        let RequestKind::Eval(spec) = parsed.request else { panic!("not an eval") };
        assert_eq!(spec.mode, None);
        assert_eq!(spec.decode, None);
        assert_eq!(spec.decoder, None);
    }

    #[test]
    fn decoder_field_is_additive_and_omitted_when_absent() {
        // A decoder-free spec renders without the field at all — bytes a
        // pre-decoder server accepts unchanged.
        let bare = EvalSpec {
            key: "k".to_string(),
            policy: "ideal".to_string(),
            mode: None,
            decode: None,
            decoder: None,
        };
        assert_eq!(serde_json::to_string(&bare).unwrap(), r#"{"key":"k","policy":"ideal"}"#);
        // With a selection the field appears last and round-trips.
        let selected = EvalSpec { decoder: Some("lookup".to_string()), ..bare };
        let json = serde_json::to_string(&selected).unwrap();
        assert_eq!(json, r#"{"key":"k","policy":"ideal","decoder":"lookup"}"#);
        assert_eq!(serde_json::from_str::<EvalSpec>(&json).unwrap(), selected);
    }

    #[test]
    fn malformed_lines_become_bad_request_errors() {
        for bad in ["", "{", "42", r#"{"request":"frobnicate","id":null}"#, r#"{"id":1}"#] {
            let err = parse_request(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad:?}");
        }
    }

    #[test]
    fn error_codes_round_trip_their_labels() {
        for code in ErrorCode::ALL {
            assert_eq!(ErrorCode::from_label(code.label()), Some(code.clone()));
            let json = serde_json::to_string(&code).unwrap();
            assert_eq!(serde_json::from_str::<ErrorCode>(&json).unwrap(), code);
        }
        assert_eq!(ErrorCode::from_label("no-such-code"), None);
    }
}
