//! The daemon: a `TcpListener` accept loop, per-connection request handling,
//! and the dispatch from protocol requests to corpus-backed evaluations.
//!
//! Request handling is deliberately boring: one thread per connection (scoped,
//! so shutdown joins them all), requests answered strictly in arrival order
//! per connection, every failure mapped to a typed [`WireError`] response —
//! malformed input never crashes the server or closes the connection. Batch
//! evaluations fan out on a persistent [`rayon::ThreadPool`] that is reused
//! across requests, with results returned in request order regardless of
//! worker count.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use leakage_speculation::PolicyKind;
use qec_decoder::UnionFindDecoder;
use qec_experiments::replay::{
    evaluate_cell, evaluate_cell_set, evaluation_row, load_entry, CheckpointStats,
    REPLAY_SCHEMA_VERSION,
};
use qec_experiments::sweep::git_describe;
use qec_experiments::ReplayMode;
use qec_trace::{read_trace_header, Corpus, CorpusEntry};

use crate::cache::{CachedCell, CellCache};
use crate::protocol::{
    parse_request, response_line, CellStat, ErrorCode, EvalResult, EvalSpec, RequestKind, Response,
    ResponseKind, ServerStats, VerifiedCell, VersionInfo, WireError, PROTOCOL_VERSION,
};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, `host:port`. Port `0` picks an ephemeral port —
    /// read it back from [`Server::local_addr`].
    pub addr: String,
    /// Maximum corpus cells resident in the cache.
    pub cache_cells: usize,
    /// Worker threads of the persistent batch-evaluation pool. `0` means
    /// [`rayon::current_num_threads`] (so `RAYON_NUM_THREADS` governs it).
    pub pool_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { addr: "127.0.0.1:0".to_string(), cache_cells: 8, pool_threads: 0 }
    }
}

/// Shared server state: the corpus manifest, the cell cache, the persistent
/// pool and the traffic counters behind the `stats` response.
struct ServerState {
    corpus: Corpus,
    cache: CellCache,
    pool: rayon::ThreadPool,
    addr: SocketAddr,
    requests: AtomicU64,
    evals: AtomicU64,
    batch_evals: AtomicU64,
    /// Shot-level forced prefix re-executions performed by the
    /// shared-checkpoint batch path (one per divergent shot, however many
    /// same-cell candidates the batch carried).
    shared_passes: AtomicU64,
    /// Candidate suffixes resumed from shared checkpoints.
    suffixes_served: AtomicU64,
    /// Most simulator checkpoints held at once by any shared evaluation.
    peak_checkpoints: AtomicU64,
    shutdown: AtomicBool,
    /// Read-half clones of open connections, so shutdown can unblock handler
    /// threads parked in `read_line` (an idle client must not keep the daemon
    /// alive forever).
    connections: Mutex<Vec<(u64, TcpStream)>>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a `shutdown`
/// request arrives.
pub struct Server {
    listener: TcpListener,
    state: ServerState,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .field("cells", &self.state.corpus.entries().len())
            .finish()
    }
}

impl Server {
    /// Opens the corpus at `corpus_dir` (which must exist and be non-empty —
    /// a daemon over nothing answers nothing) and binds the listen socket.
    ///
    /// # Errors
    /// Returns a message when the corpus is missing/empty/corrupt or the
    /// address cannot be bound.
    pub fn bind(corpus_dir: &Path, config: &ServeConfig) -> Result<Server, String> {
        let corpus = Corpus::open_existing(corpus_dir).map_err(|e| e.to_string())?;
        if corpus.entries().is_empty() {
            return Err(format!(
                "corpus {} is empty — nothing to serve (record cells first)",
                corpus_dir.display()
            ));
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let pool = if config.pool_threads == 0 {
            rayon::ThreadPool::with_default_threads()
        } else {
            rayon::ThreadPool::new(config.pool_threads)
        };
        Ok(Server {
            listener,
            state: ServerState {
                corpus,
                cache: CellCache::new(config.cache_cells),
                pool,
                addr,
                requests: AtomicU64::new(0),
                evals: AtomicU64::new(0),
                batch_evals: AtomicU64::new(0),
                shared_passes: AtomicU64::new(0),
                suffixes_served: AtomicU64::new(0),
                peak_checkpoints: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                connections: Mutex::new(Vec::new()),
            },
        })
    }

    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Number of cells in the served corpus manifest.
    #[must_use]
    pub fn corpus_cells(&self) -> usize {
        self.state.corpus.entries().len()
    }

    /// Accepts and serves connections until a `shutdown` request is handled,
    /// then joins every connection thread and returns.
    pub fn run(self) {
        let state = &self.state;
        let next_id = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Request/response lines are tiny; Nagle + delayed ACK would
                // add ~40ms stalls per round trip on small writes.
                let _ = stream.set_nodelay(true);
                let id = next_id.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    state
                        .connections
                        .lock()
                        .expect("connection registry poisoned")
                        .push((id, clone));
                }
                scope.spawn(move || {
                    handle_connection(state, stream);
                    state
                        .connections
                        .lock()
                        .expect("connection registry poisoned")
                        .retain(|(conn_id, _)| *conn_id != id);
                });
            }
            // Accept loop done: close the *read* side of every remaining
            // connection so idle clients cannot keep handler threads (and the
            // scope join) alive. Writes stay open, so a handler mid-request
            // still delivers its in-flight response before seeing EOF — the
            // protocol doc's "force-closed after their in-flight request".
            for (_, conn) in state.connections.lock().expect("connection registry poisoned").iter()
            {
                let _ = conn.shutdown(std::net::Shutdown::Read);
            }
        });
    }
}

/// Serves one connection: reads LF-terminated request lines, answers each in
/// order. Empty lines are ignored; EOF or a write failure ends the
/// connection; a `shutdown` request ends the whole server.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (id, outcome) = match parse_request(&line) {
            Ok(request) => (request.id, handle_request(state, request.request)),
            Err(error) => (None, ResponseKind::Error(error)),
        };
        let stop = matches!(outcome, ResponseKind::ShuttingDown);
        let response = Response { id, v: PROTOCOL_VERSION, response: outcome };
        if writeln!(writer, "{}", response_line(&response)).is_err() {
            break;
        }
        let _ = writer.flush();
        if stop {
            state.shutdown.store(true, Ordering::Release);
            // Unblock the accept loop so it observes the flag. A wildcard
            // bind (0.0.0.0 / ::) is not connectable everywhere, so the poke
            // targets loopback on the bound port.
            let mut poke = state.addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke {
                    std::net::SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect(poke);
            break;
        }
    }
}

/// Dispatches one parsed request. Never panics on user input: every failure
/// becomes a typed error response.
fn handle_request(state: &ServerState, request: RequestKind) -> ResponseKind {
    match request {
        RequestKind::Ping => ResponseKind::Pong,
        RequestKind::Shutdown => ResponseKind::ShuttingDown,
        RequestKind::Version => ResponseKind::Version(VersionInfo {
            server: format!("qec-serve {}", env!("CARGO_PKG_VERSION")),
            git_describe: git_describe(),
            protocol: PROTOCOL_VERSION,
            trace_schema: qec_trace::TRACE_SCHEMA_VERSION,
            manifest_schema: qec_trace::MANIFEST_SCHEMA_VERSION,
            replay_schema: REPLAY_SCHEMA_VERSION,
        }),
        RequestKind::Stats => {
            let cache = state.cache.stats();
            ResponseKind::Stats(ServerStats {
                requests: state.requests.load(Ordering::Relaxed),
                evals: state.evals.load(Ordering::Relaxed),
                batch_evals: state.batch_evals.load(Ordering::Relaxed),
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                cache_evictions: cache.evictions,
                cached_cells: cache.cached_cells,
                cache_capacity: cache.capacity,
                corpus_cells: state.corpus.entries().len(),
                shared_passes: state.shared_passes.load(Ordering::Relaxed),
                suffixes_served: state.suffixes_served.load(Ordering::Relaxed),
                peak_checkpoints: state.peak_checkpoints.load(Ordering::Relaxed),
            })
        }
        RequestKind::ListCells => ResponseKind::Cells(state.corpus.entries().to_vec()),
        RequestKind::StatCell { key } => match stat_cell(state, &key) {
            Ok(stat) => ResponseKind::CellStat(stat),
            Err(error) => ResponseKind::Error(error),
        },
        RequestKind::VerifyCell { key } => match verify_cell(state, &key) {
            Ok(verified) => ResponseKind::Verified(verified),
            Err(error) => ResponseKind::Error(error),
        },
        RequestKind::Eval(spec) => match prepare_eval(state, &spec).map(compute_eval) {
            Ok(Ok(result)) => {
                state.evals.fetch_add(1, Ordering::Relaxed);
                ResponseKind::Eval(result)
            }
            Ok(Err(error)) | Err(error) => ResponseKind::Error(error),
        },
        RequestKind::BatchEval { evals } => match batch_eval(state, &evals) {
            Ok(results) => ResponseKind::Batch(results),
            Err(error) => ResponseKind::Error(error),
        },
    }
}

fn lookup<'c>(state: &'c ServerState, key: &str) -> Result<&'c CorpusEntry, WireError> {
    state.corpus.lookup(key).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownCell,
            format!("no cell `{key}` in the served corpus (try list-cells)"),
        )
    })
}

/// `stat-cell`: manifest entry + shard provenance at `O(header)` cost — the
/// shard's shot blocks are never read (`qec_trace::read_trace_header`).
fn stat_cell(state: &ServerState, key: &str) -> Result<CellStat, WireError> {
    let entry = lookup(state, key)?;
    let path = state.corpus.trace_path(entry);
    let corrupt =
        |e: String| WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", path.display()));
    let file_bytes = std::fs::metadata(&path).map_err(|e| corrupt(e.to_string()))?.len();
    let header = read_trace_header(&path).map_err(|e| corrupt(e.to_string()))?;
    Ok(CellStat {
        entry: entry.clone(),
        file_bytes,
        generator: header.generator,
        git_describe: header.git_describe,
    })
}

/// `verify-cell`: a full CRC + identity re-read from disk, deliberately
/// bypassing the cache (a cached cell proves nothing about today's bytes).
fn verify_cell(state: &ServerState, key: &str) -> Result<VerifiedCell, WireError> {
    let entry = lookup(state, key)?;
    let cell = load_entry(&state.corpus, entry)
        .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, e))?;
    Ok(VerifiedCell { key: key.to_string(), shots: cell.shots.len() })
}

/// One eval with its cell resolved and its labels parsed — everything owned,
/// so batch members can move onto pool workers.
struct PreparedEval {
    key: String,
    cached: Arc<CachedCell>,
    hit: bool,
    policy: PolicyKind,
    mode: ReplayMode,
    decode: bool,
}

/// Resolves an [`EvalSpec`] against the corpus and cache. Sequential (under
/// the cache lock), so cache traffic is a deterministic function of the
/// request stream.
fn prepare_eval(state: &ServerState, spec: &EvalSpec) -> Result<PreparedEval, WireError> {
    let entry = lookup(state, &spec.key)?;
    let policy = PolicyKind::from_label(&spec.policy).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownPolicy,
            format!(
                "unknown policy `{}`; known: {}",
                spec.policy,
                PolicyKind::ALL.map(PolicyKind::label).join(", ")
            ),
        )
    })?;
    let mode = match spec.mode.as_deref() {
        None => ReplayMode::OpenLoop,
        Some(label) => [ReplayMode::OpenLoop, ReplayMode::ClosedLoop]
            .into_iter()
            .find(|mode| mode.label() == label)
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown mode `{label}` (open-loop|closed-loop)"),
                )
            })?,
    };
    let (cached, hit) = state
        .cache
        .get_or_load(&state.corpus, entry)
        .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, e))?;
    Ok(PreparedEval {
        key: spec.key.clone(),
        cached,
        hit,
        policy,
        mode,
        decode: spec.decode.unwrap_or(false),
    })
}

/// Runs one prepared evaluation. This calls the exact entry points
/// (`evaluate_cell` + `evaluation_row`) that `repro replay` reports go
/// through, so a served result is byte-identical to the CLI row for the same
/// `corpus × cell × policy × mode × decode`.
fn compute_eval(prepared: PreparedEval) -> Result<EvalResult, WireError> {
    let cell = &prepared.cached.cell;
    // Mirrors `replay_corpus`: open-loop decoding only for the recording
    // policy, closed-loop decoding for every (exact counterfactual) pairing.
    let decoder = (prepared.decode
        && (prepared.mode == ReplayMode::ClosedLoop
            || prepared.policy == prepared.cached.recorded))
        .then(|| prepared.cached.decoder());
    let replay = evaluate_cell(
        cell,
        &prepared.cached.factory,
        prepared.policy,
        decoder.as_deref(),
        prepared.mode,
    )
    .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", prepared.key)))?;
    let result = evaluation_row(&prepared.key, cell, prepared.policy, &replay);
    Ok(EvalResult { cached: prepared.hit, result })
}

/// Runs a same-cell closed-loop candidate set through the shared-checkpoint
/// path. One forced prefix pass per divergent shot serves every candidate;
/// results are bit-identical to [`compute_eval`] per member (the exact-
/// counterfactual contract), so batching never changes a served row. A
/// cell-level failure is reported against every member (the batch is
/// all-or-nothing anyway, and the failure — e.g. a stale corpus — belongs to
/// the cell, not one candidate).
fn compute_eval_group(
    members: &[PreparedEval],
) -> (Vec<Result<EvalResult, WireError>>, CheckpointStats) {
    let first = &members[0];
    let cell = &first.cached.cell;
    let kinds: Vec<PolicyKind> = members.iter().map(|p| p.policy).collect();
    // Closed-loop rows are exact counterfactuals, so every member decodes
    // when its spec asks for it (mirrors `compute_eval`'s gating).
    let decoders: Vec<Option<Arc<UnionFindDecoder>>> =
        members.iter().map(|p| p.decode.then(|| p.cached.decoder())).collect();
    let decoder_refs: Vec<Option<&UnionFindDecoder>> =
        decoders.iter().map(std::option::Option::as_deref).collect();
    match evaluate_cell_set(
        cell,
        &first.cached.factory,
        &kinds,
        &decoder_refs,
        ReplayMode::ClosedLoop,
        true,
    ) {
        Ok((replays, stats)) => {
            let results = members
                .iter()
                .zip(replays)
                .map(|(p, replay)| {
                    Ok(EvalResult {
                        cached: p.hit,
                        result: evaluation_row(&p.key, cell, p.policy, &replay),
                    })
                })
                .collect();
            (results, stats)
        }
        Err(e) => {
            let error = WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", first.key));
            (members.iter().map(|_| Err(error.clone())).collect(), CheckpointStats::default())
        }
    }
}

/// `batch-eval`: resolve every pairing sequentially (deterministic cache
/// traffic), group closed-loop pairings that target the same cell into one
/// candidate set (served through the shared-checkpoint path — one forced
/// prefix pass per divergent shot instead of one per candidate), then fan the
/// solo evaluations and the groups out on the persistent pool. Results come
/// back in request order and are byte-identical to ungrouped evaluation. The
/// batch answer is all-or-nothing: an unresolvable pairing fails the whole
/// request before anything is evaluated, and a compute-stage failure (e.g. a
/// stale corpus under closed-loop repair) discards the sibling results;
/// either way the error message names the offending index.
fn batch_eval(state: &ServerState, evals: &[EvalSpec]) -> Result<Vec<EvalResult>, WireError> {
    if evals.is_empty() {
        return Err(WireError::new(ErrorCode::BadRequest, "batch-eval with no evals"));
    }
    let indexed = |index: usize| {
        move |mut error: WireError| {
            error.message = format!("evals[{index}]: {}", error.message);
            error
        }
    };
    let prepared: Vec<PreparedEval> = evals
        .iter()
        .enumerate()
        .map(|(index, spec)| prepare_eval(state, spec).map_err(indexed(index)))
        .collect::<Result<_, _>>()?;
    // Partition into same-cell closed-loop candidate sets and solo members.
    // Only closed-loop pairings are groupable (`Some(key)`); open-loop
    // pairings stay solo (`None`) even when they target the same cell.
    // Singleton "sets" also evaluate as solos: the shared path would serve
    // the same bytes, but sharing one candidate dedups nothing.
    type EvalGroup = (Option<String>, Vec<(usize, PreparedEval)>);
    let mut groups: Vec<EvalGroup> = Vec::new();
    for (index, p) in prepared.into_iter().enumerate() {
        let group_key = (p.mode == ReplayMode::ClosedLoop).then(|| p.key.clone());
        match group_key
            .as_ref()
            .and_then(|key| groups.iter_mut().find(|(k, _)| k.as_ref() == Some(key)))
        {
            Some((_, members)) => members.push((index, p)),
            None => groups.push((group_key, vec![(index, p)])),
        }
    }
    type JobOut = (Vec<(usize, Result<EvalResult, WireError>)>, CheckpointStats);
    let jobs: Vec<Box<dyn FnOnce() -> JobOut + Send>> = groups
        .into_iter()
        .map(|(_, members)| -> Box<dyn FnOnce() -> JobOut + Send> {
            if members.len() == 1 {
                Box::new(move || {
                    let (index, p) = members.into_iter().next().expect("singleton group");
                    let outcome = compute_eval(p).map_err(indexed(index));
                    (vec![(index, outcome)], CheckpointStats::default())
                })
            } else {
                Box::new(move || {
                    let (indices, members): (Vec<usize>, Vec<PreparedEval>) =
                        members.into_iter().unzip();
                    let (outcomes, stats) = compute_eval_group(&members);
                    let indexed_outcomes = indices
                        .into_iter()
                        .zip(outcomes)
                        .map(|(index, outcome)| (index, outcome.map_err(indexed(index))))
                        .collect();
                    (indexed_outcomes, stats)
                })
            }
        })
        .collect();
    let mut outcomes: Vec<Option<Result<EvalResult, WireError>>> =
        (0..evals.len()).map(|_| None).collect();
    for (group_outcomes, stats) in state.pool.execute_ordered(jobs) {
        state.shared_passes.fetch_add(stats.forced_passes, Ordering::Relaxed);
        state.suffixes_served.fetch_add(stats.suffixes, Ordering::Relaxed);
        state.peak_checkpoints.fetch_max(stats.peak_checkpoints, Ordering::Relaxed);
        for (index, outcome) in group_outcomes {
            outcomes[index] = Some(outcome);
        }
    }
    let outcomes: Vec<Result<EvalResult, WireError>> =
        outcomes.into_iter().map(|outcome| outcome.expect("every index answered")).collect();
    // `evals` counts successfully computed pairings (matching the single-eval
    // path, which only counts successes); `batch_evals` counts batches that
    // were answered with a `batch` response.
    let successes = outcomes.iter().filter(|outcome| outcome.is_ok()).count();
    state.evals.fetch_add(successes as u64, Ordering::Relaxed);
    let results = outcomes.into_iter().collect::<Result<Vec<EvalResult>, WireError>>()?;
    state.batch_evals.fetch_add(1, Ordering::Relaxed);
    Ok(results)
}
