//! The daemon: an acceptor thread, a fixed pool of connection workers, and
//! the dispatch from protocol requests to corpus-backed evaluations.
//!
//! The connection model is bounded end to end. The thread calling
//! [`Server::run`] accepts sockets and hands them to a **fixed** pool of
//! connection-worker threads (one per admissible connection — threads are
//! allocated once, at startup, never per connection); a connection beyond
//! `max_connections` is answered with one typed `overloaded` error line and
//! closed instead of growing the pool. On each live connection, requests are
//! answered strictly in arrival order, every failure mapped to a typed
//! [`WireError`] response — malformed input never crashes the server or
//! closes the connection. Evaluation work (solo `eval`, `batch-eval` groups,
//! `verify-cell` re-reads) runs on a persistent [`rayon::ThreadPool`] shared
//! by all connections, behind a bounded admission queue: when the in-flight
//! evaluation weight would exceed `queue_limit`, the request is refused with
//! an `overloaded` error on its own (surviving) connection rather than
//! stalling everyone — explicit backpressure instead of collapse.
//!
//! The served corpus is a hot-swappable snapshot: the daemon stamps
//! `manifest.json` (mtime + length) between requests and, when the stamp
//! moves and the parsed entry set actually differs, atomically swaps in a
//! fresh `(corpus, cache)` pair. Every request resolves against exactly one
//! snapshot `Arc`, so in-flight evaluations finish against the snapshot they
//! started on — a reload never drops a connection and never yields a
//! mixed-snapshot row.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};

use leakage_speculation::PolicyKind;
use qec_decoder::{DecoderBackend, DecoderKind};
use qec_experiments::replay::{
    evaluate_cell, evaluate_cell_set, evaluation_row, load_entry, CheckpointStats,
    REPLAY_SCHEMA_VERSION,
};
use qec_experiments::sweep::git_describe;
use qec_experiments::ReplayMode;
use qec_trace::{manifest_stamp, read_trace_header, Corpus, CorpusEntry, ManifestStamp};

use crate::cache::{CachedCell, CellCache};
use crate::protocol::{
    parse_request, response_line, BatchItem, CellStat, ErrorCode, EvalResult, EvalSpec,
    RequestKind, Response, ResponseKind, ServerStats, VerifiedCell, VersionInfo, WireError,
    PROTOCOL_VERSION,
};

/// Server construction options.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, `host:port`. Port `0` picks an ephemeral port —
    /// read it back from [`Server::local_addr`].
    pub addr: String,
    /// Maximum corpus cells resident in the cache.
    pub cache_cells: usize,
    /// Worker threads of the persistent evaluation pool. `0` means
    /// [`rayon::current_num_threads`] (so `RAYON_NUM_THREADS` governs it).
    pub pool_threads: usize,
    /// Hard connection limit: the size of the fixed connection-worker pool.
    /// A connection beyond it receives one typed `overloaded` error line and
    /// is closed (established connections are unaffected).
    pub max_connections: usize,
    /// Evaluation-queue capacity, in evaluation units (a solo `eval` or
    /// `verify-cell` weighs 1, a `batch-eval` weighs its member count). A
    /// request whose weight would push the in-flight total past the limit is
    /// refused with an `overloaded` error on its surviving connection.
    pub queue_limit: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_cells: 8,
            pool_threads: 0,
            max_connections: 32,
            queue_limit: 256,
        }
    }
}

/// One atomically-swappable view of the served corpus: the parsed manifest
/// and the cell cache loaded from it. Requests clone the current snapshot
/// `Arc` once and resolve everything against it, so a concurrent manifest
/// swap can never mix two corpus generations inside one answer.
struct CorpusSnapshot {
    corpus: Corpus,
    cache: CellCache,
}

/// Admitted-but-not-yet-served connections, handed from the acceptor to the
/// connection workers. `close` drops whatever is still pending (shutdown
/// refuses no one an in-flight answer, but queued sockets that never reached
/// a worker are simply closed) and wakes every idle worker so the pool can
/// join deterministically.
struct ConnQueue {
    inner: Mutex<ConnQueueState>,
    ready: Condvar,
}

struct ConnQueueState {
    pending: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            inner: Mutex::new(ConnQueueState { pending: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, stream: TcpStream) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.closed {
            return; // dropped: the daemon is shutting down
        }
        inner.pending.push_back(stream);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(stream) = inner.pending.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        inner.pending.clear();
        self.ready.notify_all();
    }
}

/// Shared server state: the corpus snapshot, the persistent pool, the
/// admission gauges and the traffic counters behind the `stats` response.
struct ServerState {
    /// The current corpus snapshot; replaced wholesale on a hot reload.
    snapshot: RwLock<Arc<CorpusSnapshot>>,
    /// Last `manifest.json` stamp acted on. Also serializes reload checks:
    /// `try_lock` keeps the stat-and-maybe-reopen to one thread at a time.
    reload: Mutex<Option<ManifestStamp>>,
    corpus_dir: PathBuf,
    cache_cells: usize,
    pool: rayon::ThreadPool,
    addr: SocketAddr,
    max_connections: usize,
    queue_limit: usize,
    conn_queue: ConnQueue,
    requests: AtomicU64,
    evals: AtomicU64,
    batch_evals: AtomicU64,
    /// Shot-level forced prefix re-executions performed by the
    /// shared-checkpoint batch path (one per divergent shot, however many
    /// same-cell candidates the batch carried).
    shared_passes: AtomicU64,
    /// Candidate suffixes resumed from shared checkpoints.
    suffixes_served: AtomicU64,
    /// Most simulator checkpoints held at once by any shared evaluation.
    peak_checkpoints: AtomicU64,
    /// Connections admitted and not yet finished (the connection-limit gauge:
    /// only the acceptor increments, so the limit is never exceeded).
    active_connections: AtomicU64,
    /// Evaluation units currently in flight (admission gauge for
    /// `queue_limit`).
    queue_depth: AtomicU64,
    queue_depth_hwm: AtomicU64,
    shed_requests: AtomicU64,
    shed_connections: AtomicU64,
    corpus_reloads: AtomicU64,
    shutdown: AtomicBool,
    /// Read-half clones of open connections, so shutdown can unblock handler
    /// threads parked in `read_line` (an idle client must not keep the daemon
    /// alive forever).
    connections: Mutex<Vec<(u64, TcpStream)>>,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a `shutdown`
/// request arrives.
pub struct Server {
    listener: TcpListener,
    state: ServerState,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .field("cells", &self.corpus_cells())
            .finish()
    }
}

impl Server {
    /// Opens the corpus at `corpus_dir` (which must exist and be non-empty —
    /// a daemon over nothing answers nothing) and binds the listen socket.
    ///
    /// # Errors
    /// Returns a message when the corpus is missing/empty/corrupt or the
    /// address cannot be bound.
    pub fn bind(corpus_dir: &Path, config: &ServeConfig) -> Result<Server, String> {
        let corpus = Corpus::open_existing(corpus_dir).map_err(|e| e.to_string())?;
        if corpus.entries().is_empty() {
            return Err(format!(
                "corpus {} is empty — nothing to serve (record cells first)",
                corpus_dir.display()
            ));
        }
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let pool = if config.pool_threads == 0 {
            rayon::ThreadPool::with_default_threads()
        } else {
            rayon::ThreadPool::new(config.pool_threads)
        };
        let stamp = manifest_stamp(corpus_dir);
        let cache_cells = config.cache_cells;
        Ok(Server {
            listener,
            state: ServerState {
                snapshot: RwLock::new(Arc::new(CorpusSnapshot {
                    corpus,
                    cache: CellCache::new(cache_cells),
                })),
                reload: Mutex::new(stamp),
                corpus_dir: corpus_dir.to_path_buf(),
                cache_cells,
                pool,
                addr,
                max_connections: config.max_connections.max(1),
                queue_limit: config.queue_limit.max(1),
                conn_queue: ConnQueue::new(),
                requests: AtomicU64::new(0),
                evals: AtomicU64::new(0),
                batch_evals: AtomicU64::new(0),
                shared_passes: AtomicU64::new(0),
                suffixes_served: AtomicU64::new(0),
                peak_checkpoints: AtomicU64::new(0),
                active_connections: AtomicU64::new(0),
                queue_depth: AtomicU64::new(0),
                queue_depth_hwm: AtomicU64::new(0),
                shed_requests: AtomicU64::new(0),
                shed_connections: AtomicU64::new(0),
                corpus_reloads: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                connections: Mutex::new(Vec::new()),
            },
        })
    }

    /// The bound address (resolves an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Number of cells in the served corpus manifest (the current snapshot).
    #[must_use]
    pub fn corpus_cells(&self) -> usize {
        current_snapshot(&self.state).corpus.entries().len()
    }

    /// Accepts and serves connections until a `shutdown` request is handled,
    /// then drains the worker pool deterministically and returns: the
    /// connection queue is closed (idle workers wake and exit, queued-but-
    /// unserved sockets are dropped), open connections' read halves are shut
    /// so parked handlers finish their in-flight response and see EOF, and
    /// the scope joins every thread.
    pub fn run(self) {
        let Server { listener, state } = self;
        let state = &state;
        let next_id = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..state.max_connections {
                scope.spawn(|| connection_worker(state, &next_id));
            }
            for stream in listener.incoming() {
                if state.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Request/response lines are tiny; Nagle + delayed ACK would
                // add ~40ms stalls per round trip on small writes.
                let _ = stream.set_nodelay(true);
                // Hard connection limit. Only this thread increments the
                // gauge, so admitted connections never exceed the worker
                // count and every admitted socket gets a worker promptly.
                let admitted = state.active_connections.fetch_add(1, Ordering::AcqRel);
                if admitted >= state.max_connections as u64 {
                    state.active_connections.fetch_sub(1, Ordering::AcqRel);
                    state.shed_connections.fetch_add(1, Ordering::Relaxed);
                    shed_connection(state, stream);
                    continue;
                }
                state.conn_queue.push(stream);
            }
            // Shutdown: wake idle workers (and drop never-served sockets)...
            state.conn_queue.close();
            // ...then close the *read* side of every remaining connection so
            // parked handlers cannot keep the join alive. Writes stay open,
            // so a handler mid-request still delivers its in-flight response
            // before seeing EOF — the protocol doc's "force-closed after
            // their in-flight request".
            for (_, conn) in state.connections.lock().unwrap_or_else(PoisonError::into_inner).iter()
            {
                let _ = conn.shutdown(std::net::Shutdown::Read);
            }
        });
    }
}

/// One connection-worker thread: serves admitted connections, one at a time,
/// until the queue is closed. Registers each connection's read half so
/// shutdown can unblock a parked `read_line`.
fn connection_worker(state: &ServerState, next_id: &AtomicU64) {
    while let Some(stream) = state.conn_queue.pop() {
        let id = next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            state.connections.lock().unwrap_or_else(PoisonError::into_inner).push((id, clone));
        }
        handle_connection(state, stream);
        state
            .connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(conn_id, _)| *conn_id != id);
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Answers an over-limit connection with a single typed `overloaded` error
/// line (`id` null — there is no request to correlate with) and closes it.
/// Established connections are unaffected; the client may reconnect later.
fn shed_connection(state: &ServerState, mut stream: TcpStream) {
    let error = WireError::new(
        ErrorCode::Overloaded,
        format!(
            "connection limit reached ({} active); connection refused — retry later",
            state.max_connections
        ),
    );
    let response = Response { id: None, v: PROTOCOL_VERSION, response: ResponseKind::Error(error) };
    let _ = writeln!(stream, "{}", response_line(&response));
    let _ = stream.flush();
}

/// Serves one connection: reads LF-terminated request lines, answers each in
/// order. Empty lines are ignored; EOF or a write failure ends the
/// connection; a `shutdown` request ends the whole server.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let (id, contained) = match parse_request(&line) {
            Ok(request) => (request.id, contain_panic(|| handle_request(state, request.request))),
            Err(error) => (None, Ok(ResponseKind::Error(error))),
        };
        // A contained panic answers with a typed `internal` error and then
        // closes *this* connection only — the worker thread survives to serve
        // the next socket, and every other connection is untouched.
        let (outcome, panicked) = match contained {
            Ok(outcome) => (outcome, false),
            Err(error) => (ResponseKind::Error(error), true),
        };
        let stop = matches!(outcome, ResponseKind::ShuttingDown);
        let response = Response { id, v: PROTOCOL_VERSION, response: outcome };
        if writeln!(writer, "{}", response_line(&response)).is_err() {
            break;
        }
        let _ = writer.flush();
        if panicked {
            break;
        }
        if stop {
            state.shutdown.store(true, Ordering::Release);
            // Unblock the accept loop so it observes the flag. A wildcard
            // bind (0.0.0.0 / ::) is not connectable everywhere, so the poke
            // targets loopback on the bound port.
            let mut poke = state.addr;
            if poke.ip().is_unspecified() {
                poke.set_ip(match poke {
                    std::net::SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = TcpStream::connect(poke);
            break;
        }
    }
}

/// Runs one request dispatch with panic containment: a panic anywhere in the
/// dispatch path is caught and mapped to a typed `internal` [`WireError`]
/// instead of unwinding through the connection worker. The caller answers
/// with that error and closes the offending connection; the worker thread —
/// and every other connection — keeps serving. Locks the panicking dispatch
/// held are recovered by the `PoisonError::into_inner` guards at every lock
/// site, so one poisoned request cannot cascade into poisoned-lock panics on
/// later requests.
fn contain_panic(dispatch: impl FnOnce() -> ResponseKind) -> Result<ResponseKind, WireError> {
    // AssertUnwindSafe: the shared state behind the closure is lock-guarded,
    // and every guard recovers from poisoning, so observing post-panic state
    // is sound.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(dispatch)).map_err(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        WireError::new(
            ErrorCode::Internal,
            format!("request panicked server-side: {message}; connection closed"),
        )
    })
}

/// The current corpus snapshot. Cloning the `Arc` under the read lock is the
/// whole synchronization story: whatever a request resolves after this call
/// — manifest entries, cache cells, shard paths — comes from one generation.
fn current_snapshot(state: &ServerState) -> Arc<CorpusSnapshot> {
    Arc::clone(&state.snapshot.read().unwrap_or_else(PoisonError::into_inner))
}

/// Live progress of an adaptive sweep checkpointed in the served corpus
/// directory: `(rounds completed, total shots allocated)` from a `state.qad`
/// colocated with `manifest.json` (adaptive sweeps may point `--checkpoint`
/// at the corpus directory — the file sets are disjoint). `(0, 0)` when no
/// checkpoint exists, and equally when the state file is torn or corrupt:
/// `stats` is a monitoring surface and must never fail a request over a
/// checkpoint mid-rewrite (resume, in contrast, errors loudly on the same
/// bytes).
fn adaptive_progress(corpus_dir: &Path) -> (u64, u64) {
    if !corpus_dir.join(qec_experiments::adaptive::STATE_FILE).exists() {
        return (0, 0);
    }
    match qec_experiments::adaptive::read_checkpoint_state(corpus_dir) {
        Ok(state) => {
            let shots = state.cells.iter().map(|cell| cell.acc.shots as u64).sum();
            (state.rounds, shots)
        }
        Err(_) => (0, 0),
    }
}

/// Checks `manifest.json` for changes and swaps in a fresh snapshot when the
/// parsed entry set differs. Crash-safe against torn manifest writes: a
/// manifest that fails to parse is skipped (the stamp is not advanced), so
/// the next request simply retries; the old snapshot keeps serving either
/// way. Content-identical rewrites advance the stamp without swapping, so
/// cache residency (and the exactness of cache-counter tests) survives a
/// `touch`.
fn maybe_reload(state: &ServerState) {
    // Another thread mid-check will pick up whatever we would have seen.
    let Ok(mut last) = state.reload.try_lock() else { return };
    let stamp = manifest_stamp(&state.corpus_dir);
    if stamp == *last {
        return;
    }
    let Ok(corpus) = Corpus::open_existing(&state.corpus_dir) else { return };
    let baseline = {
        let current = state.snapshot.read().unwrap_or_else(PoisonError::into_inner);
        if current.corpus.entries() == corpus.entries() {
            *last = stamp;
            return;
        }
        current.cache.stats()
    };
    let fresh =
        CorpusSnapshot { corpus, cache: CellCache::with_baseline(state.cache_cells, baseline) };
    *state.snapshot.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(fresh);
    state.corpus_reloads.fetch_add(1, Ordering::Relaxed);
    *last = stamp;
}

/// A held slot of the bounded evaluation queue; releases its weight on drop.
struct QueueSlot<'s> {
    state: &'s ServerState,
    weight: u64,
}

impl Drop for QueueSlot<'_> {
    fn drop(&mut self) {
        self.state.queue_depth.fetch_sub(self.weight, Ordering::AcqRel);
    }
}

/// Tries to admit `weight` evaluation units. Admission is strict — a request
/// is admitted only when its **whole** weight fits under `queue_limit` — so
/// whether a given request sheds is a deterministic function of what is in
/// flight, never of how far over the limit it would land.
fn try_enqueue(state: &ServerState, weight: u64) -> Option<QueueSlot<'_>> {
    let limit = state.queue_limit as u64;
    let mut depth = state.queue_depth.load(Ordering::Relaxed);
    loop {
        if depth + weight > limit {
            return None;
        }
        match state.queue_depth.compare_exchange(
            depth,
            depth + weight,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => break,
            Err(actual) => depth = actual,
        }
    }
    state.queue_depth_hwm.fetch_max(depth + weight, Ordering::Relaxed);
    Some(QueueSlot { state, weight })
}

/// The typed refusal a shed request is answered with. Nothing was evaluated;
/// the connection survives and the client may retry the identical request.
fn overloaded(state: &ServerState, weight: u64) -> ResponseKind {
    state.shed_requests.fetch_add(1, Ordering::Relaxed);
    ResponseKind::Error(WireError::new(
        ErrorCode::Overloaded,
        format!(
            "evaluation queue full (request weight {weight} does not fit under limit {}); \
             nothing was evaluated — retry later",
            state.queue_limit
        ),
    ))
}

/// Dispatches one parsed request. Never panics on user input: every failure
/// becomes a typed error response.
fn handle_request(state: &ServerState, request: RequestKind) -> ResponseKind {
    // Corpus-free kinds first: pure liveness and identity, never shed, and
    // deliberately untouched by reload checks.
    match request {
        RequestKind::Ping => return ResponseKind::Pong,
        RequestKind::Shutdown => return ResponseKind::ShuttingDown,
        RequestKind::Version => {
            return ResponseKind::Version(VersionInfo {
                server: format!("qec-serve {}", env!("CARGO_PKG_VERSION")),
                git_describe: git_describe(),
                protocol: PROTOCOL_VERSION,
                trace_schema: qec_trace::TRACE_SCHEMA_VERSION,
                manifest_schema: qec_trace::MANIFEST_SCHEMA_VERSION,
                replay_schema: REPLAY_SCHEMA_VERSION,
            })
        }
        _ => {}
    }
    // Everything below reads the corpus: check for a hot manifest swap, then
    // resolve the whole request against one snapshot generation.
    maybe_reload(state);
    let snapshot = current_snapshot(state);
    match request {
        RequestKind::Ping | RequestKind::Shutdown | RequestKind::Version => {
            unreachable!("handled above")
        }
        RequestKind::Stats => {
            let cache = snapshot.cache.stats();
            let (adaptive_rounds, shots_allocated) = adaptive_progress(&state.corpus_dir);
            ResponseKind::Stats(ServerStats {
                requests: state.requests.load(Ordering::Relaxed),
                evals: state.evals.load(Ordering::Relaxed),
                batch_evals: state.batch_evals.load(Ordering::Relaxed),
                cache_hits: cache.hits,
                cache_misses: cache.misses,
                cache_evictions: cache.evictions,
                cached_cells: cache.cached_cells,
                cache_capacity: cache.capacity,
                corpus_cells: snapshot.corpus.entries().len(),
                shared_passes: state.shared_passes.load(Ordering::Relaxed),
                suffixes_served: state.suffixes_served.load(Ordering::Relaxed),
                peak_checkpoints: state.peak_checkpoints.load(Ordering::Relaxed),
                active_connections: state.active_connections.load(Ordering::Relaxed),
                max_connections: state.max_connections,
                queue_depth_hwm: state.queue_depth_hwm.load(Ordering::Relaxed),
                queue_limit: state.queue_limit,
                shed_requests: state.shed_requests.load(Ordering::Relaxed),
                shed_connections: state.shed_connections.load(Ordering::Relaxed),
                corpus_reloads: state.corpus_reloads.load(Ordering::Relaxed),
                // Router counters: a plain daemon routes nothing and is not a
                // replica of itself; only the qec-cluster router fills these.
                routed_requests: 0,
                fanout_hwm: 0,
                replica_errors: 0,
                replicas_up: 0,
                adaptive_rounds,
                shots_allocated,
            })
        }
        RequestKind::ListCells => ResponseKind::Cells(snapshot.corpus.entries().to_vec()),
        RequestKind::StatCell { key } => match stat_cell(&snapshot, &key) {
            Ok(stat) => ResponseKind::CellStat(stat),
            Err(error) => ResponseKind::Error(error),
        },
        RequestKind::VerifyCell { key } => {
            let Some(slot) = try_enqueue(state, 1) else { return overloaded(state, 1) };
            let outcome = verify_cell(state, &snapshot, &key);
            drop(slot);
            match outcome {
                Ok(verified) => ResponseKind::Verified(verified),
                Err(error) => ResponseKind::Error(error),
            }
        }
        RequestKind::Eval(spec) => {
            let Some(slot) = try_enqueue(state, 1) else { return overloaded(state, 1) };
            let outcome = match prepare_eval(&snapshot, &spec) {
                Ok(prepared) => state
                    .pool
                    .execute_ordered(vec![move || compute_eval(prepared)])
                    .pop()
                    .expect("one job, one result"),
                Err(error) => Err(error),
            };
            drop(slot);
            match outcome {
                Ok(result) => {
                    state.evals.fetch_add(1, Ordering::Relaxed);
                    ResponseKind::Eval(result)
                }
                Err(error) => ResponseKind::Error(error),
            }
        }
        RequestKind::BatchEval { evals, per_item } => {
            let weight = evals.len() as u64;
            let Some(slot) = try_enqueue(state, weight) else {
                return overloaded(state, weight);
            };
            let outcome = batch_eval(state, &snapshot, &evals, per_item.unwrap_or(false));
            drop(slot);
            match outcome {
                Ok(response) => response,
                Err(error) => ResponseKind::Error(error),
            }
        }
    }
}

fn lookup<'c>(snapshot: &'c CorpusSnapshot, key: &str) -> Result<&'c CorpusEntry, WireError> {
    snapshot.corpus.lookup(key).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownCell,
            format!("no cell `{key}` in the served corpus (try list-cells)"),
        )
    })
}

/// `stat-cell`: manifest entry + shard provenance at `O(header)` cost — the
/// shard's shot blocks are never read (`qec_trace::read_trace_header`).
fn stat_cell(snapshot: &CorpusSnapshot, key: &str) -> Result<CellStat, WireError> {
    let entry = lookup(snapshot, key)?;
    let path = snapshot.corpus.trace_path(entry);
    let corrupt =
        |e: String| WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", path.display()));
    let file_bytes = std::fs::metadata(&path).map_err(|e| corrupt(e.to_string()))?.len();
    let header = read_trace_header(&path).map_err(|e| corrupt(e.to_string()))?;
    Ok(CellStat {
        entry: entry.clone(),
        file_bytes,
        generator: header.generator,
        git_describe: header.git_describe,
    })
}

/// `verify-cell`: a full CRC + identity re-read from disk, deliberately
/// bypassing the cache (a cached cell proves nothing about today's bytes).
/// The re-read runs on the evaluation pool like any other heavy work.
fn verify_cell(
    state: &ServerState,
    snapshot: &Arc<CorpusSnapshot>,
    key: &str,
) -> Result<VerifiedCell, WireError> {
    let entry = lookup(snapshot, key)?.clone();
    let snapshot = Arc::clone(snapshot);
    let key = key.to_string();
    state
        .pool
        .execute_ordered(vec![move || {
            let cell = load_entry(&snapshot.corpus, &entry)
                .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, e))?;
            Ok(VerifiedCell { key, shots: cell.shots.len() })
        }])
        .pop()
        .expect("one job, one result")
}

/// One eval with its cell resolved and its labels parsed — everything owned,
/// so batch members can move onto pool workers.
struct PreparedEval {
    key: String,
    cached: Arc<CachedCell>,
    hit: bool,
    policy: PolicyKind,
    mode: ReplayMode,
    decode: bool,
    /// Backend selected by the request's optional `decoder` field; `None` is
    /// the legacy union-find slot (byte-identical to pre-field behavior).
    decoder: Option<DecoderKind>,
}

/// Resolves an [`EvalSpec`] against the snapshot's corpus and cache.
/// Sequential (under the cache lock), so cache traffic is a deterministic
/// function of the request stream.
fn prepare_eval(snapshot: &CorpusSnapshot, spec: &EvalSpec) -> Result<PreparedEval, WireError> {
    let entry = lookup(snapshot, &spec.key)?;
    let policy = PolicyKind::from_label(&spec.policy).ok_or_else(|| {
        WireError::new(
            ErrorCode::UnknownPolicy,
            format!(
                "unknown policy `{}`; known: {}",
                spec.policy,
                PolicyKind::ALL.map(PolicyKind::label).join(", ")
            ),
        )
    })?;
    let mode = match spec.mode.as_deref() {
        None => ReplayMode::OpenLoop,
        Some(label) => [ReplayMode::OpenLoop, ReplayMode::ClosedLoop]
            .into_iter()
            .find(|mode| mode.label() == label)
            .ok_or_else(|| {
                WireError::new(
                    ErrorCode::BadRequest,
                    format!("unknown mode `{label}` (open-loop|closed-loop)"),
                )
            })?,
    };
    let decoder = match spec.decoder.as_deref() {
        None => None,
        Some(label) => Some(DecoderKind::from_label(label).ok_or_else(|| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("unknown decoder `{label}`; known: {}", DecoderKind::known_labels()),
            )
        })?),
    };
    let (cached, hit) = snapshot
        .cache
        .get_or_load(&snapshot.corpus, entry)
        .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, e))?;
    // A decoder/cell mismatch (e.g. the lookup decoder on a d=5 cell) is a
    // request error, caught here at prepare time so it is typed `bad-request`
    // — never `internal`, and never a disconnect.
    if let Some(kind) = decoder {
        kind.supports(cached.cell.code.family(), cached.cell.code.distance()).map_err(|e| {
            WireError::new(
                ErrorCode::BadRequest,
                format!("{}: decoder `{}` cannot serve this cell: {e}", spec.key, kind.label()),
            )
        })?;
    }
    Ok(PreparedEval {
        key: spec.key.clone(),
        cached,
        hit,
        policy,
        mode,
        decode: spec.decode.unwrap_or(false),
        decoder,
    })
}

/// Runs one prepared evaluation. This calls the exact entry points
/// (`evaluate_cell` + `evaluation_row`) that `repro replay` reports go
/// through, so a served result is byte-identical to the CLI row for the same
/// `corpus × cell × policy × mode × decode`.
fn compute_eval(prepared: PreparedEval) -> Result<EvalResult, WireError> {
    let cell = &prepared.cached.cell;
    // Mirrors `replay_corpus`: open-loop decoding only for the recording
    // policy, closed-loop decoding for every (exact counterfactual) pairing.
    let decoder = (prepared.decode
        && (prepared.mode == ReplayMode::ClosedLoop
            || prepared.policy == prepared.cached.recorded))
        .then(|| prepared.cached.backend(prepared.decoder))
        .transpose()
        .map_err(|e| WireError::new(ErrorCode::BadRequest, e))?;
    let replay = evaluate_cell(
        cell,
        &prepared.cached.factory,
        prepared.policy,
        decoder.as_deref(),
        prepared.mode,
    )
    .map_err(|e| WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", prepared.key)))?;
    let result = evaluation_row(&prepared.key, cell, prepared.policy, prepared.decoder, &replay);
    Ok(EvalResult { cached: prepared.hit, result })
}

/// Runs a same-cell closed-loop candidate set through the shared-checkpoint
/// path. One forced prefix pass per divergent shot serves every candidate;
/// results are bit-identical to [`compute_eval`] per member (the exact-
/// counterfactual contract), so batching never changes a served row. A
/// cell-level failure is reported against every member (the failure — e.g. a
/// stale corpus — belongs to the cell, not one candidate).
fn compute_eval_group(
    members: &[PreparedEval],
) -> (Vec<Result<EvalResult, WireError>>, CheckpointStats) {
    let first = &members[0];
    let cell = &first.cached.cell;
    let kinds: Vec<PolicyKind> = members.iter().map(|p| p.policy).collect();
    // Closed-loop rows are exact counterfactuals, so every member decodes
    // when its spec asks for it (mirrors `compute_eval`'s gating).
    let decoders: Vec<Option<Arc<dyn DecoderBackend>>> = match members
        .iter()
        .map(|p| p.decode.then(|| p.cached.backend(p.decoder)).transpose())
        .collect::<Result<_, _>>()
    {
        Ok(decoders) => decoders,
        // Unreachable in practice: `prepare_eval` validated every selector
        // against this cell. Kept typed so a future backend kind that can
        // fail to build still answers instead of panicking.
        Err(e) => {
            let error = WireError::new(ErrorCode::BadRequest, e);
            return (
                members.iter().map(|_| Err(error.clone())).collect(),
                CheckpointStats::default(),
            );
        }
    };
    let decoder_refs: Vec<Option<&dyn DecoderBackend>> =
        decoders.iter().map(std::option::Option::as_deref).collect();
    match evaluate_cell_set(
        cell,
        &first.cached.factory,
        &kinds,
        &decoder_refs,
        ReplayMode::ClosedLoop,
        true,
    ) {
        Ok((replays, stats)) => {
            let results = members
                .iter()
                .zip(replays)
                .map(|(p, replay)| {
                    Ok(EvalResult {
                        cached: p.hit,
                        result: evaluation_row(&p.key, cell, p.policy, p.decoder, &replay),
                    })
                })
                .collect();
            (results, stats)
        }
        Err(e) => {
            let error = WireError::new(ErrorCode::CorruptCorpus, format!("{}: {e}", first.key));
            (members.iter().map(|_| Err(error.clone())).collect(), CheckpointStats::default())
        }
    }
}

/// `batch-eval`: resolve every pairing sequentially (deterministic cache
/// traffic), group closed-loop pairings that target the same cell into one
/// candidate set (served through the shared-checkpoint path — one forced
/// prefix pass per divergent shot instead of one per candidate), then fan the
/// solo evaluations and the groups out on the persistent pool. Results come
/// back in request order and are byte-identical to ungrouped evaluation.
///
/// Two answer shapes, chosen by the request's `per_item` flag:
///
/// * **legacy all-or-nothing** (absent/`false`): an unresolvable pairing
///   fails the whole request before anything later is resolved or evaluated,
///   and a compute-stage failure (e.g. a stale corpus under closed-loop
///   repair) discards the sibling results; either way the error names the
///   offending index.
/// * **per-item** (`true`): every pairing is resolved and evaluated
///   independently; the answer carries one result-or-typed-error entry per
///   pairing, in request order — one bad pairing no longer poisons the batch.
fn batch_eval(
    state: &ServerState,
    snapshot: &CorpusSnapshot,
    evals: &[EvalSpec],
    per_item: bool,
) -> Result<ResponseKind, WireError> {
    if evals.is_empty() {
        return Err(WireError::new(ErrorCode::BadRequest, "batch-eval with no evals"));
    }
    let indexed = |index: usize| {
        move |mut error: WireError| {
            error.message = format!("evals[{index}]: {}", error.message);
            error
        }
    };
    // Resolve sequentially. Legacy mode keeps the historical fail-fast: the
    // first unresolvable pairing refuses the batch before anything after it
    // is resolved (so its cache traffic is exactly the pre-per-item one).
    let mut prepared: Vec<(usize, Result<PreparedEval, WireError>)> =
        Vec::with_capacity(evals.len());
    for (index, spec) in evals.iter().enumerate() {
        let outcome = prepare_eval(snapshot, spec).map_err(indexed(index));
        if let (false, Err(error)) = (per_item, &outcome) {
            return Err(error.clone());
        }
        prepared.push((index, outcome));
    }
    let mut outcomes: Vec<Option<Result<EvalResult, WireError>>> =
        (0..evals.len()).map(|_| None).collect();
    // Partition into same-cell closed-loop candidate sets and solo members.
    // Only closed-loop pairings are groupable (`Some(key)`); open-loop
    // pairings stay solo (`None`) even when they target the same cell.
    // Singleton "sets" also evaluate as solos: the shared path would serve
    // the same bytes, but sharing one candidate dedups nothing.
    type EvalGroup = (Option<String>, Vec<(usize, PreparedEval)>);
    let mut groups: Vec<EvalGroup> = Vec::new();
    for (index, outcome) in prepared {
        let p = match outcome {
            Ok(p) => p,
            Err(error) => {
                outcomes[index] = Some(Err(error));
                continue;
            }
        };
        let group_key = (p.mode == ReplayMode::ClosedLoop).then(|| p.key.clone());
        match group_key
            .as_ref()
            .and_then(|key| groups.iter_mut().find(|(k, _)| k.as_ref() == Some(key)))
        {
            Some((_, members)) => members.push((index, p)),
            None => groups.push((group_key, vec![(index, p)])),
        }
    }
    type JobOut = (Vec<(usize, Result<EvalResult, WireError>)>, CheckpointStats);
    let jobs: Vec<Box<dyn FnOnce() -> JobOut + Send>> = groups
        .into_iter()
        .map(|(_, members)| -> Box<dyn FnOnce() -> JobOut + Send> {
            if members.len() == 1 {
                Box::new(move || {
                    let (index, p) = members.into_iter().next().expect("singleton group");
                    let outcome = compute_eval(p).map_err(indexed(index));
                    (vec![(index, outcome)], CheckpointStats::default())
                })
            } else {
                Box::new(move || {
                    let (indices, members): (Vec<usize>, Vec<PreparedEval>) =
                        members.into_iter().unzip();
                    let (outcomes, stats) = compute_eval_group(&members);
                    let indexed_outcomes = indices
                        .into_iter()
                        .zip(outcomes)
                        .map(|(index, outcome)| (index, outcome.map_err(indexed(index))))
                        .collect();
                    (indexed_outcomes, stats)
                })
            }
        })
        .collect();
    for (group_outcomes, stats) in state.pool.execute_ordered(jobs) {
        state.shared_passes.fetch_add(stats.forced_passes, Ordering::Relaxed);
        state.suffixes_served.fetch_add(stats.suffixes, Ordering::Relaxed);
        state.peak_checkpoints.fetch_max(stats.peak_checkpoints, Ordering::Relaxed);
        for (index, outcome) in group_outcomes {
            outcomes[index] = Some(outcome);
        }
    }
    let outcomes: Vec<Result<EvalResult, WireError>> =
        outcomes.into_iter().map(|outcome| outcome.expect("every index answered")).collect();
    // `evals` counts successfully computed pairings (matching the single-eval
    // path, which only counts successes); `batch_evals` counts batches that
    // were answered with a `batch` or `batch-items` response.
    let successes = outcomes.iter().filter(|outcome| outcome.is_ok()).count();
    state.evals.fetch_add(successes as u64, Ordering::Relaxed);
    if per_item {
        state.batch_evals.fetch_add(1, Ordering::Relaxed);
        Ok(ResponseKind::BatchItems(outcomes.into_iter().map(BatchItem::from).collect()))
    } else {
        let results = outcomes.into_iter().collect::<Result<Vec<EvalResult>, WireError>>()?;
        state.batch_evals.fetch_add(1, Ordering::Relaxed);
        Ok(ResponseKind::Batch(results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use leakage_speculation::PolicyFactory;
    use qec_experiments::engine::build_backend;
    use qec_experiments::replay::{calibration_for, record_into_corpus};
    use qec_experiments::{CodeFamily, Scenario};

    use crate::client::Client;
    use crate::protocol::{request_line, Request};

    fn record_corpus(dir: &Path) -> (String, String) {
        let mut corpus = Corpus::open(dir).unwrap();
        let mut keys = Vec::new();
        for distance in [3, 5] {
            let scenario = Scenario {
                code: CodeFamily::Surface,
                distance,
                rounds: 4,
                p: 1e-3,
                leakage_ratio: 0.1,
                policy: PolicyKind::EraserM,
                shots: 3,
                seed: 11,
                decode: false,
                decoder: None,
            };
            let entry =
                record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "serve test")
                    .unwrap();
            keys.push(entry.key);
        }
        corpus.save().unwrap();
        let d5 = keys.pop().unwrap();
        (keys.pop().unwrap(), d5)
    }

    /// The poisoned-request regression, end to end: a lock poisoned by a
    /// panicking thread does not stop the daemon from serving, decoder
    /// selector failures are typed `bad-request` (never `internal`, never a
    /// disconnect), and a served cross-decoder row is exactly the row the
    /// replay entry points produce.
    #[test]
    fn a_poisoned_lock_leaves_the_daemon_serving_and_decoder_errors_are_typed() {
        let dir = std::env::temp_dir().join(format!("qec-serve-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (d3, d5) = record_corpus(&dir);
        let server = Server::bind(&dir, &ServeConfig::default()).unwrap();
        let addr = server.local_addr();

        // Poison the snapshot lock exactly as a mid-request panic would: a
        // thread dies while holding the write guard.
        {
            let prior = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let lock = &server.state.snapshot;
            let _ = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let _guard = lock.write().unwrap_or_else(PoisonError::into_inner);
                        panic!("poison the snapshot lock");
                    })
                    .join()
            });
            std::panic::set_hook(prior);
            assert!(server.state.snapshot.is_poisoned(), "the panic must poison the lock");
        }

        let handle = std::thread::spawn(move || server.run());
        let mut client = Client::connect(addr).unwrap();
        let spec = |key: &str, decoder: Option<&str>| EvalSpec {
            key: key.to_string(),
            policy: "eraser+m".to_string(),
            mode: None,
            decode: Some(true),
            decoder: decoder.map(str::to_string),
        };

        // The daemon still serves: snapshot reads recover the poisoned guard.
        let ResponseKind::Eval(baseline) =
            client.request(RequestKind::Eval(spec(&d3, None))).unwrap()
        else {
            panic!("eval must succeed on a daemon with a poisoned snapshot lock")
        };

        // Unknown decoder label: typed `bad-request` naming the known labels,
        // answered on a connection that keeps serving.
        let ResponseKind::Error(error) =
            client.request(RequestKind::Eval(spec(&d3, Some("mwpm")))).unwrap()
        else {
            panic!("an unknown decoder must answer with a typed error")
        };
        assert_eq!(error.code, ErrorCode::BadRequest);
        assert!(error.message.contains("uf, lookup"), "{}", error.message);

        // Decoder/cell mismatch: typed `bad-request` at prepare time.
        let ResponseKind::Error(error) =
            client.request(RequestKind::Eval(spec(&d5, Some("lookup")))).unwrap()
        else {
            panic!("an unsupported decoder/cell pairing must answer with a typed error")
        };
        assert_eq!(error.code, ErrorCode::BadRequest);
        assert!(error.message.contains("distance 3"), "{}", error.message);

        // The same connection — both errors above left it serving — now
        // serves the selected backend, bit-identical to the replay row.
        let ResponseKind::Eval(served) =
            client.request(RequestKind::Eval(spec(&d3, Some("lookup")))).unwrap()
        else {
            panic!("a supported decoder selection must evaluate")
        };
        assert_eq!(served.result.decoder.as_deref(), Some("lookup"));
        let corpus = Corpus::open_existing(&dir).unwrap();
        let cell = load_entry(&corpus, corpus.lookup(&d3).unwrap()).unwrap();
        let factory = Arc::new(PolicyFactory::new(&cell.code, &calibration_for(&cell.header)));
        let backend =
            build_backend(Some(DecoderKind::Lookup), &cell.code, cell.header.rounds).unwrap();
        let replay = evaluate_cell(
            &cell,
            &factory,
            PolicyKind::EraserM,
            Some(&*backend),
            ReplayMode::OpenLoop,
        )
        .unwrap();
        let row =
            evaluation_row(&d3, &cell, PolicyKind::EraserM, Some(DecoderKind::Lookup), &replay);
        assert_eq!(served.result, row, "served row must equal the replay entry points' row");

        // No `decoder` in the request: the answer carries no `decoder` field
        // (byte-compatible with pre-field clients), and selecting `uf`
        // explicitly scores the identical metrics.
        let no_decoder_line =
            request_line(&Request { id: None, request: RequestKind::Eval(spec(&d3, None)) });
        let raw = client.send_raw(&no_decoder_line).unwrap();
        assert!(!raw.contains("\"decoder\""), "legacy rows must omit the decoder field: {raw}");
        let ResponseKind::Eval(uf) =
            client.request(RequestKind::Eval(spec(&d3, Some("uf")))).unwrap()
        else {
            panic!("uf selection must evaluate")
        };
        assert_eq!(uf.result.decoder.as_deref(), Some("uf"));
        assert_eq!(uf.result.metrics, baseline.result.metrics);

        let _ = client.request(RequestKind::Shutdown);
        handle.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contain_panic_passes_a_clean_dispatch_through() {
        let outcome = contain_panic(|| ResponseKind::Pong);
        assert_eq!(outcome, Ok(ResponseKind::Pong));
    }

    #[test]
    fn contain_panic_maps_a_panicking_dispatch_to_a_typed_internal_error() {
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let str_panic = contain_panic(|| panic!("decoder exploded"));
        let string_panic = contain_panic(|| panic!("shot {}", 7));
        std::panic::set_hook(prior);
        let error = str_panic.unwrap_err();
        assert_eq!(error.code, ErrorCode::Internal);
        assert!(error.message.contains("decoder exploded"), "{}", error.message);
        assert!(error.message.contains("connection closed"), "{}", error.message);
        let error = string_panic.unwrap_err();
        assert_eq!(error.code, ErrorCode::Internal);
        assert!(error.message.contains("shot 7"), "{}", error.message);
    }

    /// A thread that panics while holding the connection-queue lock poisons
    /// it; the queue must keep operating (recovered guards), not cascade the
    /// panic into every later `lock()`.
    #[test]
    fn conn_queue_survives_a_poisoned_lock() {
        let queue = Arc::new(ConnQueue::new());
        let poisoner = Arc::clone(&queue);
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the queue");
        })
        .join();
        std::panic::set_hook(prior);
        assert!(queue.inner.is_poisoned(), "the panic above must have poisoned the lock");
        queue.close(); // recovers the guard; would panic under `.expect(...)`
        assert!(queue.pop().is_none(), "a closed queue reports end-of-connections");
    }
}
