//! Serde round-trip tests for **every** request/response type documented in
//! `docs/SERVE_PROTOCOL.md`. Each documented wire shape is pinned here: a
//! protocol change that breaks a round trip (or a frozen tag) must fail this
//! suite before it can ship.

use qec_experiments::metrics::AggregateMetrics;
use qec_experiments::ReplayCellResult;
use qec_serve::{
    parse_request, parse_response, request_line, response_line, BatchItem, CellStat, ErrorCode,
    EvalResult, EvalSpec, Request, RequestKind, Response, ResponseKind, ServerStats, VerifiedCell,
    VersionInfo, WireError, PROTOCOL_VERSION,
};
use qec_trace::{CorpusEntry, DivergenceProfile};

fn sample_entry() -> CorpusEntry {
    CorpusEntry {
        key: "surface d=3 rounds=9 p=1e-3 lr=1e-1 shots=4 seed=7".to_string(),
        hash: "00ff00ff00ff00ff".to_string(),
        file: "shards/00/00ff00ff00ff00ff.qtr".to_string(),
        code: "surface-d3".to_string(),
        family: "surface".to_string(),
        distance: 3,
        rounds: 9,
        p: 1e-3,
        leakage_ratio: 0.1,
        shots: 4,
        seed: 7,
        policy: "eraser+m".to_string(),
        trace_schema: 1,
    }
}

fn sample_metrics() -> AggregateMetrics {
    AggregateMetrics {
        shots: 4,
        false_positives: 0.25,
        false_negatives: 1.5,
        data_lrcs: 2.0,
        ancilla_lrcs: 0.0,
        lrcs_per_round: 0.222,
        average_dlp: 0.01,
        final_dlp: 0.02,
        dlp_series: vec![0.0, 0.01, 0.02],
        inaccuracy_per_round: 0.19,
        total_time_ns: 12345.0,
        lrc_time_ns: 660.0,
        logical_error_rate: Some(0.25),
    }
}

fn sample_row() -> ReplayCellResult {
    let mut profile = DivergenceProfile::new(9);
    profile.add(Some(2), 7, 2);
    profile.add(None, 0, 0);
    ReplayCellResult {
        key: sample_entry().key,
        code: "surface-d3".to_string(),
        recorded_policy: "eraser+m".to_string(),
        policy: "gladiator+m".to_string(),
        decoder: None,
        shots: 4,
        rounds: 9,
        exact: false,
        divergent_shots: 1,
        live_match: None,
        divergence_profile: Some(profile),
        metrics: sample_metrics(),
    }
}

fn sample_eval_spec() -> EvalSpec {
    EvalSpec {
        key: sample_entry().key,
        policy: "gladiator+m".to_string(),
        mode: Some("closed-loop".to_string()),
        decode: Some(true),
        decoder: None,
    }
}

fn sample_stats() -> ServerStats {
    ServerStats {
        requests: 10,
        evals: 6,
        batch_evals: 1,
        cache_hits: 4,
        cache_misses: 2,
        cache_evictions: 1,
        cached_cells: 1,
        cache_capacity: 8,
        corpus_cells: 3,
        shared_passes: 5,
        suffixes_served: 17,
        peak_checkpoints: 2,
        active_connections: 3,
        max_connections: 32,
        queue_depth_hwm: 9,
        queue_limit: 256,
        shed_requests: 1,
        shed_connections: 2,
        corpus_reloads: 4,
        routed_requests: 11,
        fanout_hwm: 2,
        replica_errors: 1,
        replicas_up: 2,
        adaptive_rounds: 7,
        shots_allocated: 4096,
    }
}

#[track_caller]
fn roundtrip_request(kind: RequestKind) {
    let request = Request { id: Some(42), request: kind };
    let line = request_line(&request);
    assert_eq!(parse_request(&line).unwrap(), request, "wire line: {line}");
}

#[track_caller]
fn roundtrip_response(kind: ResponseKind) {
    let response = Response { id: Some(42), v: PROTOCOL_VERSION, response: kind };
    let line = response_line(&response);
    assert_eq!(parse_response(&line).unwrap(), response, "wire line: {line}");
}

#[test]
fn every_request_kind_round_trips() {
    roundtrip_request(RequestKind::Ping);
    roundtrip_request(RequestKind::Version);
    roundtrip_request(RequestKind::Stats);
    roundtrip_request(RequestKind::ListCells);
    roundtrip_request(RequestKind::StatCell { key: sample_entry().key });
    roundtrip_request(RequestKind::VerifyCell { key: sample_entry().key });
    roundtrip_request(RequestKind::Eval(sample_eval_spec()));
    roundtrip_request(RequestKind::BatchEval {
        evals: vec![
            sample_eval_spec(),
            EvalSpec {
                key: "k2".to_string(),
                policy: "ideal".to_string(),
                mode: None,
                decode: None,
                decoder: Some("lookup".to_string()),
            },
        ],
        per_item: None,
    });
    roundtrip_request(RequestKind::BatchEval {
        evals: vec![sample_eval_spec()],
        per_item: Some(true),
    });
    roundtrip_request(RequestKind::BatchEval {
        evals: vec![sample_eval_spec()],
        per_item: Some(false),
    });
    roundtrip_request(RequestKind::Shutdown);
}

#[test]
fn every_response_kind_round_trips() {
    roundtrip_response(ResponseKind::Pong);
    roundtrip_response(ResponseKind::Version(VersionInfo {
        server: "qec-serve 0.1.0".to_string(),
        git_describe: "unknown".to_string(),
        protocol: PROTOCOL_VERSION,
        trace_schema: 1,
        manifest_schema: 1,
        replay_schema: 2,
    }));
    roundtrip_response(ResponseKind::Stats(sample_stats()));
    roundtrip_response(ResponseKind::Cells(vec![sample_entry()]));
    roundtrip_response(ResponseKind::CellStat(CellStat {
        entry: sample_entry(),
        file_bytes: 4096,
        generator: "repro record 0.1.0".to_string(),
        git_describe: "unknown".to_string(),
    }));
    roundtrip_response(ResponseKind::Verified(VerifiedCell { key: sample_entry().key, shots: 4 }));
    roundtrip_response(ResponseKind::Eval(EvalResult { cached: true, result: sample_row() }));
    roundtrip_response(ResponseKind::Batch(vec![
        EvalResult { cached: false, result: sample_row() },
        EvalResult { cached: true, result: sample_row() },
    ]));
    roundtrip_response(ResponseKind::BatchItems(vec![
        BatchItem::Eval(EvalResult { cached: false, result: sample_row() }),
        BatchItem::Error(WireError::new(ErrorCode::UnknownCell, "no such cell `k2`")),
        BatchItem::Eval(EvalResult { cached: true, result: sample_row() }),
    ]));
    roundtrip_response(ResponseKind::ShuttingDown);
    for code in ErrorCode::ALL {
        roundtrip_response(ResponseKind::Error(WireError::new(code, "something happened")));
    }
}

#[test]
fn checkpoint_counters_keep_their_frozen_wire_names() {
    // The checkpoint counters were added after protocol v1 froze. Additive
    // response fields do not bump the version — old clients ignore them —
    // but once shipped their wire names are frozen like any other field.
    let rendered = serde_json::to_string(&sample_stats()).unwrap();
    for field in ["\"shared_passes\":5", "\"suffixes_served\":17", "\"peak_checkpoints\":2"] {
        assert!(rendered.contains(field), "{rendered}");
    }
}

#[test]
fn connection_and_backpressure_counters_keep_their_frozen_wire_names() {
    // The bounded-connection-model counters are additive like the checkpoint
    // counters above: no version bump, but frozen names once shipped.
    let rendered = serde_json::to_string(&sample_stats()).unwrap();
    for field in [
        "\"active_connections\":3",
        "\"max_connections\":32",
        "\"queue_depth_hwm\":9",
        "\"queue_limit\":256",
        "\"shed_requests\":1",
        "\"shed_connections\":2",
        "\"corpus_reloads\":4",
    ] {
        assert!(rendered.contains(field), "{rendered}");
    }
}

#[test]
fn router_counters_keep_their_frozen_wire_names() {
    // The qec-cluster router counters are additive like every stats field
    // since v1 froze: no version bump, but frozen names once shipped. A plain
    // daemon reports them as zeros; the router fills them.
    let rendered = serde_json::to_string(&sample_stats()).unwrap();
    for field in
        ["\"routed_requests\":11", "\"fanout_hwm\":2", "\"replica_errors\":1", "\"replicas_up\":2"]
    {
        assert!(rendered.contains(field), "{rendered}");
    }
}

#[test]
fn unavailable_error_code_has_the_documented_label() {
    // `unavailable` is the router's typed replica-failure code: additive, so
    // pre-cluster clients parse it as `Other` and treat it as opaque failure.
    assert_eq!(ErrorCode::Unavailable.label(), "unavailable");
    assert_eq!(ErrorCode::from_label("unavailable"), Some(ErrorCode::Unavailable));
    let rendered =
        serde_json::to_string(&WireError::new(ErrorCode::Unavailable, "replica 1 down")).unwrap();
    assert_eq!(rendered, r#"{"code":"unavailable","message":"replica 1 down"}"#);
}

#[test]
fn per_item_batches_have_the_documented_wire_shapes() {
    // `per_item` is an additive request field: absent unless the client sets
    // it, so a pre-per-item request line is byte-identical to what an old
    // client sends (and an old server parsing a new client's line simply
    // ignores the unknown field).
    let spec = EvalSpec {
        key: "k".to_string(),
        policy: "ideal".to_string(),
        mode: None,
        decode: None,
        decoder: None,
    };
    let legacy = serde_json::to_string(&RequestKind::BatchEval {
        evals: vec![spec.clone()],
        per_item: None,
    })
    .unwrap();
    assert!(!legacy.contains("per_item"), "absent when unset: {legacy}");
    let per_item =
        serde_json::to_string(&RequestKind::BatchEval { evals: vec![spec], per_item: Some(true) })
            .unwrap();
    assert!(per_item.contains("\"per_item\":true"), "{per_item}");
    // A server that predates `per_item` parses the field-bearing line fine
    // only via unknown-field tolerance; what THIS build must guarantee is
    // that a line WITHOUT the field parses as `per_item: None` (legacy
    // all-or-nothing semantics).
    let line = r#"{"id":1,"request":{"batch-eval":{"evals":[{"key":"k","policy":"ideal"}]}}}"#;
    let parsed = parse_request(line).unwrap();
    let RequestKind::BatchEval { per_item, .. } = parsed.request else { panic!("batch-eval") };
    assert_eq!(per_item, None);
    // Each `batch-items` entry is a single-key object: `eval` or `error`.
    let items = ResponseKind::BatchItems(vec![
        BatchItem::Eval(EvalResult { cached: true, result: sample_row() }),
        BatchItem::Error(WireError::new(ErrorCode::UnknownPolicy, "nope")),
    ]);
    let rendered = serde_json::to_string(&items).unwrap();
    assert!(rendered.starts_with("{\"batch-items\":[{\"eval\":"), "{rendered}");
    assert!(rendered.contains("{\"error\":{\"code\":\"unknown-policy\""), "{rendered}");
}

#[test]
fn batch_items_convert_cleanly_to_results() {
    let ok = BatchItem::Eval(EvalResult { cached: false, result: sample_row() });
    let err = BatchItem::Error(WireError::new(ErrorCode::UnknownCell, "gone"));
    assert!(ok.as_result().is_ok());
    assert!(err.as_result().is_err());
    assert!(!ok.into_result().unwrap().cached);
    assert_eq!(err.into_result().unwrap_err().code, ErrorCode::UnknownCell);
    let from: BatchItem = Err::<EvalResult, _>(WireError::new(ErrorCode::Internal, "x")).into();
    assert!(matches!(from, BatchItem::Error(_)));
}

#[test]
fn unknown_error_codes_from_newer_servers_stay_parsable() {
    // The versioning rules declare new error codes additive: a client must
    // treat them as opaque failures, not parse errors.
    let line =
        r#"{"id":null,"v":1,"response":{"error":{"code":"rate-limited","message":"later"}}}"#;
    let response = parse_response(line).unwrap();
    let ResponseKind::Error(error) = response.response else { panic!("error response") };
    assert_eq!(error.code, ErrorCode::Other("rate-limited".to_string()));
    assert_eq!(error.code.label(), "rate-limited");
    // And it re-serializes to the same label.
    let rendered = response_line(&Response {
        id: None,
        v: PROTOCOL_VERSION,
        response: ResponseKind::Error(error),
    });
    assert!(rendered.contains("\"rate-limited\""), "{rendered}");
    // from_label stays restricted to codes this build can emit.
    assert_eq!(ErrorCode::from_label("rate-limited"), None);
}

#[test]
fn frozen_wire_tags_do_not_drift() {
    // These exact tags are frozen by docs/SERVE_PROTOCOL.md; renaming a Rust
    // variant must not rename a wire tag.
    let cases: Vec<(String, &str)> = vec![
        (serde_json::to_string(&RequestKind::Ping).unwrap(), "\"ping\""),
        (serde_json::to_string(&RequestKind::ListCells).unwrap(), "\"list-cells\""),
        (serde_json::to_string(&RequestKind::Shutdown).unwrap(), "\"shutdown\""),
        (serde_json::to_string(&ResponseKind::Pong).unwrap(), "\"pong\""),
        (serde_json::to_string(&ResponseKind::ShuttingDown).unwrap(), "\"shutting-down\""),
    ];
    for (rendered, expected) in cases {
        assert_eq!(rendered, expected);
    }
    for (kind, tag) in [
        (RequestKind::StatCell { key: "k".to_string() }, "stat-cell"),
        (RequestKind::VerifyCell { key: "k".to_string() }, "verify-cell"),
        (RequestKind::Eval(sample_eval_spec()), "eval"),
        (RequestKind::BatchEval { evals: vec![], per_item: None }, "batch-eval"),
    ] {
        let rendered = serde_json::to_string(&kind).unwrap();
        assert!(rendered.starts_with(&format!("{{\"{tag}\":")), "{rendered}");
    }
    let rendered = serde_json::to_string(&ResponseKind::BatchItems(vec![])).unwrap();
    assert!(rendered.starts_with("{\"batch-items\":"), "{rendered}");
    assert_eq!(
        ErrorCode::ALL.map(|code| code.label().to_string()),
        [
            "bad-request",
            "unknown-cell",
            "unknown-policy",
            "corrupt-corpus",
            "overloaded",
            "unavailable",
            "internal"
        ]
    );
}

#[test]
fn eval_result_metrics_serialize_exactly_like_replay_report_rows() {
    // The acceptance contract behind "served evals are byte-identical to
    // `repro replay` rows": the row embedded in an eval response serializes
    // through the same `ReplayCellResult` impl the replay report uses.
    let row = sample_row();
    let report_row_json = serde_json::to_string(&row).unwrap();
    let response = ResponseKind::Eval(EvalResult { cached: false, result: row });
    let response_json = serde_json::to_string(&response).unwrap();
    assert!(
        response_json.contains(&report_row_json),
        "eval response must embed the replay row verbatim:\n{response_json}\n{report_row_json}"
    );
}

#[test]
fn unknown_tags_and_bad_envelopes_are_rejected() {
    assert!(parse_request(r#"{"id":null,"request":"frobnicate"}"#).is_err());
    assert!(parse_request(r#"{"id":null,"request":{"frobnicate":{}}}"#).is_err());
    assert!(
        parse_request(r#"{"id":null,"request":{"eval":{"key":"k"}}}"#).is_err(),
        "missing policy"
    );
    assert!(parse_response(r#"{"id":null,"v":1,"response":"frobnicate"}"#).is_err());
    assert!(parse_response(r#"{"id":null,"response":"pong"}"#).is_err(), "missing v");
    // Error context names the offending field.
    let err =
        parse_request(r#"{"id":null,"request":{"eval":{"key":7,"policy":"x"}}}"#).unwrap_err();
    assert!(err.message.contains("key"), "{err}");
}
