//! Daemon lifecycle tests: in-process server behavior (typed errors, cache
//! hits, batch ordering) and the full `repro serve`/`repro query` binary flow,
//! including the acceptance gate that a served `eval` is **byte-identical** to
//! the `repro replay` report row for the same `cell × policy`.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

use leakage_speculation::PolicyKind;
use qec_experiments::replay::record_into_corpus;
use qec_experiments::scenario::{CodeFamily, Scenario};
use qec_experiments::ReplayReport;
use qec_serve::{
    Client, ErrorCode, EvalSpec, RequestKind, ResponseKind, ServeConfig, Server, PROTOCOL_VERSION,
};
use qec_trace::Corpus;

// ---------------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------------

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qec-serve-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Records a tiny two-cell corpus (d=3 and d=5) directly through the library.
fn record_corpus(dir: &Path) -> Vec<String> {
    let mut corpus = Corpus::open(dir).unwrap();
    let mut keys = Vec::new();
    for distance in [3usize, 5] {
        let scenario = Scenario {
            code: CodeFamily::Surface,
            distance,
            rounds: 4,
            p: 1e-3,
            leakage_ratio: 0.1,
            policy: PolicyKind::EraserM,
            shots: 3,
            seed: 11,
            decode: false,
        };
        let entry =
            record_into_corpus(&mut corpus, &scenario, PolicyKind::EraserM, "server test").unwrap();
        keys.push(entry.key);
    }
    corpus.save().unwrap();
    keys
}

/// Starts an in-process server on an ephemeral port and returns its address
/// plus the join handle of the accept loop.
fn start_in_process(dir: &Path, cache_cells: usize) -> (String, std::thread::JoinHandle<()>) {
    let config =
        ServeConfig { addr: "127.0.0.1:0".to_string(), cache_cells, ..ServeConfig::default() };
    let server = Server::bind(dir, &config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: &str) {
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.request(RequestKind::Shutdown).unwrap(), ResponseKind::ShuttingDown);
}

fn eval_spec(key: &str, policy: &str, closed_loop: bool, decode: bool) -> EvalSpec {
    EvalSpec {
        key: key.to_string(),
        policy: policy.to_string(),
        mode: closed_loop.then(|| "closed-loop".to_string()),
        decode: decode.then_some(true),
    }
}

// ---------------------------------------------------------------------------------
// in-process lifecycle
// ---------------------------------------------------------------------------------

#[test]
fn malformed_requests_get_typed_errors_and_never_kill_the_connection() {
    let dir = tmp_dir("malformed");
    record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    for garbage in [
        "this is not json",
        "{",
        "[1,2,3]",
        r#"{"id":null,"request":"frobnicate"}"#,
        r#"{"id":null,"request":{"eval":{"key":"k"}}}"#,
        r#"{"no":"envelope"}"#,
    ] {
        let line = client.send_raw(garbage).unwrap();
        let response = qec_serve::parse_response(&line).unwrap();
        let ResponseKind::Error(error) = response.response else {
            panic!("{garbage:?} must yield an error response, got {line}");
        };
        assert_eq!(error.code, ErrorCode::BadRequest, "{garbage:?} -> {error}");
    }
    // The connection survived all of it.
    assert_eq!(client.request(RequestKind::Ping).unwrap(), ResponseKind::Pong);
    // Typed domain errors, not bad-request.
    let ResponseKind::Error(error) = client
        .request(RequestKind::Eval(eval_spec("no such cell", "ideal", false, false)))
        .unwrap()
    else {
        panic!("unknown cell must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownCell);
    let key = {
        let corpus = Corpus::open_existing(&dir).unwrap();
        corpus.entries()[0].key.clone()
    };
    let ResponseKind::Error(error) =
        client.request(RequestKind::Eval(eval_spec(&key, "not-a-policy", false, false))).unwrap()
    else {
        panic!("unknown policy must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    let ResponseKind::Error(error) = client
        .request(RequestKind::Eval(EvalSpec {
            key: key.clone(),
            policy: "ideal".to_string(),
            mode: Some("sideways".to_string()),
            decode: None,
        }))
        .unwrap()
    else {
        panic!("unknown mode must error");
    };
    assert_eq!(error.code, ErrorCode::BadRequest);
    drop(client);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeated_evals_hit_the_cache_and_say_so() {
    let dir = tmp_dir("cache-hits");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let eval = |client: &mut Client, key: &str| -> bool {
        match client
            .request(RequestKind::Eval(eval_spec(key, "gladiator+m", false, false)))
            .unwrap()
        {
            ResponseKind::Eval(result) => result.cached,
            other => panic!("expected eval result, got {other:?}"),
        }
    };
    assert!(!eval(&mut client, &keys[0]), "first touch loads from disk");
    assert!(eval(&mut client, &keys[0]), "second touch must be a cache hit");
    assert!(!eval(&mut client, &keys[1]));
    let ResponseKind::Stats(stats) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.cached_cells, 2);
    assert_eq!(stats.evals, 3);
    assert_eq!(stats.corpus_cells, 2);
    assert!(stats.requests >= 4);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_eval_returns_results_in_request_order_and_is_all_or_nothing() {
    let dir = tmp_dir("batch");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    // Deliberately interleaved ordering across cells and policies.
    let evals: Vec<EvalSpec> = [
        (&keys[1], "ideal"),
        (&keys[0], "gladiator+m"),
        (&keys[1], "eraser+m"),
        (&keys[0], "ideal"),
    ]
    .into_iter()
    .map(|(key, policy)| eval_spec(key, policy, false, false))
    .collect();
    let ResponseKind::Batch(results) =
        client.request(RequestKind::BatchEval { evals: evals.clone() }).unwrap()
    else {
        panic!("batch");
    };
    assert_eq!(results.len(), evals.len());
    for (result, spec) in results.iter().zip(&evals) {
        assert_eq!(result.result.key, spec.key, "results must follow request order");
        assert_eq!(result.result.policy, spec.policy);
    }
    // Batch answers match single-eval answers for the same pairing.
    let ResponseKind::Eval(single) = client.request(RequestKind::Eval(evals[1].clone())).unwrap()
    else {
        panic!("eval");
    };
    assert_eq!(single.result, results[1].result);
    // One bad pairing fails the whole batch with its index in the message.
    let mut bad = evals.clone();
    bad[2].policy = "not-a-policy".to_string();
    let ResponseKind::Error(error) = client.request(RequestKind::BatchEval { evals: bad }).unwrap()
    else {
        panic!("bad batch must error");
    };
    assert_eq!(error.code, ErrorCode::UnknownPolicy);
    assert!(error.message.contains("evals[2]"), "{error}");
    let ResponseKind::Error(error) =
        client.request(RequestKind::BatchEval { evals: Vec::new() }).unwrap()
    else {
        panic!("empty batch must error");
    };
    assert_eq!(error.code, ErrorCode::BadRequest);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Same-cell closed-loop batch members are evaluated as ONE shared-checkpoint
/// candidate set. That grouping must be invisible in the results — each row
/// equals the solo eval of the same pairing — while the additive `stats`
/// counters record that the shared path ran.
#[test]
fn grouped_closed_loop_batches_match_solo_evals_and_advance_counters() {
    let dir = tmp_dir("batch-shared");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let ResponseKind::Stats(before) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    assert_eq!(before.shared_passes, 0, "no shared work before the batch");
    assert_eq!(before.suffixes_served, 0);
    // Three closed-loop members on one cell (grouped), one open-loop member
    // on the other (stays solo), interleaved to exercise order restoration.
    let evals: Vec<EvalSpec> = vec![
        eval_spec(&keys[0], "gladiator+m", true, true),
        eval_spec(&keys[1], "ideal", false, false),
        eval_spec(&keys[0], "always-lrc", true, true),
        eval_spec(&keys[0], "mlr-only", true, true),
    ];
    let ResponseKind::Batch(results) =
        client.request(RequestKind::BatchEval { evals: evals.clone() }).unwrap()
    else {
        panic!("batch");
    };
    assert_eq!(results.len(), evals.len());
    for (result, spec) in results.iter().zip(&evals) {
        assert_eq!(result.result.key, spec.key, "results must follow request order");
        assert_eq!(result.result.policy, spec.policy);
        let ResponseKind::Eval(solo) = client.request(RequestKind::Eval(spec.clone())).unwrap()
        else {
            panic!("eval");
        };
        assert_eq!(solo.result, result.result, "{}: grouped row must equal solo row", spec.policy);
    }
    let ResponseKind::Stats(after) = client.request(RequestKind::Stats).unwrap() else {
        panic!("stats");
    };
    // always-lrc diverges against an eraser+m recording, so the group forced
    // at least one prefix pass and served one suffix per divergent member.
    // The solo re-evals above run outside the batch path and add nothing.
    assert!(after.shared_passes > 0, "grouped batch must run the shared path");
    assert!(after.suffixes_served >= after.shared_passes);
    assert!(after.peak_checkpoints >= 1);
    assert_eq!(after.evals, before.evals + 8, "4 batch members + 4 solo evals");
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corpus_requests_serve_manifest_stat_and_verify() {
    let dir = tmp_dir("corpus-reqs");
    let keys = record_corpus(&dir);
    let (addr, handle) = start_in_process(&dir, 2);
    let mut client = Client::connect(&addr).unwrap();
    let ResponseKind::Cells(cells) = client.request(RequestKind::ListCells).unwrap() else {
        panic!("cells");
    };
    assert_eq!(cells.iter().map(|c| c.key.clone()).collect::<Vec<_>>(), keys);
    let ResponseKind::CellStat(stat) =
        client.request(RequestKind::StatCell { key: keys[0].clone() }).unwrap()
    else {
        panic!("stat");
    };
    assert_eq!(stat.entry.key, keys[0]);
    assert!(stat.file_bytes > 0);
    assert_eq!(stat.generator, "server test");
    let ResponseKind::Verified(verified) =
        client.request(RequestKind::VerifyCell { key: keys[0].clone() }).unwrap()
    else {
        panic!("verify");
    };
    assert_eq!(verified.shots, 3);
    let ResponseKind::Version(version) = client.request(RequestKind::Version).unwrap() else {
        panic!("version");
    };
    assert_eq!(version.protocol, PROTOCOL_VERSION);
    assert_eq!(version.trace_schema, qec_trace::TRACE_SCHEMA_VERSION);
    // Corrupt the second cell's shard on disk: verify-cell must catch it
    // (it re-reads from disk and bypasses the cache).
    let corpus = Corpus::open_existing(&dir).unwrap();
    let shard = corpus.trace_path(&corpus.entries()[1].clone());
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&shard, &bytes).unwrap();
    let ResponseKind::Error(error) =
        client.request(RequestKind::VerifyCell { key: keys[1].clone() }).unwrap()
    else {
        panic!("corrupt shard must fail verification");
    };
    assert_eq!(error.code, ErrorCode::CorruptCorpus);
    shutdown(&addr);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn binding_an_empty_or_missing_corpus_fails() {
    let dir = tmp_dir("empty");
    assert!(Server::bind(&dir, &ServeConfig::default()).is_err(), "missing corpus");
    let corpus = Corpus::open(&dir).unwrap();
    corpus.save().unwrap();
    let err = Server::bind(&dir, &ServeConfig::default()).unwrap_err();
    assert!(err.contains("empty"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------------
// full binary flow: repro serve / repro query
// ---------------------------------------------------------------------------------

fn repro(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    cmd
}

fn run_ok(args: &[&str]) -> Output {
    let output = repro(args).output().expect("spawn repro");
    assert_eq!(
        output.status.code(),
        Some(0),
        "{args:?} stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Starts `repro serve` on an ephemeral port and parses the announced address
/// from its first stdout line.
fn spawn_daemon(corpus: &str) -> (Child, String) {
    let mut child = repro(&["serve", "--corpus", corpus, "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read announce line");
    let addr = line
        .strip_prefix("qec-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line: {line}"))
        .split_whitespace()
        .next()
        .expect("address token")
        .to_string();
    (child, addr)
}

#[test]
fn served_evals_are_byte_identical_to_repro_replay_rows() {
    let dir = tmp_dir("bin-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus");
    let corpus_str = corpus.to_str().unwrap();
    run_ok(&[
        "record",
        "--grid",
        "d=3",
        "p=1e-3",
        "policy=eraser+m",
        "--shots",
        "4",
        "--rounds-per-distance",
        "2",
        "--seed",
        "7",
        "--corpus",
        corpus_str,
    ]);

    // Reference rows straight from the CLI, in both replay modes.
    let open_out = dir.join("open.json");
    run_ok(&[
        "replay",
        "--corpus",
        corpus_str,
        "--policy",
        "eraser+m,gladiator+m",
        "--out",
        open_out.to_str().unwrap(),
    ]);
    let closed_out = dir.join("closed.json");
    run_ok(&[
        "replay",
        "--corpus",
        corpus_str,
        "--policy",
        "eraser+m,gladiator+m",
        "--closed-loop",
        "--decode",
        "--out",
        closed_out.to_str().unwrap(),
    ]);
    let open: ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&open_out).unwrap()).unwrap();
    let closed: ReplayReport =
        serde_json::from_str(&std::fs::read_to_string(&closed_out).unwrap()).unwrap();

    let (mut child, addr) = spawn_daemon(corpus_str);
    let query_eval = |policy: &str, closed_loop: bool, decode: bool| -> (bool, String) {
        let key = &open.results[0].key;
        let mut args = vec!["query", "--addr", &addr, "eval", "--key", key, "--policy", policy];
        if closed_loop {
            args.push("--closed-loop");
        }
        if decode {
            args.push("--decode");
        }
        let output = run_ok(&args);
        let line = String::from_utf8_lossy(&output.stdout).into_owned();
        let response = qec_serve::parse_response(line.trim()).expect("query stdout parses");
        match response.response {
            ResponseKind::Eval(result) => {
                (result.cached, serde_json::to_string(&result.result).unwrap())
            }
            other => panic!("expected eval response, got {other:?}"),
        }
    };

    // The acceptance gate: served rows byte-identical to CLI replay rows, for
    // both modes, both policies (incl. closed-loop decoded LER).
    for (index, row) in open.results.iter().enumerate() {
        let (_, served) = query_eval(&row.policy, false, false);
        let expected = serde_json::to_string(row).unwrap();
        assert_eq!(served, expected, "open-loop row {index} must match the CLI");
    }
    for (index, row) in closed.results.iter().enumerate() {
        let (cached, served) = query_eval(&row.policy, true, true);
        assert!(cached, "the cell stayed hot across queries");
        let expected = serde_json::to_string(row).unwrap();
        assert_eq!(served, expected, "closed-loop row {index} must match the CLI");
    }

    // Repeated queries skipped the corpus reload: one miss, the rest hits.
    let stats_out = run_ok(&["query", "--addr", &addr, "stats"]);
    let stats_line = String::from_utf8_lossy(&stats_out.stdout).into_owned();
    let response = qec_serve::parse_response(stats_line.trim()).unwrap();
    let ResponseKind::Stats(stats) = response.response else { panic!("stats") };
    assert_eq!(stats.cache_misses, 1);
    assert!(stats.cache_hits >= 3, "stats: {stats:?}");

    // query exits 1 on a server-side error but prints the typed response.
    let bad = repro(&["query", "--addr", &addr, "eval", "--key", "nope", "--policy", "ideal"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stdout).contains("unknown-cell"));

    // Clean shutdown: the daemon process exits 0.
    run_ok(&["query", "--addr", &addr, "shutdown"]);
    let status = child.wait().expect("daemon exit");
    assert_eq!(status.code(), Some(0), "daemon must exit cleanly after shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_query_reject_bad_usage() {
    for args in [
        &["serve"][..],         // missing --corpus
        &["serve", "--corpus"], // missing value
        &["serve", "--corpus", "dir", "--cache-cells", "0"],
        &["serve", "--corpus", "dir", "--frobnicate"],
        &["query"], // missing --addr
        &["query", "--addr", "127.0.0.1:1", "frobnicate"],
        &["query", "--addr", "127.0.0.1:1", "eval"], // missing key/policy
        &["query", "--addr", "127.0.0.1:1", "eval", "--key", "k"],
        &["query", "--addr", "127.0.0.1:1", "eval", "--key", "k", "--policy", "bogus"],
        &["query", "--addr", "127.0.0.1:1", "batch-eval"],
        &["query", "--addr", "127.0.0.1:1", "ping", "extra"],
        // Flags the action cannot consume are usage errors, never silently
        // ignored (strict-CLI contract).
        &["query", "--addr", "127.0.0.1:1", "ping", "--key", "k"],
        &["query", "--addr", "127.0.0.1:1", "shutdown", "--decode"],
        &["query", "--addr", "127.0.0.1:1", "stats", "--policy", "ideal"],
        &["query", "--addr", "127.0.0.1:1", "stat", "--key", "k", "--closed-loop"],
    ] {
        let output = repro(args).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "{args:?} must exit 2");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("usage: repro"),
            "{args:?} must print usage"
        );
    }
    // A fine command line against a dead server is a runtime failure (1).
    let output = repro(&["query", "--addr", "127.0.0.1:1", "ping"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
    // Serving a missing corpus is a runtime failure too.
    let output = repro(&["serve", "--corpus", "/nonexistent-corpus-dir"]).output().unwrap();
    assert_eq!(output.status.code(), Some(1));
}
