//! Device-level leakage characterization (substitute for the paper's IBM experiments).
//!
//! Section 2.3 of the paper injects leakage on IBM hardware (Lagos/Jakarta/Perth, via
//! Qiskit Pulse) and measures two effects that calibrate the simulator's noise model:
//!
//! 1. a CNOT whose control is leaked toggles its target between |0⟩ and |1⟩,
//!    producing a ≈50 % bit-flip (Figure 3a), and
//! 2. repeated CNOTs spread and accumulate leakage when a leaked qubit is present,
//!    while the background population stays low without injection (Figure 3c/d).
//!
//! Pulse-level access to those machines was retired in 2024 and is unavailable here, so
//! this module provides a [`DeviceModel`] that reproduces the *measured behaviour*
//! directly; the Figure 3 benchmark regenerates the same curves from this model.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::noise::NoiseParams;
use crate::pauli::Pauli;

/// Outcome statistics of the leaked-control CNOT experiment (Figure 3a).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakedCnotStats {
    /// Number of shots executed.
    pub shots: usize,
    /// Probability of measuring the target in |1⟩.
    pub p_target_one: f64,
    /// Probability that the target ended up leaked itself (leakage transport).
    pub p_target_leaked: f64,
}

/// A two-qubit device model calibrated to the paper's IBM characterization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    noise: NoiseParams,
}

impl DeviceModel {
    /// Builds a device model from the circuit-level noise parameters.
    #[must_use]
    pub fn new(noise: NoiseParams) -> Self {
        DeviceModel { noise }
    }

    /// The underlying noise parameters.
    #[must_use]
    pub fn noise(&self) -> &NoiseParams {
        &self.noise
    }

    /// Repeats the single-CNOT experiment of Figure 3(a)/(b) with the control qubit
    /// initialized in |2⟩ and reports the target outcome statistics.
    #[must_use]
    pub fn leaked_control_cnot(&self, shots: usize, seed: u64) -> LeakedCnotStats {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ones = 0usize;
        let mut leaked = 0usize;
        for _ in 0..shots {
            let mut target_one = false;
            let mut target_leaked = false;
            // Malfunctioning CNOT: leakage transport or a uniformly random Pauli.
            if rng.gen_bool(self.noise.mobility) {
                target_leaked = true;
            } else if Pauli::random_uniform(&mut rng).has_x() {
                target_one = true;
            }
            // Readout error on the target.
            if rng.gen_bool(self.noise.p) {
                target_one = !target_one;
            }
            if target_leaked {
                // A leaked target reads out randomly.
                target_one = rng.gen_bool(0.5);
                leaked += 1;
            }
            if target_one {
                ones += 1;
            }
        }
        LeakedCnotStats {
            shots,
            p_target_one: ones as f64 / shots as f64,
            p_target_leaked: leaked as f64 / shots as f64,
        }
    }

    /// Repeats the leakage-accumulation experiment of Figure 3(c)/(d): `k` consecutive
    /// CNOTs between a fixed control/target pair, optionally injecting leakage on the
    /// control before the first gate. Returns the measured leakage population of the
    /// pair after each gate, averaged over `shots` repetitions.
    #[must_use]
    pub fn leakage_accumulation(
        &self,
        num_cnots: usize,
        inject_initial_leakage: bool,
        shots: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut population = vec![0.0f64; num_cnots];
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..shots {
            let mut control_leaked = inject_initial_leakage;
            let mut target_leaked = false;
            for (step, slot) in population.iter_mut().enumerate() {
                let _ = step;
                // Gate-induced leakage on either operand.
                if rng.gen_bool(self.noise.p_leak()) {
                    if rng.gen_bool(0.5) {
                        control_leaked = true;
                    } else {
                        target_leaked = true;
                    }
                }
                // Leakage transport through the malfunctioning gate.
                if control_leaked && !target_leaked && rng.gen_bool(self.noise.mobility) {
                    target_leaked = true;
                }
                if target_leaked && !control_leaked && rng.gen_bool(self.noise.mobility) {
                    control_leaked = true;
                }
                let leaked_count = usize::from(control_leaked) + usize::from(target_leaked);
                *slot += leaked_count as f64 / 2.0;
            }
        }
        for slot in &mut population {
            *slot /= shots as f64;
        }
        population
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DeviceModel {
        DeviceModel::new(NoiseParams::default())
    }

    #[test]
    fn leaked_control_produces_roughly_half_bit_flips() {
        let stats = model().leaked_control_cnot(20_000, 13);
        // 10% of shots transport leakage (-> random readout), the rest see a uniform
        // Pauli, so the |1> probability stays close to 0.5 overall.
        assert!(
            (stats.p_target_one - 0.5).abs() < 0.05,
            "expected ~50% bit flips, got {}",
            stats.p_target_one
        );
        assert!(
            (stats.p_target_leaked - 0.1).abs() < 0.02,
            "leakage transport should match the mobility parameter, got {}",
            stats.p_target_leaked
        );
    }

    #[test]
    fn accumulation_grows_with_injection_and_stays_low_without() {
        let m = model();
        let with = m.leakage_accumulation(40, true, 4_000, 7);
        let without = m.leakage_accumulation(40, false, 4_000, 7);
        assert!(
            with[0] >= 0.45,
            "with an injected leak at least the control (half the pair) is leaked"
        );
        assert!(
            with.last().expect("non-empty") > &with[0],
            "leakage population must grow with repeated CNOTs when injected"
        );
        assert!(
            without.last().expect("non-empty") < &0.05,
            "background leakage population must stay low without injection"
        );
        assert!(
            with.last().expect("non-empty") > &(without.last().expect("non-empty") * 5.0),
            "injected runs must accumulate much more leakage than background"
        );
    }

    #[test]
    fn accumulation_population_is_monotone_on_average() {
        let m = model();
        let curve = m.leakage_accumulation(30, true, 8_000, 21);
        // Smoothness check: later thirds should not drop below earlier thirds.
        let first: f64 = curve[..10].iter().sum::<f64>() / 10.0;
        let last: f64 = curve[20..].iter().sum::<f64>() / 10.0;
        assert!(last >= first);
    }
}
