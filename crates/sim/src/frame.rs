//! Pauli frames and leakage flags for all physical qubits of a code.

use serde::{Deserialize, Serialize};

use crate::pauli::Pauli;
use qec_codes::{CheckId, DataQubitId};

/// Pauli frames (X/Z error components) and leak flags for every physical qubit.
///
/// Data qubits keep their frame across rounds; ancilla (parity) qubits are measured and
/// reset every round so only their *leak* flag persists — their within-round frame is
/// local to the round executor.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubitFrames {
    data_x: Vec<bool>,
    data_z: Vec<bool>,
    data_leak: Vec<bool>,
    ancilla_leak: Vec<bool>,
}

// Hand-written so `clone_from` reuses the destination's allocations: checkpoint
// restore in closed-loop replay copies frames into an existing simulator many
// times per shot, and the derived impl would reallocate all four vectors on
// every restore.
impl Clone for QubitFrames {
    fn clone(&self) -> Self {
        QubitFrames {
            data_x: self.data_x.clone(),
            data_z: self.data_z.clone(),
            data_leak: self.data_leak.clone(),
            ancilla_leak: self.ancilla_leak.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.data_x.clone_from(&source.data_x);
        self.data_z.clone_from(&source.data_z);
        self.data_leak.clone_from(&source.data_leak);
        self.ancilla_leak.clone_from(&source.ancilla_leak);
    }
}

impl QubitFrames {
    /// Fresh, error-free frames for `num_data` data qubits and `num_ancilla` parity qubits.
    #[must_use]
    pub fn new(num_data: usize, num_ancilla: usize) -> Self {
        QubitFrames {
            data_x: vec![false; num_data],
            data_z: vec![false; num_data],
            data_leak: vec![false; num_data],
            ancilla_leak: vec![false; num_ancilla],
        }
    }

    /// Clears every frame and leak flag in place (no reallocation), leaving the
    /// frames identical to freshly constructed ones.
    pub fn clear(&mut self) {
        for flags in
            [&mut self.data_x, &mut self.data_z, &mut self.data_leak, &mut self.ancilla_leak]
        {
            for flag in flags.iter_mut() {
                *flag = false;
            }
        }
    }

    /// Number of data qubits tracked.
    #[must_use]
    pub fn num_data(&self) -> usize {
        self.data_x.len()
    }

    /// Number of ancilla qubits tracked.
    #[must_use]
    pub fn num_ancilla(&self) -> usize {
        self.ancilla_leak.len()
    }

    /// Apply a Pauli to a data qubit's frame.
    pub fn apply_data_pauli(&mut self, q: DataQubitId, p: Pauli) {
        if p.has_x() {
            self.data_x[q] = !self.data_x[q];
        }
        if p.has_z() {
            self.data_z[q] = !self.data_z[q];
        }
    }

    /// X component of a data qubit's frame.
    #[must_use]
    pub fn data_has_x(&self, q: DataQubitId) -> bool {
        self.data_x[q]
    }

    /// Z component of a data qubit's frame.
    #[must_use]
    pub fn data_has_z(&self, q: DataQubitId) -> bool {
        self.data_z[q]
    }

    /// Current Pauli on a data qubit.
    #[must_use]
    pub fn data_pauli(&self, q: DataQubitId) -> Pauli {
        Pauli::from_components(self.data_x[q], self.data_z[q])
    }

    /// Leak flag of a data qubit.
    #[must_use]
    pub fn data_leaked(&self, q: DataQubitId) -> bool {
        self.data_leak[q]
    }

    /// Set the leak flag of a data qubit.
    pub fn set_data_leaked(&mut self, q: DataQubitId, leaked: bool) {
        self.data_leak[q] = leaked;
    }

    /// Leak flag of an ancilla qubit (indexed by its check id).
    #[must_use]
    pub fn ancilla_leaked(&self, c: CheckId) -> bool {
        self.ancilla_leak[c]
    }

    /// Set the leak flag of an ancilla qubit.
    pub fn set_ancilla_leaked(&mut self, c: CheckId, leaked: bool) {
        self.ancilla_leak[c] = leaked;
    }

    /// Number of currently leaked data qubits.
    #[must_use]
    pub fn leaked_data_count(&self) -> usize {
        self.data_leak.iter().filter(|&&l| l).count()
    }

    /// Number of currently leaked ancilla qubits.
    #[must_use]
    pub fn leaked_ancilla_count(&self) -> usize {
        self.ancilla_leak.iter().filter(|&&l| l).count()
    }

    /// Snapshot of the data leak flags.
    #[must_use]
    pub fn data_leak_flags(&self) -> Vec<bool> {
        self.data_leak.clone()
    }

    /// Borrowed view of the data leak flags (allocation-free).
    #[must_use]
    pub fn data_leaks(&self) -> &[bool] {
        &self.data_leak
    }

    /// Borrowed view of the ancilla leak flags (allocation-free).
    #[must_use]
    pub fn ancilla_leaks(&self) -> &[bool] {
        &self.ancilla_leak
    }

    /// Snapshot of the ancilla leak flags.
    #[must_use]
    pub fn ancilla_leak_flags(&self) -> Vec<bool> {
        self.ancilla_leak.clone()
    }

    /// Snapshot of the data X frames (bit-flip components).
    #[must_use]
    pub fn data_x_frames(&self) -> Vec<bool> {
        self.data_x.clone()
    }

    /// Snapshot of the data Z frames (phase-flip components).
    #[must_use]
    pub fn data_z_frames(&self) -> Vec<bool> {
        self.data_z.clone()
    }

    /// Parity of the X components over a set of data qubits (flips Z-type checks and
    /// Z-basis logical measurements).
    #[must_use]
    pub fn x_parity(&self, support: &[DataQubitId]) -> bool {
        support.iter().filter(|&&q| self.data_x[q]).count() % 2 == 1
    }

    /// Parity of the Z components over a set of data qubits.
    #[must_use]
    pub fn z_parity(&self, support: &[DataQubitId]) -> bool {
        support.iter().filter(|&&q| self.data_z[q]).count() % 2 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frames_are_clean() {
        let f = QubitFrames::new(5, 3);
        assert_eq!(f.num_data(), 5);
        assert_eq!(f.num_ancilla(), 3);
        assert_eq!(f.leaked_data_count(), 0);
        assert_eq!(f.leaked_ancilla_count(), 0);
        assert!(!f.x_parity(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn applying_pauli_twice_cancels() {
        let mut f = QubitFrames::new(2, 0);
        f.apply_data_pauli(0, Pauli::Y);
        assert_eq!(f.data_pauli(0), Pauli::Y);
        f.apply_data_pauli(0, Pauli::Y);
        assert_eq!(f.data_pauli(0), Pauli::I);
    }

    #[test]
    fn parities_track_supports() {
        let mut f = QubitFrames::new(4, 0);
        f.apply_data_pauli(1, Pauli::X);
        f.apply_data_pauli(3, Pauli::Z);
        assert!(f.x_parity(&[0, 1]));
        assert!(!f.x_parity(&[0, 2]));
        assert!(f.z_parity(&[3]));
        assert!(!f.z_parity(&[1, 2]));
    }

    #[test]
    fn clone_from_matches_clone_and_reuses_capacity() {
        let mut src = QubitFrames::new(5, 3);
        src.apply_data_pauli(1, Pauli::X);
        src.apply_data_pauli(2, Pauli::Z);
        src.set_data_leaked(4, true);
        src.set_ancilla_leaked(0, true);

        let mut dst = QubitFrames::new(5, 3);
        let ptr_before = dst.data_x.as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst, src.clone());
        assert_eq!(dst.data_x.as_ptr(), ptr_before, "clone_from must reuse the allocation");
    }

    #[test]
    fn leak_flags_are_independent_of_frames() {
        let mut f = QubitFrames::new(3, 2);
        f.set_data_leaked(2, true);
        f.set_ancilla_leaked(0, true);
        assert!(f.data_leaked(2));
        assert!(f.ancilla_leaked(0));
        assert_eq!(f.leaked_data_count(), 1);
        assert_eq!(f.leaked_ancilla_count(), 1);
        assert_eq!(f.data_pauli(2), Pauli::I);
    }
}
