//! Leakage-aware Pauli-frame stabilizer simulator.
//!
//! This crate implements the noisy QEC substrate the GLADIATOR paper evaluates on: a
//! Pauli-frame simulator for CSS stabilizer codes extended with a classical *leakage*
//! flag per physical qubit. It reproduces the circuit-level noise model of Section 6 of
//! the paper:
//!
//! * data depolarization and environment-induced leakage at the start of every round,
//! * two-qubit depolarizing noise and gate-induced leakage on every CNOT,
//! * malfunctioning CNOTs when an operand is leaked — a uniformly random Pauli on the
//!   healthy operand (the 50 % bit-flip signature measured on IBM hardware) or, with
//!   probability `mobility`, leakage transport to that operand,
//! * readout and reset errors, with optional **multi-level readout (MLR)** whose
//!   leaked-state misclassification is `mlr·p`,
//! * SWAP-based **leakage-reduction circuits (LRCs)** that clear leakage at the cost of
//!   extra depolarizing noise, possible re-leakage and added cycle latency.
//!
//! The simulator is *closed loop*: a [`LeakagePolicy`] (implemented in the
//! `leakage-speculation` crate) inspects each round's [`RoundRecord`] and schedules the
//! LRCs applied at the start of the next round, exactly like the leakage speculation
//! block of Figure 2(c) in the paper.
//!
//! # Example
//!
//! ```
//! use leaky_sim::{NoiseParams, Simulator, policy::NeverLrc};
//! use qec_codes::Code;
//!
//! let code = Code::rotated_surface(3);
//! let noise = NoiseParams::builder().physical_error_rate(1e-3).leakage_ratio(0.1).build();
//! let mut sim = Simulator::new(&code, noise, 42);
//! let run = sim.run_with_policy(&mut NeverLrc, 10);
//! assert_eq!(run.rounds.len(), 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod frame;
pub mod noise;
pub mod pauli;
pub mod policy;
pub mod record;
pub mod rounds;
pub mod simulator;
pub mod sink;

pub use frame::QubitFrames;
pub use noise::{NoiseParams, NoiseParamsBuilder};
pub use pauli::Pauli;
pub use policy::{GroundTruth, LeakagePolicy, LrcRequest, PolicyContext};
pub use record::{RoundRecord, RunRecord};
pub use simulator::{Simulator, SimulatorCheckpoint};
pub use sink::{NullTraceSink, TraceSink};
