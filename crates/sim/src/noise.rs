//! Circuit-level noise parameters matching Section 6 ("Methodology") of the paper.

use serde::{Deserialize, Serialize};

/// Noise and timing parameters of the leakage-aware circuit noise model.
///
/// The defaults reproduce the paper's evaluation point: physical error rate
/// `p = 10⁻³`, leakage ratio `lr = 0.1` (so `p_leak = 10⁻⁴`), multi-level-readout
/// penalty `mlr = 10`, and 10 % leakage mobility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Physical (non-leakage) error probability `p` applied to depolarization,
    /// gate, measurement, reset and initialization faults.
    pub p: f64,
    /// Leakage ratio `lr`; the per-location leakage probability is `p_leak = lr · p`.
    pub leakage_ratio: f64,
    /// Multi-level readout penalty `mlr`: a leaked qubit read out with MLR is
    /// misclassified with probability `mlr · p`.
    pub mlr: f64,
    /// Probability that a CNOT with a leaked operand transports the leakage to the
    /// other operand instead of applying a random Pauli (Section 6: 10 %).
    pub mobility: f64,
    /// Multiplier on `p` for the depolarizing error applied by an LRC gadget
    /// (a SWAP-based LRC is roughly three CNOTs deep; default 2.0).
    pub lrc_error_factor: f64,
    /// Whether multi-level readout of parity qubits is available ("+M" variants).
    pub mlr_enabled: bool,
    /// Probability that MLR falsely flags a *non-leaked* qubit as leaked.
    pub mlr_false_flag: f64,
    /// Duration of one two-qubit gate layer, in nanoseconds (used by the cycle-time model).
    pub gate_time_ns: f64,
    /// Duration of measurement plus reset, in nanoseconds.
    pub meas_time_ns: f64,
    /// Added latency of one LRC gadget, in nanoseconds.
    pub lrc_time_ns: f64,
}

impl NoiseParams {
    /// Start building a parameter set from the defaults.
    #[must_use]
    pub fn builder() -> NoiseParamsBuilder {
        NoiseParamsBuilder::default()
    }

    /// Per-location leakage probability `p_leak = lr · p`.
    #[must_use]
    pub fn p_leak(&self) -> f64 {
        self.leakage_ratio * self.p
    }

    /// Probability that MLR misses a genuinely leaked qubit (`mlr · p`, capped at 1).
    #[must_use]
    pub fn mlr_miss(&self) -> f64 {
        (self.mlr * self.p).min(1.0)
    }

    /// Depolarizing error probability of an LRC gadget.
    #[must_use]
    pub fn p_lrc(&self) -> f64 {
        (self.lrc_error_factor * self.p).min(1.0)
    }

    /// Base duration of one QEC round (four CNOT layers plus measurement/reset) in ns.
    #[must_use]
    pub fn base_round_ns(&self, cnot_layers: usize) -> f64 {
        self.gate_time_ns * cnot_layers as f64 + self.meas_time_ns
    }

    /// Validates that every probability lies in `[0, 1]`.
    ///
    /// # Errors
    /// Returns a message naming the first out-of-range field.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("p", self.p),
            ("p_leak", self.p_leak()),
            ("mobility", self.mobility),
            ("mlr_false_flag", self.mlr_false_flag),
            ("p_lrc", self.p_lrc()),
        ];
        for (name, value) in checks {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(format!("{name} = {value} is not a probability"));
            }
        }
        if self.gate_time_ns < 0.0 || self.meas_time_ns < 0.0 || self.lrc_time_ns < 0.0 {
            return Err("timings must be non-negative".to_string());
        }
        Ok(())
    }
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            p: 1e-3,
            leakage_ratio: 0.1,
            mlr: 10.0,
            mobility: 0.1,
            lrc_error_factor: 2.0,
            mlr_enabled: true,
            mlr_false_flag: 1e-3,
            gate_time_ns: 25.0,
            meas_time_ns: 500.0,
            lrc_time_ns: 100.0,
        }
    }
}

/// Builder for [`NoiseParams`] (non-consuming, per the Rust API guidelines).
#[derive(Debug, Clone, Default)]
pub struct NoiseParamsBuilder {
    params: NoiseParams,
}

impl NoiseParamsBuilder {
    /// Set the physical error rate `p`.
    pub fn physical_error_rate(&mut self, p: f64) -> &mut Self {
        self.params.p = p;
        self
    }

    /// Set the leakage ratio `lr` (so `p_leak = lr·p`).
    pub fn leakage_ratio(&mut self, lr: f64) -> &mut Self {
        self.params.leakage_ratio = lr;
        self
    }

    /// Set the MLR misclassification multiplier.
    pub fn mlr(&mut self, mlr: f64) -> &mut Self {
        self.params.mlr = mlr;
        self
    }

    /// Enable or disable multi-level readout on parity qubits.
    pub fn mlr_enabled(&mut self, enabled: bool) -> &mut Self {
        self.params.mlr_enabled = enabled;
        self
    }

    /// Set the leakage mobility (transport probability through a CNOT).
    pub fn mobility(&mut self, mobility: f64) -> &mut Self {
        self.params.mobility = mobility;
        self
    }

    /// Set the LRC depolarizing-error multiplier.
    pub fn lrc_error_factor(&mut self, factor: f64) -> &mut Self {
        self.params.lrc_error_factor = factor;
        self
    }

    /// Set the MLR false-flag probability for non-leaked qubits.
    pub fn mlr_false_flag(&mut self, p: f64) -> &mut Self {
        self.params.mlr_false_flag = p;
        self
    }

    /// Set the timing model (gate layer, measurement+reset, LRC latency) in ns.
    pub fn timings_ns(&mut self, gate: f64, meas: f64, lrc: f64) -> &mut Self {
        self.params.gate_time_ns = gate;
        self.params.meas_time_ns = meas;
        self.params.lrc_time_ns = lrc;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if the assembled parameters fail validation (e.g. probabilities outside
    /// `[0, 1]`); use [`NoiseParamsBuilder::try_build`] for fallible construction.
    #[must_use]
    pub fn build(&self) -> NoiseParams {
        self.try_build().expect("invalid noise parameters")
    }

    /// Fallible variant of [`NoiseParamsBuilder::build`].
    ///
    /// # Errors
    /// Returns the validation message of [`NoiseParams::validate`].
    pub fn try_build(&self) -> Result<NoiseParams, String> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_evaluation_point() {
        let n = NoiseParams::default();
        assert!((n.p - 1e-3).abs() < 1e-12);
        assert!((n.p_leak() - 1e-4).abs() < 1e-12);
        assert!((n.mlr_miss() - 1e-2).abs() < 1e-12);
        assert!((n.mobility - 0.1).abs() < 1e-12);
        assert!(n.mlr_enabled);
    }

    #[test]
    fn builder_sets_fields() {
        let n = NoiseParams::builder()
            .physical_error_rate(1e-4)
            .leakage_ratio(1.0)
            .mobility(0.05)
            .mlr_enabled(false)
            .build();
        assert!((n.p - 1e-4).abs() < 1e-15);
        assert!((n.p_leak() - 1e-4).abs() < 1e-15);
        assert!(!n.mlr_enabled);
        assert!((n.mobility - 0.05).abs() < 1e-15);
    }

    #[test]
    fn invalid_probability_is_rejected() {
        let result = NoiseParams::builder().physical_error_rate(1.5).try_build();
        assert!(result.is_err());
        let result = NoiseParams::builder().mobility(-0.1).try_build();
        assert!(result.is_err());
    }

    #[test]
    fn mlr_miss_is_capped_at_one() {
        let n = NoiseParams::builder().physical_error_rate(0.5).build();
        assert!((n.mlr_miss() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn base_round_time_accounts_for_layers() {
        let n = NoiseParams::default();
        assert!((n.base_round_ns(4) - (4.0 * 25.0 + 500.0)).abs() < 1e-9);
    }
}
